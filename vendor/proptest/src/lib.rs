//! Offline stand-in for `proptest`.
//!
//! Implements the subset used by `tests/tests/properties.rs`: the
//! [`Strategy`] trait with `prop_map`, integer ranges and tuples as
//! strategies, [`collection::vec`], [`ProptestConfig::with_cases`] and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG so failures
//! reproduce exactly; there is **no shrinking** — a failing case panics with
//! the case index and the failed assertion.
//!
//! # Environment knobs (nightly soak support)
//!
//! * `PROPTEST_CASES` — scales every `proptest!` block **proportionally**:
//!   a block configured for `n` cases runs `⌈n × PROPTEST_CASES / 64⌉`
//!   (64 is the default case count), so `PROPTEST_CASES=640` is a 10×
//!   soak of the whole suite while each block keeps its relative weight.
//!   (Real proptest treats the variable as an absolute default that
//!   explicit configs override — which would make it a no-op for suites
//!   like ours that configure every block.)
//! * `PROPTEST_SEED` — overrides the fixed seed, so scheduled runs
//!   explore fresh cases (e.g. `PROPTEST_SEED=$GITHUB_RUN_ID`).
//! * `PROPTEST_FAILURE_DIR` — on a failed case, a `<test>.seed` file with
//!   the seed, case index and failure message is written there (the
//!   nightly workflow uploads the directory as the failure-seed
//!   artifact); the panic message carries the same seed either way.

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The fixed default seed of [`TestRng::deterministic`].
pub const DEFAULT_SEED: u64 = 0x5EED_0F7E_57CA_5E00;

/// The seed `proptest!` expansions run with: `PROPTEST_SEED` if set and
/// parseable (decimal, or hex with a `0x` prefix — failure messages print
/// the seed in hex, so the printed form must round-trip), else
/// [`DEFAULT_SEED`].
pub fn env_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(DEFAULT_SEED)
}

/// Parse a seed in decimal or `0x`-prefixed hex.
pub fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

/// The effective case count for a block configured with `base` cases:
/// scaled by `PROPTEST_CASES / 64` when the variable is set (see the
/// module docs).
pub fn resolved_cases(base: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        Some(env) => scaled_cases(base, env),
        None => base.max(1),
    }
}

/// The pure scaling rule behind [`resolved_cases`].
pub fn scaled_cases(base: u32, env_cases: u64) -> u32 {
    let scaled = (base as u64)
        .checked_mul(env_cases)
        .map_or(u64::MAX, |n| n.div_ceil(64));
    scaled.clamp(1, u32::MAX as u64) as u32
}

/// Write a failure-seed file to `PROPTEST_FAILURE_DIR` (best-effort, no-op
/// when the variable is unset) so CI can upload reproduction instructions.
pub fn record_failure(test: &str, seed: u64, case: u32, cases: u32, message: &str) {
    let Some(dir) = std::env::var_os("PROPTEST_FAILURE_DIR") else {
        return;
    };
    record_failure_to(std::path::Path::new(&dir), test, seed, case, cases, message);
}

/// [`record_failure`] with an explicit directory (separated so tests never
/// have to mutate the process environment — `setenv` racing the harness's
/// concurrent `getenv`s is undefined behaviour on glibc).
pub fn record_failure_to(
    dir: &std::path::Path,
    test: &str,
    seed: u64,
    case: u32,
    cases: u32,
    message: &str,
) {
    let _ = std::fs::create_dir_all(dir);
    let body = format!(
        "test: {test}\nseed: {seed:#x}\nfailed case: {case} of {cases}\n\
         reproduce: PROPTEST_SEED={seed:#x} cargo test {test}\nfailure: {message}\n"
    );
    let _ = std::fs::write(dir.join(format!("{test}.seed")), body);
}

/// Deterministic source of test data.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// The fixed-seed RNG used by `proptest!` expansions (honouring
    /// `PROPTEST_SEED`).
    pub fn deterministic() -> Self {
        Self::seeded(env_seed())
    }

    /// An RNG with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from an exclusive u64 range.
    pub fn in_range(&mut self, range: Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }
}

/// Failure raised by `prop_assert*` and test helpers.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.in_range(0..(self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    //! Collection strategies (`vec` only).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.in_range(0..span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Define `#[test]` functions over generated inputs.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, v in proptest::collection::vec(0u32..5, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = $crate::resolved_cases(config.cases);
            let seed = $crate::env_seed();
            let mut test_rng = $crate::TestRng::seeded(seed);
            for case in 0..cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut test_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let Err(e) = outcome {
                    $crate::record_failure(
                        stringify!($name), seed, case + 1, cases, &e.to_string());
                    panic!("proptest {} failed at case {}/{} (seed {:#x}): {}",
                           stringify!($name), case + 1, cases, seed, e);
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;
    use crate::{record_failure, record_failure_to, scaled_cases};

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic();
        let s = crate::collection::vec((0u32..7, 0u64..3), 1..9);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&(a, b)| a < 7 && b < 3));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::deterministic();
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 1u32..50, v in crate::collection::vec(0usize..4, 1..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0u64..3) {
            prop_assert!(x < 3, "x was {}", x);
        }
    }

    #[test]
    fn case_scaling_is_proportional_with_a_floor_of_one() {
        // Unset env: identity (resolved_cases may be affected by the
        // environment, so pin the pure rule).
        assert_eq!(scaled_cases(64, 64), 64);
        assert_eq!(scaled_cases(64, 640), 640, "default blocks scale 10×");
        assert_eq!(scaled_cases(8, 640), 80, "explicit blocks keep weight");
        assert_eq!(scaled_cases(48, 640), 480);
        assert_eq!(scaled_cases(1, 640), 10);
        assert_eq!(scaled_cases(100, 1), 2, "rounds up");
        assert_eq!(scaled_cases(1, 1), 1, "never zero");
        assert_eq!(scaled_cases(0, 640), 1, "never zero");
        assert_eq!(scaled_cases(u32::MAX, u64::MAX), u32::MAX, "saturates");
    }

    #[test]
    fn failure_records_are_written_and_seeds_roundtrip() {
        let dir = std::env::temp_dir().join(format!("proptest-fail-{}", std::process::id()));
        record_failure_to(&dir, "some_test", 0xABCD, 3, 64, "boom");
        let body = std::fs::read_to_string(dir.join("some_test.seed")).unwrap();
        assert!(body.contains("seed: 0xabcd"), "{body}");
        assert!(body.contains("PROPTEST_SEED=0xabcd"), "{body}");
        assert!(body.contains("failed case: 3 of 64"), "{body}");
        assert!(body.contains("boom"), "{body}");
        std::fs::remove_dir_all(&dir).ok();
        // The printed (hex) form and plain decimal both parse back.
        assert_eq!(crate::parse_seed("0xabcd"), Some(0xABCD));
        assert_eq!(crate::parse_seed("0XABCD"), Some(0xABCD));
        assert_eq!(crate::parse_seed(" 43981 "), Some(0xABCD));
        assert_eq!(crate::parse_seed("nope"), None);
        // Unset dir: a silent no-op (no env mutation in tests — the env
        // path is exercised by the nightly workflow itself).
        record_failure("other_test", 1, 1, 1, "x");
    }
}
