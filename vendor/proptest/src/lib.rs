//! Offline stand-in for `proptest`.
//!
//! Implements the subset used by `tests/tests/properties.rs`: the
//! [`Strategy`] trait with `prop_map`, integer ranges and tuples as
//! strategies, [`collection::vec`], [`ProptestConfig::with_cases`] and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG so failures
//! reproduce exactly; there is **no shrinking** — a failing case panics with
//! the case index and the failed assertion.

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic source of test data.
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// The fixed-seed RNG used by `proptest!` expansions.
    pub fn deterministic() -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(0x5EED_0F7E_57CA_5E00),
        }
    }

    /// Raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from an exclusive u64 range.
    pub fn in_range(&mut self, range: Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }
}

/// Failure raised by `prop_assert*` and test helpers.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.in_range(0..(self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    //! Collection strategies (`vec` only).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.in_range(0..span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Define `#[test]` functions over generated inputs.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, v in proptest::collection::vec(0u32..5, 1..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut test_rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut test_rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let Err(e) = outcome {
                    panic!("proptest {} failed at case {}/{}: {}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic();
        let s = crate::collection::vec((0u32..7, 0u64..3), 1..9);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&(a, b)| a < 7 && b < 3));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::deterministic();
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in 1u32..50, v in crate::collection::vec(0usize..4, 1..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0u64..3) {
            prop_assert!(x < 3, "x was {}", x);
        }
    }
}
