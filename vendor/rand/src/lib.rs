//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact API subset this workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and [`Rng::gen`] /
//! [`Rng::gen_range`] over the integer and float types the graph generators
//! draw. The generator is xoshiro256++ with a splitmix64 seed expansion —
//! deterministic across platforms, which is all the reproduction needs.

use std::ops::{Range, RangeInclusive};

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire's method,
/// without the bias-correcting retry: the bias is < 2^-64, far below what a
/// test-data generator can observe).
#[inline]
fn bounded(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return Standard::sample(rng);
                }
                let span = (end - start) as u64 + 1;
                start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators (only `SmallRng` is provided).

    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(0u64..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
