//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset used by `crates/bench/benches/*`: benchmark
//! groups, `Bencher::iter`, `black_box`, element/byte throughput and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! best-of-samples wall-clock loop — enough to compare implementations and
//! keep the bench targets compiling and runnable offline, not a statistics
//! engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Per-iteration timing state handed to the bench closure.
pub struct Bencher {
    samples: usize,
    best: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, keeping the best (lowest-noise) sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let d = start.elapsed();
            if d < self.best {
                self.best = d;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotate throughput; reported as elem/s or MB/s.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            best: Duration::MAX,
        };
        f(&mut b);
        let secs = b.best.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / secs / 1e6)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>10.1} MB/s", n as f64 / secs / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {:>12.3} ms/iter{rate}", self.name, secs * 1e3);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Benchmark a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.id.clone();
        self.run(&label, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("two_choice", 32);
        assert_eq!(id.id, "two_choice/32");
    }
}
