//! Cross-crate integration tests for the `twophase` workspace.
//!
//! The actual tests live under `tests/` of this package:
//!
//! * `invariants.rs` — every partitioner assigns every edge exactly once;
//!   cap-enforcing partitioners respect `α·|E|/k`.
//! * `pipeline.rs` — graph → file → partition → distributed PageRank, with
//!   results validated against single-machine references.
//! * `properties.rs` — proptest properties over arbitrary graphs.
//! * `storage.rs` — device-stream accounting across full partitioner runs.
//!
//! This lib target only hosts shared helpers.

use tps_core::partitioner::Partitioner;

/// Every partitioner in the workspace with default settings, including the
/// 2PS variants. `include_nondeterministic` adds DNE (thread-racy output).
pub fn full_roster(include_nondeterministic: bool) -> Vec<Box<dyn Partitioner>> {
    let mut v: Vec<Box<dyn Partitioner>> = vec![
        Box::new(tps_core::two_phase::TwoPhasePartitioner::new(
            tps_core::two_phase::TwoPhaseConfig::default(),
        )),
        Box::new(tps_core::two_phase::TwoPhasePartitioner::new(
            tps_core::two_phase::TwoPhaseConfig::hdrf_variant(),
        )),
        Box::new(tps_baselines::HdrfPartitioner::default()),
        Box::new(tps_baselines::GreedyPartitioner),
        Box::new(tps_baselines::DbhPartitioner::default()),
        Box::new(tps_baselines::GridPartitioner::default()),
        Box::new(tps_baselines::RandomPartitioner::default()),
        Box::new(tps_baselines::AdwisePartitioner::default()),
        Box::new(tps_baselines::NePartitioner),
        Box::new(tps_baselines::SnePartitioner::default()),
        Box::new(tps_baselines::HepPartitioner::with_tau(1.0)),
        Box::new(tps_baselines::HepPartitioner::with_tau(10.0)),
        Box::new(tps_baselines::MultilevelPartitioner::default()),
    ];
    if include_nondeterministic {
        v.push(Box::new(tps_baselines::DnePartitioner::default()));
    }
    v
}
