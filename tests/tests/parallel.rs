//! Parallel/serial equivalence of the chunk-parallel runner.
//!
//! Pins the contracts documented in `tps-core::parallel`:
//!
//! * completeness — every edge assigned exactly once at any thread count;
//! * one-thread runs match the serial runner bit for bit;
//! * determinism for a fixed thread count;
//! * the balance cap holds (with the documented `k+1`-per-worker bound in
//!   the degenerate tiny-graph regime, where `|E|` ≲ `k × threads`);
//! * replication factor within a fixed epsilon of the serial runner on
//!   generated R-MAT graphs;
//! * storage-backend independence — in-memory, v1, v2 and prefetch-wrapped
//!   sources produce identical parallel assignments.

use proptest::prelude::*;
use tps_clustering::merge::merge_clusterings;
use tps_core::balance::PartitionLoads;
use tps_core::parallel::{
    cluster_placement, merge_degree_tables, resolve_volume_cap, shard_clustering, shard_degrees,
    ParallelRunner, ShardAssigner, ShardLoads,
};
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::{QualitySink, VecSink};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::gen::rmat;
use tps_graph::ranged::{split_even, RangedEdgeSource};
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;
use tps_metrics::bitmatrix::ReplicationMatrix;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn serial_assignments(g: &InMemoryGraph, k: u32) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    TwoPhasePartitioner::new(TwoPhaseConfig::default())
        .partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
        .unwrap();
    sink.into_assignments()
}

fn parallel_assignments(source: &dyn RangedEdgeSource, k: u32, threads: usize) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    ParallelRunner::new(TwoPhaseConfig::default(), threads)
        .partition(source, &PartitionParams::new(k), &mut sink)
        .unwrap();
    sink.into_assignments()
}

/// Arbitrary small graphs (duplicates and self-loops allowed).
fn arb_graph() -> impl Strategy<Value = InMemoryGraph> {
    proptest::collection::vec((0u32..64, 0u32..64), 1..200)
        .prop_map(|pairs| InMemoryGraph::from_edges(pairs.into_iter().map(Edge::from).collect()))
}

/// The pre-atomic **sharded** phase 2, hand-driven through the public
/// kernels: one owned replication-matrix shard per worker, OR-merged with
/// `merge_from` at the barrier and installed back into every worker — the
/// reference the shared `AtomicReplicationMatrix` path must reproduce bit
/// for bit (and exactly what a distributed worker still executes).
fn sharded_reference(source: &dyn RangedEdgeSource, k: u32, threads: usize) -> Vec<(Edge, u32)> {
    let config = TwoPhaseConfig::default();
    let info = source.info();
    let ranges = split_even(info.num_edges, threads);

    let tables: Vec<_> = ranges
        .iter()
        .map(|&r| shard_degrees(source, r, info.num_vertices).unwrap())
        .collect();
    let degrees = merge_degree_tables(tables);
    let volume_cap = resolve_volume_cap(&config, k, &degrees);
    let locals: Vec<_> = ranges
        .iter()
        .map(|&r| {
            shard_clustering(
                source,
                r,
                &config,
                &degrees,
                volume_cap,
                info.num_vertices,
                threads > 1,
            )
            .unwrap()
        })
        .collect();
    let clustering = merge_clusterings(&locals, &degrees);
    let placement = cluster_placement(&config, &clustering, k);

    let edge_cap = PartitionLoads::new(k, info.num_edges, 1.05).cap();
    let mut workers: Vec<(ShardAssigner<ReplicationMatrix>, VecSink)> = (0..threads)
        .map(|t| {
            (
                ShardAssigner::new(
                    config,
                    &degrees,
                    &clustering,
                    &placement,
                    ReplicationMatrix::new(info.num_vertices, k),
                    ShardLoads::standalone(k, edge_cap, t, threads),
                ),
                VecSink::new(),
            )
        })
        .collect();
    for (t, (assigner, sink)) in workers.iter_mut().enumerate() {
        let mut s = source.open_range(ranges[t].0, ranges[t].1).unwrap();
        assigner.prepartition_pass(&mut s, sink).unwrap();
    }
    if threads > 1 {
        let mut merged = workers[0].0.replication_shard().clone();
        for (assigner, _) in &workers[1..] {
            merged.merge_from(assigner.replication_shard());
        }
        for (assigner, _) in workers.iter_mut() {
            assigner.install_replication(merged.clone());
        }
    }
    for (t, (assigner, sink)) in workers.iter_mut().enumerate() {
        let mut s = source.open_range(ranges[t].0, ranges[t].1).unwrap();
        assigner.remaining_pass(&mut s, sink).unwrap();
    }
    workers
        .into_iter()
        .flat_map(|(_, sink)| sink.into_assignments())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_invariants_across_thread_counts(graph in arb_graph(), k in 1u32..9) {
        let serial = serial_assignments(&graph, k);
        let cap = PartitionLoads::new(k, graph.num_edges(), 1.05).cap();
        let mut want: Vec<Edge> = graph.edges().to_vec();
        want.sort();
        for threads in THREAD_COUNTS {
            let got = parallel_assignments(&graph, k, threads);
            // Completeness: the assigned multiset is the edge multiset.
            let mut edges: Vec<Edge> = got.iter().map(|&(e, _)| e).collect();
            edges.sort();
            prop_assert_eq!(&edges, &want, "threads {}", threads);
            prop_assert!(got.iter().all(|&(_, p)| p < k));
            // Bit-for-bit serial equivalence at one thread.
            if threads == 1 {
                prop_assert_eq!(&got, &serial, "1-thread run diverged from serial");
            }
            // Determinism for a fixed thread count.
            prop_assert_eq!(&got, &parallel_assignments(&graph, k, threads));
            // Balance: hard cap, plus the documented degenerate bound of at
            // most k+1 overshoot edges per worker on tiny graphs.
            let mut loads = vec![0u64; k as usize];
            for &(_, p) in &got {
                loads[p as usize] += 1;
            }
            // Exact predicate from tps-core::parallel: a worker can stay
            // within quota iff its quota slices cover its edge share.
            let t = threads as u64;
            let guaranteed = (cap / t) * k as u64 >= graph.num_edges().div_ceil(t);
            let slack = if guaranteed { 0 } else { (k as u64 + 1) * t };
            prop_assert!(
                loads.iter().all(|&l| l <= cap + slack),
                "threads {}: loads {:?} exceed cap {} + slack {}",
                threads, loads, cap, slack
            );
        }
    }
}

proptest! {
    // Each case runs 4 thread counts × (3 backends + 1 reference) of full
    // partitions; keep the count modest (nightly soaks scale it up).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant of the shared `AtomicReplicationMatrix`
    /// design: phase 2 over one shared `O(|V|·k)` matrix (write-through
    /// prepartition, frozen + private overlays for scoring) is
    /// **bit-identical** to the old sharded+`merge_from` path, at every
    /// thread count and for every storage backend.
    #[test]
    fn atomic_phase2_is_bit_identical_to_the_sharded_merge_path(
        graph in arb_graph(),
        k in 1u32..9,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tps-atomic-shard-{}-{:x}",
            std::process::id(),
            graph.num_edges() * 31 + k as u64
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let v1_path = dir.join("g.bel");
        let v2_path = dir.join("g.bel2");
        tps_graph::formats::binary::write_binary_edge_list(
            &v1_path,
            graph.num_vertices(),
            graph.edges().iter().copied(),
        )
        .unwrap();
        tps_io::write_v2_edge_list(
            &v2_path,
            graph.num_vertices(),
            graph.edges().iter().copied(),
            7,
        )
        .unwrap();
        let v1 = tps_io::RangedV1File::open(&v1_path).unwrap();
        let v2 = tps_io::RangedV2File::open(&v2_path).unwrap();

        for threads in THREAD_COUNTS {
            let want = sharded_reference(&graph, k, threads);
            let atomic = parallel_assignments(&graph, k, threads);
            prop_assert_eq!(&atomic, &want, "mem backend, {} threads", threads);
            prop_assert_eq!(
                &parallel_assignments(&v1, k, threads),
                &want,
                "v1 backend, {} threads",
                threads
            );
            prop_assert_eq!(
                &parallel_assignments(&v2, k, threads),
                &want,
                "v2 backend, {} threads",
                threads
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn rmat_replication_factor_within_epsilon_of_serial() {
    // A direct R-MAT generation (not just the dataset stand-ins).
    let g = rmat::generate(&rmat::RmatConfig::social(14, 120_000), 7);
    let k = 16;
    let mut serial_sink = QualitySink::new(g.num_vertices(), k);
    TwoPhasePartitioner::new(TwoPhaseConfig::default())
        .partition(&mut g.stream(), &PartitionParams::new(k), &mut serial_sink)
        .unwrap();
    let serial = serial_sink.finish();
    let cap = PartitionLoads::new(k, g.num_edges(), 1.05).cap();
    for threads in THREAD_COUNTS {
        let mut sink = QualitySink::new(g.num_vertices(), k);
        let report = ParallelRunner::new(TwoPhaseConfig::default(), threads)
            .partition(&g, &PartitionParams::new(k), &mut sink)
            .unwrap();
        let m = sink.finish();
        assert_eq!(m.num_edges, g.num_edges());
        assert_eq!(report.counter("cap_overshoot"), 0, "threads {threads}");
        assert!(
            m.max_load <= cap,
            "threads {threads}: max load {} > cap {cap}",
            m.max_load
        );
        // The epsilon bound documented in tps-core::parallel: the sharded
        // run loses quality only on range-straddling state.
        let eps = match threads {
            1 => 1.0,
            2 => 1.15,
            4 => 1.30,
            _ => 1.45,
        };
        assert!(
            m.replication_factor <= serial.replication_factor * eps + 1e-9,
            "threads {threads}: rf {} vs serial {} (eps {eps})",
            m.replication_factor,
            serial.replication_factor
        );
    }
}

#[test]
fn parallel_result_is_independent_of_the_storage_backend() {
    let g = Dataset::Ok.generate_scaled(0.02);
    let dir = std::env::temp_dir().join(format!("tps-par-backend-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("g.bel");
    let v2_path = dir.join("g.bel2");
    tps_graph::formats::binary::write_binary_edge_list(
        &v1_path,
        g.num_vertices(),
        g.edges().iter().copied(),
    )
    .unwrap();
    // A chunk size that does not divide the thread ranges.
    tps_io::write_v2_edge_list(&v2_path, g.num_vertices(), g.edges().iter().copied(), 777).unwrap();

    let k = 8;
    let threads = 3;
    let reference = parallel_assignments(&g, k, threads);
    assert_eq!(reference.len() as u64, g.num_edges());

    let v1 = tps_io::RangedV1File::open(&v1_path).unwrap();
    let v2 = tps_io::RangedV2File::open(&v2_path).unwrap();
    assert_eq!(parallel_assignments(&v1, k, threads), reference, "v1 file");
    assert_eq!(parallel_assignments(&v2, k, threads), reference, "v2 file");

    let v1_pf = tps_io::RangedPrefetchSource::new(tps_io::RangedV1File::open(&v1_path).unwrap());
    let v2_pf = tps_io::RangedPrefetchSource::new(tps_io::RangedV2File::open(&v2_path).unwrap());
    assert_eq!(
        parallel_assignments(&v1_pf, k, threads),
        reference,
        "v1 + prefetch"
    );
    assert_eq!(
        parallel_assignments(&v2_pf, k, threads),
        reference,
        "v2 + prefetch"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restreaming_and_hdrf_variants_run_parallel() {
    let g = Dataset::It.generate_scaled(0.01);
    for cfg in [
        TwoPhaseConfig::with_passes(2),
        TwoPhaseConfig::hdrf_variant(),
    ] {
        for threads in [2usize, 4] {
            let mut sink = VecSink::new();
            ParallelRunner::new(cfg, threads)
                .partition(&g, &PartitionParams::new(8), &mut sink)
                .unwrap();
            assert_eq!(sink.assignments().len() as u64, g.num_edges());
        }
    }
}
