//! End-to-end observability contracts (`tps-obs`):
//!
//! * tracing is **output-neutral** — a traced run's assignments are
//!   bit-identical to an untraced run's, serial, parallel and distributed;
//! * a traced run's events reconstruct a well-formed span forest whose
//!   root spans are exactly the `PhaseTimer` phases;
//! * a traced distributed run ships each worker's shard-phase spans to the
//!   coordinator in the `ShardDone` frame, tagged `worker = shard + 1`,
//!   and the whole cluster renders from one trace.
//!
//! The recorder is process-global state, so everything lives in one `#[test]`
//! (the default test harness runs sibling tests concurrently).

use std::collections::BTreeSet;

use tps_core::job::{JobSpec, ThreadMode};
use tps_core::partitioner::PartitionParams;
use tps_core::sink::{MemorySpoolFactory, VecSink};
use tps_core::two_phase::TwoPhaseConfig;
use tps_dist::{
    loopback_pair, run_coordinator, run_worker, AttachedResolver, FaultPolicy, InputDescriptor,
    NoReplacements, Transport,
};
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

const K: u32 = 5;

fn test_graph() -> InMemoryGraph {
    // Deterministic skewed edge list: enough vertices for prepartitioning
    // chunks, duplicates and self-loops included.
    let edges: Vec<Edge> = (0u32..4000)
        .map(|i| Edge::from(((i * 7) % 97, (i * i + 3) % 211)))
        .collect();
    InMemoryGraph::from_edges(edges)
}

fn serial_run(g: &InMemoryGraph) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    let mut stream = g.stream();
    JobSpec::stream(&mut stream)
        .two_phase(TwoPhaseConfig::default())
        .params(&PartitionParams::new(K))
        .num_vertices(g.num_vertices())
        .extra_sink(&mut sink)
        .run()
        .unwrap();
    sink.into_assignments()
}

fn parallel_run(g: &InMemoryGraph, threads: usize) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    JobSpec::ranged(g)
        .two_phase(TwoPhaseConfig::default())
        .params(&PartitionParams::new(K))
        .threads(ThreadMode::Count(threads))
        .extra_sink(&mut sink)
        .run()
        .unwrap();
    sink.into_assignments()
}

fn dist_run(g: &InMemoryGraph, workers: usize) -> Vec<(Edge, u32)> {
    let mut coordinator_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
    let mut worker_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (c, w) = loopback_pair();
        coordinator_sides.push(Box::new(c));
        worker_sides.push(Box::new(w));
    }
    let mut sink = VecSink::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_sides
            .into_iter()
            .map(|mut t| {
                scope.spawn(move || run_worker(&mut *t, &AttachedResolver(g), &MemorySpoolFactory))
            })
            .collect();
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(K),
            g.info(),
            &InputDescriptor::Attached,
            workers,
            coordinator_sides,
            &mut NoReplacements,
            &FaultPolicy::default(),
            0,
            &mut sink,
        )
        .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    });
    sink.into_assignments()
}

#[test]
fn tracing_is_output_neutral_and_ships_worker_spans() {
    let g = test_graph();

    // Untraced references first.
    tps_obs::set_enabled(false);
    tps_obs::reset_events();
    let serial_want = serial_run(&g);
    let parallel_want = parallel_run(&g, 4);
    let dist_want = dist_run(&g, 2);

    // Serial, traced: identical output, root spans = PhaseTimer phases.
    tps_obs::reset_events();
    tps_obs::set_enabled(true);
    let serial_traced = serial_run(&g);
    tps_obs::set_enabled(false);
    assert_eq!(serial_traced, serial_want, "tracing changed serial output");
    let events = tps_obs::take_events();
    let forest = tps_obs::build_span_forest(&events).expect("well-formed serial span tree");
    let roots: Vec<&str> = forest
        .iter()
        .flat_map(|t| t.roots.iter().map(|r| r.name.as_str()))
        .collect();
    assert_eq!(
        roots,
        [
            "degree",
            "clustering",
            "mapping",
            "prepartition",
            "partition"
        ],
        "serial root spans are the paper's phases"
    );

    // Parallel, traced: identical output, same phase roots plus emit.
    tps_obs::reset_events();
    tps_obs::set_enabled(true);
    let parallel_traced = parallel_run(&g, 4);
    tps_obs::set_enabled(false);
    assert_eq!(
        parallel_traced, parallel_want,
        "tracing changed parallel output"
    );
    assert!(!tps_obs::take_events().is_empty());

    // Distributed (loopback), traced: identical output, and every worker's
    // shard spans arrive tagged worker = shard + 1.
    tps_obs::reset_events();
    tps_obs::set_enabled(true);
    let dist_traced = dist_run(&g, 2);
    tps_obs::set_enabled(false);
    assert_eq!(dist_traced, dist_want, "tracing changed dist output");
    let events = tps_obs::take_events();
    let workers: BTreeSet<u32> = events.iter().map(|e| e.worker).collect();
    assert_eq!(
        workers.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2],
        "coordinator plus both shard workers appear in one trace"
    );
    for w in [1u32, 2] {
        let names: BTreeSet<&str> = events
            .iter()
            .filter(|e| e.worker == w)
            .map(|e| e.name.as_str())
            .collect();
        for phase in ["degree", "clustering", "prepartition", "partition"] {
            assert!(names.contains(phase), "worker {w} missing {phase:?} span");
        }
    }
    let forest = tps_obs::build_span_forest(&events).expect("well-formed dist span forest");
    assert!(
        forest.len() >= 3,
        "one timeline per worker, got {}",
        forest.len()
    );

    // The whole cluster renders from the one trace.
    let text = tps_obs::render_trace(
        &tps_obs::TraceMeta {
            cmd: "test".into(),
            algo: "2PS-L×2w".into(),
            k: K,
            alpha: 1.05,
            vertices: g.num_vertices(),
            edges: g.num_edges(),
        },
        &events,
        &[],
    );
    let trace = tps_obs::Trace::parse(&text).expect("trace roundtrips");
    let report = tps_obs::render_report(&trace).expect("report renders");
    assert!(report.contains("worker w1"), "report shows shard workers");
    assert!(
        report.contains("critical path"),
        "report shows critical path"
    );
}
