//! End-to-end live metrics: scrape a serving daemon and pin the exposition.
//!
//! The acceptance claim for the metrics plane: a scrape of a daemon under
//! a serve-smoke-shaped workload returns **every** registered counter,
//! gauge and per-op histogram — with quantile lines that match what the
//! histogram snapshots themselves compute — counters are monotone across
//! scrapes, and turning recording (or tracing) on or off never changes a
//! served answer.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

use tps_graph::types::Edge;
use tps_obs::{
    counters_snapshot, hists_snapshot, parse_exposition, scrape, set_metrics_enabled, Sample,
    EXPORT_QUANTILES,
};
use tps_serve::{
    spawn_loopback, start_metrics, ServeClient, ServeOptions, ServeState, ServerConfig,
};

const K: u32 = 8;
const NUM_VERTICES: u64 = 400;

// Histograms/counters are process-global; serialise the tests in this binary.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Deterministic synthetic assignments: the serving fixture.
fn assignments() -> Vec<(Edge, u32)> {
    (0..3000u32)
        .map(|i| (Edge::new(i % 199, 199 + (i * 7) % 201), i % K))
        .filter(|&(e, _)| e.src != e.dst)
        .collect()
}

fn boot() -> (
    Arc<RwLock<ServeState>>,
    ServeClient,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let state =
        ServeState::from_assignments(&assignments(), NUM_VERTICES, K, &ServeOptions::default())
            .expect("promote assignments");
    let state = Arc::new(RwLock::new(state));
    let (transport, handle) = spawn_loopback(Arc::clone(&state), ServerConfig::default());
    let client = ServeClient::over(Box::new(transport)).expect("loopback handshake");
    (state, client, handle)
}

fn value_of(samples: &[Sample], metric: &str, name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.metric == metric && s.label("name") == Some(name))
        .map(|s| s.value)
}

#[test]
fn scrape_exposes_every_counter_gauge_and_histogram_with_correct_quantiles() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_metrics_enabled(true);
    let (state, mut client, handle) = boot();
    let server = start_metrics("127.0.0.1:0", Arc::clone(&state)).expect("metrics bind");
    let addr = server.addr().to_string();

    // Serve-smoke-shaped workload: lookups, replica sets, one delta.
    let edges: Vec<Edge> = assignments().iter().map(|&(e, _)| e).collect();
    for chunk in edges.chunks(256) {
        client.lookup_batch(chunk).expect("lookup");
    }
    let vertices: Vec<u32> = (0..64u32).collect();
    client.replica_sets(&vertices).expect("replica sets");
    let delta: Vec<Edge> = edges.iter().copied().take(40).collect();
    let outcome = client.update(&[], &delta).expect("remove batch");
    assert!(outcome.removed.iter().all(Option::is_some));
    client.update(&delta, &[]).expect("re-insert batch");

    // The daemon is now idle: local snapshots and the scrape must agree.
    let scrape1 = parse_exposition(&scrape(&addr).expect("scrape 1")).expect("parse 1");

    // Every registered counter appears, with its exact value.
    let counters = counters_snapshot();
    assert!(!counters.is_empty(), "workload registered no counters");
    for (name, v) in &counters {
        assert_eq!(
            value_of(&scrape1, "tps_counter", name),
            Some(*v as f64),
            "counter {name} missing or wrong in the exposition"
        );
    }

    // Every serve state gauge appears (refreshed on the scrape thread).
    for gauge in [
        "serve.staleness",
        "serve.epoch",
        "serve.overlay.len",
        "serve.edges.live",
        "serve.uptime.secs",
        "serve.cache.hits",
        "serve.cache.misses",
    ] {
        assert!(
            value_of(&scrape1, "tps_gauge", gauge).is_some(),
            "gauge {gauge} missing from the exposition"
        );
    }
    let live = value_of(&scrape1, "tps_gauge", "serve.edges.live").unwrap();
    assert_eq!(live, assignments().len() as f64, "live edge gauge");
    assert_eq!(
        value_of(&scrape1, "tps_gauge", "serve.epoch"),
        Some(2.0),
        "two update batches committed"
    );
    assert!(value_of(&scrape1, "tps_gauge", "serve.staleness").unwrap() > 0.0);

    // Every per-op histogram appears; count/sum/max/quantile lines match
    // what the snapshots themselves compute.
    let hists = hists_snapshot();
    for op in [
        "serve.op.lookup.ns",
        "serve.op.lookup.batch",
        "serve.op.replicas.ns",
        "serve.op.replicas.batch",
        "serve.op.update.ns",
        "serve.op.insert.batch",
        "serve.op.remove.batch",
    ] {
        let h = hists
            .iter()
            .find(|h| h.name == op)
            .unwrap_or_else(|| panic!("histogram {op} never recorded"));
        assert!(h.count() > 0, "histogram {op} is empty under workload");
        assert_eq!(
            value_of(&scrape1, "tps_hist_count", op),
            Some(h.count() as f64),
            "{op} count"
        );
        assert_eq!(value_of(&scrape1, "tps_hist_sum", op), Some(h.sum as f64));
        assert_eq!(value_of(&scrape1, "tps_hist_max", op), Some(h.max as f64));
        for q in EXPORT_QUANTILES {
            let line = scrape1
                .iter()
                .find(|s| {
                    s.metric == "tps_hist_quantile"
                        && s.label("name") == Some(op)
                        && s.label("q") == Some(&format!("{q}"))
                })
                .unwrap_or_else(|| panic!("{op} missing q={q} line"));
            assert_eq!(line.value, h.quantile(q) as f64, "{op} q={q}");
        }
        // Cumulative bucket lines end at the total count.
        let last = scrape1
            .iter()
            .rfind(|s| s.metric == "tps_hist_bucket" && s.label("name") == Some(op))
            .unwrap();
        assert_eq!(last.value, h.count() as f64, "{op} cumulative buckets");
    }

    // Batch-size histograms resolve real batch sizes: the lookup batches
    // were 256 edges, so p50 must sit within one √2 bucket of 256.
    let lookup_batch = hists
        .iter()
        .find(|h| h.name == "serve.op.lookup.batch")
        .unwrap();
    let p50 = lookup_batch.quantile(0.5);
    assert!((256..=363).contains(&p50), "lookup batch p50 = {p50}");

    // More work, second scrape: every counter is monotone non-decreasing.
    for chunk in edges.chunks(256) {
        client.lookup_batch(chunk).expect("lookup round 2");
    }
    let scrape2 = parse_exposition(&scrape(&addr).expect("scrape 2")).expect("parse 2");
    let before: BTreeMap<&str, f64> = scrape1
        .iter()
        .filter(|s| s.metric == "tps_counter")
        .map(|s| (s.label("name").unwrap(), s.value))
        .collect();
    let mut grew = false;
    for s in scrape2.iter().filter(|s| s.metric == "tps_counter") {
        let name = s.label("name").unwrap();
        let b = before.get(name).copied().unwrap_or_else(|| {
            panic!("counter {name} vanished between scrapes");
        });
        assert!(
            s.value >= b,
            "counter {name} went backwards: {b} -> {}",
            s.value
        );
        grew = grew || s.value > b;
    }
    assert!(grew, "second workload round moved no counter");

    server.shutdown();
    client.shutdown().expect("client shutdown");
    handle.join().expect("server thread").expect("server exit");
}

#[test]
fn served_answers_are_identical_with_metrics_or_tracing_on_or_off() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_state, mut client, handle) = boot();
    let edges: Vec<Edge> = assignments().iter().map(|&(e, _)| e).collect();
    let vertices: Vec<u32> = (0..64u32).collect();

    set_metrics_enabled(false);
    let lookups_off = client.lookup_batch(&edges).expect("lookups off");
    let replicas_off = client.replica_sets(&vertices).expect("replicas off");

    set_metrics_enabled(true);
    tps_obs::reset_events();
    tps_obs::set_enabled(true); // tracing on top of metrics
    let lookups_on = client.lookup_batch(&edges).expect("lookups on");
    let replicas_on = client.replica_sets(&vertices).expect("replicas on");
    tps_obs::set_enabled(false);

    assert_eq!(lookups_off, lookups_on, "metrics/tracing changed lookups");
    assert_eq!(
        replicas_off, replicas_on,
        "metrics/tracing changed replica sets"
    );

    client.shutdown().expect("client shutdown");
    handle.join().expect("server thread").expect("server exit");
}
