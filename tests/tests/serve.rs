//! End-to-end serving: partition to files, load, serve, mutate, verify.
//!
//! Pins the PR's acceptance claim: every answer the daemon serves is
//! bit-identical to the partition files it loaded — including after a
//! streamed insert/delete delta, where untouched edges must keep their
//! file-given partitions, removed edges must vanish, and inserted edges
//! must answer with exactly the partition the update reported.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::sink::FileSink;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;
use tps_serve::{spawn_loopback, ServeClient, ServeOptions, ServeState, ServerConfig};

const K: u32 = 4;
const NUM_VERTICES: u64 = 512;

fn test_graph() -> InMemoryGraph {
    // Deterministic, duplicate-free, loop-free, vertices < NUM_VERTICES.
    let mut seen = BTreeSet::new();
    let edges: Vec<Edge> = (0..6000u32)
        .filter_map(|i| {
            let (a, b) = (i % 251, 251 + (i * 13) % 261);
            seen.insert((a, b)).then(|| Edge::new(a, b))
        })
        .collect();
    InMemoryGraph::from_edges(edges)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn served_answers_match_partition_files_across_a_delta() {
    let graph = test_graph();
    let dir = scratch_dir("delta");

    // Partition to `<stem>.part<i>.bel` files exactly as the CLI would.
    let mut sink = FileSink::create(&dir, "g", K, NUM_VERTICES).unwrap();
    let mut stream = graph.stream();
    JobSpec::stream(&mut stream)
        .two_phase(TwoPhaseConfig::default())
        .params(&PartitionParams::new(K))
        .num_vertices(NUM_VERTICES)
        .extra_sink(&mut sink)
        .run()
        .expect("partitioning failed");
    sink.finish().unwrap();

    // Serve the directory over the loopback transport.
    let state = ServeState::load_dir(&dir, &ServeOptions::default()).unwrap();
    let loaded = tps_io::load_partition_dir(&dir).unwrap();
    assert_eq!(loaded.num_edges(), graph.num_edges());
    let (transport, handle) = spawn_loopback(Arc::new(RwLock::new(state)), ServerConfig::default());
    let mut client = ServeClient::over(Box::new(transport)).unwrap();
    assert_eq!(client.k(), K);
    assert_eq!(client.num_edges(), loaded.num_edges());

    // Pre-delta: every file-given assignment answers bit-identically,
    // in both edge orientations; absent edges answer None.
    let all_edges: Vec<Edge> = loaded.assignments.iter().map(|&(e, _)| e).collect();
    let got = client.lookup_batch(&all_edges).unwrap();
    for (&(e, p), got) in loaded.assignments.iter().zip(&got) {
        assert_eq!(*got, Some(p), "pre-delta divergence at {e:?}");
    }
    let flipped: Vec<Edge> = all_edges.iter().map(|e| Edge::new(e.dst, e.src)).collect();
    assert_eq!(client.lookup_batch(&flipped).unwrap(), got);
    assert_eq!(
        client.lookup_batch(&[Edge::new(500, 501)]).unwrap(),
        vec![None]
    );

    // Streamed delta: remove every 7th file edge, insert novel edges.
    let removes: Vec<Edge> = all_edges.iter().copied().step_by(7).collect();
    // Both endpoints < 251: file edges always span 0..251 → 251..512, so
    // these are guaranteed novel.
    let inserts: Vec<Edge> = (0..200u32).map(|i| Edge::new(i, 240 + i % 10)).collect();
    let outcome = client.update(&inserts, &removes).unwrap();
    assert!(outcome.removed.iter().all(Option::is_some));
    assert!(outcome
        .inserted
        .iter()
        .all(|p| matches!(p, Some(p) if *p < K)));
    assert!(outcome.staleness > 0.0);

    // Post-delta: removed edges vanish, inserted edges answer with the
    // partition the update reported, untouched edges still match files.
    let removed_set: BTreeSet<Edge> = removes.iter().copied().collect();
    assert!(client
        .lookup_batch(&removes)
        .unwrap()
        .iter()
        .all(Option::is_none));
    let got = client.lookup_batch(&inserts).unwrap();
    assert_eq!(
        got, outcome.inserted,
        "inserted edges must answer what the update reported"
    );
    let untouched: Vec<(Edge, u32)> = loaded
        .assignments
        .iter()
        .copied()
        .filter(|(e, _)| !removed_set.contains(e))
        .collect();
    let got = client
        .lookup_batch(&untouched.iter().map(|&(e, _)| e).collect::<Vec<_>>())
        .unwrap();
    for (&(e, p), got) in untouched.iter().zip(&got) {
        assert_eq!(*got, Some(p), "post-delta divergence at untouched {e:?}");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 1);
    assert!(stats.staleness > 0.0);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
