//! Property-based tests (proptest) over arbitrary graphs.

use proptest::prelude::*;
use tps_core::balance::PartitionLoads;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::VecSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::degree::DegreeTable;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

/// Arbitrary small graphs: up to 200 edges over up to 64 vertices, with
/// duplicates and self-loops allowed (the algorithms must tolerate both).
fn arb_graph() -> impl Strategy<Value = InMemoryGraph> {
    proptest::collection::vec((0u32..64, 0u32..64), 1..200)
        .prop_map(|pairs| InMemoryGraph::from_edges(pairs.into_iter().map(Edge::from).collect()))
}

fn assert_complete(
    name: &str,
    graph: &InMemoryGraph,
    assignments: &[(Edge, u32)],
    k: u32,
) -> Result<(), TestCaseError> {
    prop_assert!(
        assignments.iter().all(|&(_, p)| p < k),
        "{name}: bad partition id"
    );
    let mut got: Vec<Edge> = assignments.iter().map(|(e, _)| *e).collect();
    let mut want: Vec<Edge> = graph.edges().to_vec();
    got.sort();
    want.sort();
    prop_assert_eq!(got, want, "{}: incomplete assignment", name);
    Ok(())
}

// A wrapper so `assert_complete` can use prop_assert inside a helper.
fn check_partitioner(
    p: &mut dyn Partitioner,
    graph: &InMemoryGraph,
    k: u32,
) -> Result<Vec<(Edge, u32)>, TestCaseError> {
    let mut sink = VecSink::new();
    let mut stream = graph.stream();
    p.partition(&mut stream, &PartitionParams::new(k), &mut sink)
        .map_err(|e| TestCaseError::fail(format!("{}: {e}", p.name())))?;
    assert_complete(&p.name(), graph, sink.assignments(), k)?;
    Ok(sink.into_assignments())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_phase_invariants(graph in arb_graph(), k in 1u32..9) {
        let assignments = check_partitioner(
            &mut TwoPhasePartitioner::new(TwoPhaseConfig::default()),
            &graph,
            k,
        )?;
        // Hard cap holds on every generated graph.
        let cap = PartitionLoads::new(k, graph.num_edges(), 1.05).cap();
        let mut loads = vec![0u64; k as usize];
        for &(_, p) in &assignments {
            loads[p as usize] += 1;
        }
        prop_assert!(loads.iter().all(|&l| l <= cap), "cap {cap} violated: {loads:?}");
    }

    #[test]
    fn streaming_baselines_invariants(graph in arb_graph(), k in 1u32..9) {
        check_partitioner(&mut tps_baselines::HdrfPartitioner::default(), &graph, k)?;
        check_partitioner(&mut tps_baselines::DbhPartitioner::default(), &graph, k)?;
        check_partitioner(&mut tps_baselines::GreedyPartitioner, &graph, k)?;
    }

    #[test]
    fn in_memory_baselines_invariants(graph in arb_graph(), k in 1u32..9) {
        check_partitioner(&mut tps_baselines::NePartitioner, &graph, k)?;
        check_partitioner(&mut tps_baselines::MultilevelPartitioner::default(), &graph, k)?;
    }

    #[test]
    fn clustering_volume_invariant(graph in arb_graph(), passes in 1u32..4) {
        let mut stream = graph.stream();
        let degrees = DegreeTable::compute(&mut stream, graph.num_vertices()).unwrap();
        let cfg = tps_clustering::streaming::ClusteringConfig::for_partitions(4, 1.0, passes);
        let clustering =
            tps_clustering::streaming::cluster_stream(&mut stream, &degrees, &cfg).unwrap();
        prop_assert!(clustering.check_volume_invariant(&degrees).is_ok());
        // Every stream vertex (degree > 0) is clustered.
        for v in 0..graph.num_vertices() as u32 {
            if degrees.degree(v) > 0 {
                prop_assert!(clustering.cluster_of(v).is_some(), "vertex {v} unclustered");
            }
        }
    }

    #[test]
    fn binary_format_roundtrip(pairs in proptest::collection::vec((0u32..1000, 0u32..1000), 0..100)) {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let path = std::env::temp_dir().join(format!(
            "tps-prop-{}-{}.bel",
            std::process::id(),
            edges.len()
        ));
        tps_graph::formats::binary::write_binary_edge_list(&path, 1000, edges.iter().copied())
            .unwrap();
        let mut f = tps_graph::formats::binary::BinaryEdgeFile::open(&path).unwrap();
        let mut back = Vec::new();
        tps_graph::stream::for_each_edge(&mut f, |e| back.push(e)).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, edges);
    }

    #[test]
    fn replication_factor_bounds(graph in arb_graph(), k in 1u32..9) {
        // RF of any complete assignment lies in [1, min(k, max_degree)].
        let assignments = check_partitioner(
            &mut tps_baselines::RandomPartitioner::default(),
            &graph,
            k,
        )?;
        let mut tracker =
            tps_metrics::quality::QualityTracker::new(graph.num_vertices(), k);
        for &(e, p) in &assignments {
            tracker.record(e, p);
        }
        let m = tracker.finish();
        let mut stream = graph.stream();
        let degrees = DegreeTable::compute(&mut stream, graph.num_vertices()).unwrap();
        prop_assert!(m.replication_factor >= 1.0 - 1e-12);
        let bound = (k as f64).min(degrees.max_degree() as f64);
        prop_assert!(
            m.replication_factor <= bound + 1e-12,
            "rf {} > bound {bound}",
            m.replication_factor
        );
    }

    #[test]
    fn graham_mapping_is_balanced(volumes in proptest::collection::vec(1u64..100, 1..64), k in 1u32..9) {
        let v2c: Vec<u32> = (0..volumes.len() as u32).collect();
        let clustering = tps_clustering::model::Clustering::from_parts(v2c, volumes.clone());
        let placement =
            tps_core::two_phase::mapping::ClusterPlacement::sorted_list_schedule(&clustering, k);
        let total: u64 = volumes.iter().sum();
        let max_job = *volumes.iter().max().unwrap();
        let lower = (total as f64 / k as f64).max(max_job as f64);
        // Graham's LPT guarantee: makespan ≤ 4/3 · OPT ≤ 4/3 · max(avg, max).
        // (OPT itself is ≥ both terms.)
        prop_assert!(
            placement.makespan() as f64 <= lower * (4.0 / 3.0) + 1.0,
            "makespan {} vs LPT bound {}",
            placement.makespan(),
            lower * 4.0 / 3.0
        );
    }
}
