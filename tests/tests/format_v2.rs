//! TPSBEL2 format coverage: round-trip properties, corrupt/truncated error
//! paths, and v1↔v2 converter golden tests against the documented layout.

use proptest::prelude::*;
use tps_graph::formats::binary::write_binary_edge_list;
use tps_graph::stream::{for_each_edge, EdgeStream};
use tps_graph::types::Edge;
use tps_io::v2::{
    fnv1a32, write_varint, CHUNK_HEADER_LEN, HEADER_LEN_V2, MAGIC_V2, TRAILER_LEN, TRAILER_MAGIC,
};
use tps_io::{convert_v1_to_v2, convert_v2_to_v1, write_v2_edge_list, MmapV2EdgeFile, V2EdgeFile};

fn tmp(tag: &str, ext: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tps-fmt2-{tag}-{}.{ext}", std::process::id()))
}

fn collect(stream: &mut dyn EdgeStream) -> Vec<Edge> {
    let mut v = Vec::new();
    for_each_edge(stream, |e| v.push(e)).unwrap();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary edge lists survive write-v2 → stream with identical order,
    /// for arbitrary (small, adversarial) chunk sizes, across two passes.
    #[test]
    fn v2_round_trip_preserves_order(
        pairs in proptest::collection::vec((0u32..100_000, 0u32..100_000), 1..400),
        chunk in 1u32..70,
    ) {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let path = tmp("prop", "bel2");
        write_v2_edge_list(&path, 100_000, edges.iter().copied(), chunk).unwrap();
        let mut f = V2EdgeFile::open(&path).unwrap();
        prop_assert_eq!(f.info().num_edges, edges.len() as u64);
        let pass1 = collect(&mut f);
        let pass2 = collect(&mut f);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&pass1, &edges);
        prop_assert_eq!(&pass2, &edges);
    }

    /// v1 -> v2 -> v1 is byte-identical for arbitrary graphs.
    #[test]
    fn converter_round_trip_is_lossless(
        pairs in proptest::collection::vec((0u32..5_000, 0u32..5_000), 0..200),
    ) {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let v1 = tmp("conv-v1", "bel");
        let v2 = tmp("conv-v2", "bel2");
        let back = tmp("conv-back", "bel");
        write_binary_edge_list(&v1, 5_000, edges.iter().copied()).unwrap();
        // Empty edge lists must round-trip too (zero chunks).
        convert_v1_to_v2(&v1, &v2, 16).unwrap();
        convert_v2_to_v1(&v2, &back).unwrap();
        let a = std::fs::read(&v1).unwrap();
        let b = std::fs::read(&back).unwrap();
        for p in [&v1, &v2, &back] { std::fs::remove_file(p).ok(); }
        prop_assert_eq!(a, b);
    }

    /// The bulk (branchless) payload encoder is pinned bit-identical to a
    /// per-varint reference at the *file* level: every chunk payload of a
    /// written file equals `write_varint`-encoding its edges, for
    /// arbitrary edges (all varint widths) and adversarial chunk sizes.
    #[test]
    fn written_chunk_payloads_match_scalar_varint_encoding(
        pairs in proptest::collection::vec((0u64..1 << 32, 0u64..1 << 32), 1..300),
        chunk in 1u32..70,
    ) {
        let edges: Vec<Edge> = pairs
            .into_iter()
            .map(|(s, d)| Edge::new(s as u32, d as u32))
            .collect();
        let path = tmp("bulkenc", "bel2");
        write_v2_edge_list(&path, 0, edges.iter().copied(), chunk).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Walk the chunk sequence per the documented layout and compare
        // each payload against the scalar reference encoding.
        let mut off = HEADER_LEN_V2 as usize;
        for ch in edges.chunks(chunk as usize) {
            let count = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
            prop_assert_eq!(count as usize, ch.len());
            let payload = &bytes[off + CHUNK_HEADER_LEN as usize..][..len];
            let mut want = Vec::new();
            for e in ch {
                write_varint(&mut want, e.src);
                write_varint(&mut want, e.dst);
            }
            prop_assert_eq!(payload, &want[..], "bulk-encoded payload diverges");
            let sum = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap());
            prop_assert_eq!(sum, fnv1a32(payload));
            off += CHUNK_HEADER_LEN as usize + len;
        }
    }

    /// Flipping any payload byte must surface the canonical checksum error
    /// through the full reader stack — on both the buffered and mmap
    /// backends, whose hot paths (SWAR decode + fused checksum) differ.
    #[test]
    fn corrupt_payload_byte_reports_checksum_mismatch(
        pairs in proptest::collection::vec((0u32..100_000, 0u32..100_000), 8..120),
        chunk in 4u32..40,
        victim_raw in 0usize..1 << 20,
        xor in 1u64..256,
    ) {
        let edges: Vec<Edge> = pairs.into_iter().map(Edge::from).collect();
        let path = tmp("crcflip", "bel2");
        write_v2_edge_list(&path, 100_000, edges.iter().copied(), chunk).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte of the first chunk's payload (headers and the
        // index have their own consistency errors; the payload is the
        // checksum's domain).
        let payload0 = u32::from_le_bytes(
            bytes[HEADER_LEN_V2 as usize + 4..HEADER_LEN_V2 as usize + 8].try_into().unwrap(),
        ) as usize;
        let start = (HEADER_LEN_V2 + CHUNK_HEADER_LEN) as usize;
        bytes[start + victim_raw % payload0] ^= xor as u8;
        std::fs::write(&path, &bytes).unwrap();

        let mut buffered = V2EdgeFile::open(&path).unwrap();
        let err = for_each_edge(&mut buffered, |_| {}).expect_err("corrupt payload must fail");
        prop_assert_eq!(err.to_string(), "chunk checksum mismatch (corrupt payload)");
        let mut mapped = MmapV2EdgeFile::open(&path).unwrap();
        let err = for_each_edge(&mut mapped, |_| {}).expect_err("corrupt payload must fail");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(err.to_string(), "chunk checksum mismatch (corrupt payload)");
    }
}

/// The exact on-disk bytes of a tiny v2 file, assembled independently from
/// the documented layout — a golden test for the writer.
#[test]
fn v2_writer_matches_documented_layout() {
    let path = tmp("golden", "bel2");
    let edges = [Edge::new(1, 2), Edge::new(300, 4), Edge::new(5, 6)];
    write_v2_edge_list(&path, 301, edges.iter().copied(), 2).unwrap();
    let got = std::fs::read(&path).unwrap();

    let mut want = Vec::new();
    // Header.
    want.extend_from_slice(&MAGIC_V2);
    want.extend_from_slice(&301u64.to_le_bytes()); // num_vertices
    want.extend_from_slice(&3u64.to_le_bytes()); // num_edges (patched)
    want.extend_from_slice(&2u32.to_le_bytes()); // edges_per_chunk
    want.extend_from_slice(&0u32.to_le_bytes()); // flags

    // Chunk 0: (1,2),(300,4) -> varints 01 02 | AC 02 04 (300 = 0xAC,0x02).
    let payload0: &[u8] = &[0x01, 0x02, 0xAC, 0x02, 0x04];
    want.extend_from_slice(&2u32.to_le_bytes());
    want.extend_from_slice(&(payload0.len() as u32).to_le_bytes());
    want.extend_from_slice(&fnv1a32(payload0).to_le_bytes());
    want.extend_from_slice(payload0);
    // Chunk 1: (5,6).
    let payload1: &[u8] = &[0x05, 0x06];
    want.extend_from_slice(&1u32.to_le_bytes());
    want.extend_from_slice(&(payload1.len() as u32).to_le_bytes());
    want.extend_from_slice(&fnv1a32(payload1).to_le_bytes());
    want.extend_from_slice(payload1);
    // Index: one entry per chunk {offset u64, count u32, payload_len u32}.
    let chunk0_off = HEADER_LEN_V2;
    let chunk1_off = chunk0_off + CHUNK_HEADER_LEN + payload0.len() as u64;
    let index_off = chunk1_off + CHUNK_HEADER_LEN + payload1.len() as u64;
    want.extend_from_slice(&chunk0_off.to_le_bytes());
    want.extend_from_slice(&2u32.to_le_bytes());
    want.extend_from_slice(&(payload0.len() as u32).to_le_bytes());
    want.extend_from_slice(&chunk1_off.to_le_bytes());
    want.extend_from_slice(&1u32.to_le_bytes());
    want.extend_from_slice(&(payload1.len() as u32).to_le_bytes());
    // Trailer.
    want.extend_from_slice(&index_off.to_le_bytes());
    want.extend_from_slice(&2u64.to_le_bytes());
    want.extend_from_slice(&TRAILER_MAGIC);

    assert_eq!(got, want, "writer bytes diverge from the documented layout");
    std::fs::remove_file(&path).ok();
}

/// Golden numbers for the converter on a fixed graph: edge/vertex counts
/// survive, size shrinks, order is preserved.
#[test]
fn converter_golden_counts_and_sizes() {
    let v1 = tmp("goldconv-v1", "bel");
    let v2 = tmp("goldconv-v2", "bel2");
    let edges: Vec<Edge> = (0..10_000u32)
        .map(|i| Edge::new(i % 128, (i * 13) % 512))
        .collect();
    write_binary_edge_list(&v1, 512, edges.iter().copied()).unwrap();

    let info = convert_v1_to_v2(&v1, &v2, 1 << 12).unwrap();
    assert_eq!(info.num_vertices, 512);
    assert_eq!(info.num_edges, 10_000);

    let v1_bytes = std::fs::metadata(&v1).unwrap().len();
    let v2_bytes = std::fs::metadata(&v2).unwrap().len();
    assert_eq!(v1_bytes, 24 + 10_000 * 8);
    // All ids < 512 -> at most 2-byte varints, so v2 is at most half of v1
    // even with chunk/index overhead.
    assert!(v2_bytes * 2 < v1_bytes, "v2 {v2_bytes} vs v1 {v1_bytes}");

    let mut f = V2EdgeFile::open(&v2).unwrap();
    assert_eq!(collect(&mut f), edges);
    std::fs::remove_file(&v1).ok();
    std::fs::remove_file(&v2).ok();
}

#[test]
fn corrupt_chunk_header_is_detected() {
    let path = tmp("corrupt-header", "bel2");
    let edges: Vec<Edge> = (0..500u32).map(|i| Edge::new(i, i + 1)).collect();
    write_v2_edge_list(&path, 512, edges.iter().copied(), 100).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Corrupt the first chunk's edge_count field (disagrees with the index).
    let off = HEADER_LEN_V2 as usize;
    bytes[off] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let mut f = V2EdgeFile::open(&path).unwrap();
    let err = for_each_edge(&mut f, |_| {}).expect_err("corrupt header must fail");
    assert!(err.to_string().contains("disagrees"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_chunk_is_detected() {
    let path = tmp("truncated", "bel2");
    let edges: Vec<Edge> = (0..500u32).map(|i| Edge::new(i, i + 1)).collect();
    write_v2_edge_list(&path, 512, edges.iter().copied(), 100).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Cut the file mid-chunk: the missing trailer is caught at open.
    std::fs::write(&path, &bytes[..HEADER_LEN_V2 as usize + 40]).unwrap();
    assert!(V2EdgeFile::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_trailer_magic_is_detected() {
    let path = tmp("trailer", "bel2");
    write_v2_edge_list(&path, 16, (0..10u32).map(|i| Edge::new(i, i + 1)), 4).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0xFF; // last byte of TRAILER_MAGIC
    std::fs::write(&path, &bytes).unwrap();
    let err = V2EdgeFile::open(&path)
        .err()
        .expect("bad trailer must fail");
    assert!(err.to_string().contains("trailer"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_inconsistent_with_header_is_detected() {
    let path = tmp("lyingindex", "bel2");
    write_v2_edge_list(&path, 16, (0..10u32).map(|i| Edge::new(i, i + 1)), 4).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Lie about the total edge count in the fixed header; the index sum
    // check at open must notice.
    bytes[16..24].copy_from_slice(&999u64.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = V2EdgeFile::open(&path)
        .err()
        .expect("lying header must fail");
    assert!(err.to_string().contains("promises"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// Checksum trailer coverage: TRAILER_LEN is part of the public contract.
#[test]
fn layout_constants_are_stable() {
    assert_eq!(HEADER_LEN_V2, 32);
    assert_eq!(CHUNK_HEADER_LEN, 12);
    assert_eq!(TRAILER_LEN, 24);
    assert_eq!(&MAGIC_V2, b"TPSBEL2\0");
    assert_eq!(&TRAILER_MAGIC, b"TPS2IDX\0");
}
