//! Full-pipeline integration: generate → write to disk → stream from disk →
//! partition → distributed PageRank, validated end to end.

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::VecSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::{write_binary_edge_list, BinaryEdgeFile};
use tps_procsim::cost::simulate_pagerank;
use tps_procsim::{reference_pagerank, ClusterCostModel, DistributedGraph, PageRankConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-pipeline-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn file_stream_partitioning_matches_in_memory() {
    let graph = Dataset::It.generate_scaled(0.01);
    let dir = tmpdir("filestream");
    let path = dir.join("it.bel");
    write_binary_edge_list(&path, graph.num_vertices(), graph.edges().iter().copied()).unwrap();

    let params = PartitionParams::new(8);
    let mut mem_sink = VecSink::new();
    TwoPhasePartitioner::new(TwoPhaseConfig::default())
        .partition(&mut graph.stream(), &params, &mut mem_sink)
        .unwrap();

    let mut file_stream = BinaryEdgeFile::open(&path).unwrap();
    let mut file_sink = VecSink::new();
    TwoPhasePartitioner::new(TwoPhaseConfig::default())
        .partition(&mut file_stream, &params, &mut file_sink)
        .unwrap();

    // The algorithm is deterministic in the stream order, and the file holds
    // the same order — identical decisions, edge for edge.
    assert_eq!(mem_sink.assignments(), file_sink.assignments());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pagerank_correct_across_partitioners() {
    let graph = Dataset::Wi.generate_scaled(0.01);
    let k = 8u32;
    let pr = PageRankConfig {
        iterations: 15,
        ..Default::default()
    };
    let reference = reference_pagerank(graph.edges(), graph.num_vertices(), &pr);

    let mut partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
        Box::new(tps_baselines::DbhPartitioner::default()),
        Box::new(tps_baselines::NePartitioner),
    ];
    for p in partitioners.iter_mut() {
        let mut sink = VecSink::new();
        p.partition(&mut graph.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        let layout =
            DistributedGraph::from_assignments(sink.assignments(), graph.num_vertices(), k);
        let result = tps_procsim::pagerank::run_distributed(&layout, &pr);
        for (v, (got, want)) in result.ranks.iter().zip(&reference).enumerate() {
            let scale = want.abs().max(1.0);
            assert!(
                (got - want).abs() / scale < 1e-9,
                "{}: rank of vertex {v} diverged: {got} vs {want}",
                p.name()
            );
        }
    }
}

#[test]
fn better_partitioning_never_simulates_slower_given_equal_balance() {
    // Compare 2PS-L and Random at identical k on a clustered graph; the
    // replication gap must translate into a simulated-time gap.
    let graph = Dataset::Gsh.generate_scaled(0.01);
    let k = 16u32;
    let pr = PageRankConfig {
        iterations: 10,
        ..Default::default()
    };
    let cost = ClusterCostModel::spark_like();
    let outcome = |p: &mut dyn Partitioner| {
        let mut sink = VecSink::new();
        p.partition(&mut graph.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        let layout =
            DistributedGraph::from_assignments(sink.assignments(), graph.num_vertices(), k);
        simulate_pagerank(&layout, &pr, &cost).unwrap()
    };
    let good = outcome(&mut TwoPhasePartitioner::new(TwoPhaseConfig::default()));
    let bad = outcome(&mut tps_baselines::RandomPartitioner::default());
    assert!(good.replication_factor < bad.replication_factor);
    assert!(good.simulated_time < bad.simulated_time);
}

#[test]
fn partition_files_round_trip_through_procsim() {
    // Write partition files, read them back, and rebuild the layout from the
    // files — the fully materialised out-of-core pipeline.
    let graph = Dataset::Ok.generate_scaled(0.005);
    let dir = tmpdir("partfiles");
    let k = 4u32;
    let mut quality = tps_core::sink::QualitySink::new(graph.num_vertices(), k);
    let mut files = tps_core::sink::FileSink::create(&dir, "ok", k, graph.num_vertices()).unwrap();
    {
        let mut tee = tps_core::sink::TeeSink::new(&mut quality, &mut files);
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut graph.stream(), &PartitionParams::new(k), &mut tee)
            .unwrap();
    }
    let parts = files.finish().unwrap();
    let mut assignments = Vec::new();
    for (i, (path, _)) in parts.iter().enumerate() {
        let mut f = BinaryEdgeFile::open(path).unwrap();
        tps_graph::stream::for_each_edge(&mut f, |e| assignments.push((e, i as u32))).unwrap();
    }
    assert_eq!(assignments.len() as u64, graph.num_edges());
    let layout = DistributedGraph::from_assignments(&assignments, graph.num_vertices(), k);
    let metrics = quality.finish();
    assert!((layout.replication_factor() - metrics.replication_factor).abs() < 1e-12);
    std::fs::remove_dir_all(&dir).ok();
}
