//! Device-model accounting across complete partitioner runs.

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_storage::{DeviceModel, DeviceStream};

#[test]
fn two_phase_makes_three_plus_passes() {
    // 1 degree + `passes` clustering + 1 pre-partition + 1 scoring pass.
    let graph = Dataset::It.generate_scaled(0.005);
    for passes in [1u32, 2, 4] {
        let mut stream = DeviceStream::new(graph.stream(), DeviceModel::page_cache());
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::with_passes(passes));
        p.partition(&mut stream, &PartitionParams::new(8), &mut NullSink)
            .unwrap();
        assert_eq!(
            stream.account().passes,
            3 + passes as u64,
            "unexpected pass count for {passes} clustering passes"
        );
        assert_eq!(
            stream.account().bytes,
            (3 + passes as u64) * graph.num_edges() * 8,
            "every pass reads the full edge list"
        );
    }
}

#[test]
fn dbh_makes_two_passes() {
    let graph = Dataset::It.generate_scaled(0.005);
    let mut stream = DeviceStream::new(graph.stream(), DeviceModel::page_cache());
    let mut p = tps_baselines::DbhPartitioner::default();
    p.partition(&mut stream, &PartitionParams::new(8), &mut NullSink)
        .unwrap();
    assert_eq!(stream.account().passes, 2); // degree pass + assignment pass
}

#[test]
fn table5_device_ordering_holds_for_full_runs() {
    let graph = Dataset::Ok.generate_scaled(0.01);
    let mut totals = Vec::new();
    for device in DeviceModel::table5() {
        let mut stream = DeviceStream::new(graph.stream(), device);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let start = std::time::Instant::now();
        p.partition(&mut stream, &PartitionParams::new(32), &mut NullSink)
            .unwrap();
        let total = start.elapsed() + stream.account().simulated_io;
        totals.push((device.name, total));
    }
    assert!(
        totals[0].1 < totals[1].1,
        "page cache {:?} should beat SSD {:?}",
        totals[0],
        totals[1]
    );
    assert!(
        totals[1].1 < totals[2].1,
        "SSD {:?} should beat HDD {:?}",
        totals[1],
        totals[2]
    );
}

#[test]
fn accounted_io_matches_model_prediction() {
    // The per-edge accounting must add up to exactly what the device model
    // predicts for the pass structure: `passes × pass_time(per-pass bytes)`.
    let graph = Dataset::Ok.generate_scaled(0.01);
    for device in [DeviceModel::ssd(), DeviceModel::hdd()] {
        let mut stream = DeviceStream::new(graph.stream(), device);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        p.partition(&mut stream, &PartitionParams::new(8), &mut NullSink)
            .unwrap();
        let acc = stream.account();
        let per_pass_bytes = graph.num_edges() * 8;
        let predicted = device.pass_time(per_pass_bytes).as_secs_f64() * acc.passes as f64;
        let measured = acc.simulated_io.as_secs_f64();
        assert!(
            (measured - predicted).abs() / predicted < 1e-3,
            "{}: measured {measured} vs predicted {predicted}",
            device.name
        );
    }
}
