//! `DeviceStream` I/O accounting over `tps-io` reader backends.
//!
//! The virtual-clock accounting must be backend-independent for v1 streams:
//! buffered, mmap and prefetch readers all observe the same logical edge
//! sequence, so wrapping any of them in a `DeviceStream` must charge the
//! same pass count and the same bytes. For the compressed v2 format the
//! charge is scaled with `with_record_bytes` to the file's true on-disk
//! cost per edge.

use std::path::PathBuf;

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::write_binary_edge_list;
use tps_graph::stream::for_each_edge;
use tps_io::{open_edge_stream, ReaderBackend, V2EdgeFile};
use tps_storage::{DeviceModel, DeviceStream, IoAccount};

fn materialize(tag: &str) -> (PathBuf, u64) {
    let graph = Dataset::It.generate_scaled(0.005);
    let path = std::env::temp_dir().join(format!("tps-ioacct-{tag}-{}.bel", std::process::id()));
    write_binary_edge_list(&path, graph.num_vertices(), graph.edges().iter().copied()).unwrap();
    (path, graph.num_edges())
}

/// Run a full 2PS-L partition (3 + 1 passes) over `path` with the given
/// backend, wrapped in an SSD device model, and return the account.
fn run_accounted(path: &PathBuf, backend: ReaderBackend) -> IoAccount {
    let stream = open_edge_stream(path, backend).unwrap();
    let mut device = DeviceStream::new(stream, DeviceModel::ssd());
    let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
    p.partition(&mut device, &PartitionParams::new(8), &mut NullSink)
        .unwrap();
    device.account()
}

#[test]
fn accounting_is_identical_across_v1_backends() {
    let (path, num_edges) = materialize("backends");
    let buffered = run_accounted(&path, ReaderBackend::Buffered);
    let mmap = run_accounted(&path, ReaderBackend::Mmap);
    let prefetch = run_accounted(&path, ReaderBackend::Prefetch);

    // 2PS-L with one clustering pass: degree + clustering + pre-partition +
    // partition = 4 full passes, 8 bytes per edge, on every backend.
    assert_eq!(buffered.passes, 4);
    assert_eq!(buffered.bytes, 4 * num_edges * 8);
    assert_eq!(buffered, mmap, "mmap accounting diverged from buffered");
    assert_eq!(
        buffered, prefetch,
        "prefetch accounting diverged from buffered"
    );
}

#[test]
fn v2_record_bytes_charge_the_compressed_size() {
    let (v1_path, num_edges) = materialize("v2bytes");
    let v2_path = v1_path.with_extension("bel2");
    tps_io::convert_v1_to_v2(&v1_path, &v2_path, 4096).unwrap();

    let v2 = V2EdgeFile::open(&v2_path).unwrap();
    let pass_bytes = v2.pass_bytes();
    let record_bytes = pass_bytes as f64 / num_edges as f64;
    assert!(
        record_bytes < 8.0,
        "v2 should beat 8 B/edge, got {record_bytes}"
    );

    let mut device = DeviceStream::with_record_bytes(v2, DeviceModel::hdd(), record_bytes);
    for_each_edge(&mut device, |_| {}).unwrap();
    for_each_edge(&mut device, |_| {}).unwrap();
    let acc = device.account();
    assert_eq!(acc.passes, 2);
    // Two passes charge ~2x the compressed pass size (±1 byte of rounding).
    assert!(
        acc.bytes.abs_diff(2 * pass_bytes) <= 2,
        "charged {} for two passes of {pass_bytes}",
        acc.bytes
    );
    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
}

#[test]
fn empty_pass_costs_nothing_on_any_backend() {
    let path = std::env::temp_dir().join(format!("tps-ioacct-empty-{}.bel", std::process::id()));
    write_binary_edge_list(&path, 0, std::iter::empty()).unwrap();
    for backend in ReaderBackend::ALL {
        let stream = open_edge_stream(&path, backend).unwrap();
        let mut device = DeviceStream::new(stream, DeviceModel::hdd());
        for_each_edge(&mut device, |_| {}).unwrap();
        assert_eq!(device.account().passes, 0, "{backend:?}");
        assert_eq!(device.account().bytes, 0, "{backend:?}");
    }
    std::fs::remove_file(&path).ok();
}
