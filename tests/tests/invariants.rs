//! The contract every partitioner must honour, checked across the whole
//! roster: completeness (every edge assigned exactly once), valid partition
//! ids, and — for cap-enforcing algorithms — the hard `α·|E|/k` balance cap.

use integration_tests::full_roster;
use tps_core::balance::PartitionLoads;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::VecSink;
use tps_graph::datasets::Dataset;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

fn check_graph(graph: &InMemoryGraph, k: u32) {
    let mut want: Vec<Edge> = graph.edges().to_vec();
    want.sort();
    for mut p in full_roster(true) {
        let name = p.name();
        let mut sink = VecSink::new();
        let mut stream = graph.stream();
        let result = p.partition(&mut stream, &PartitionParams::new(k), &mut sink);
        // SNE legitimately refuses k beyond its chunk capacity.
        if name == "SNE" && result.is_err() {
            continue;
        }
        result.unwrap_or_else(|e| panic!("{name} failed: {e}"));
        let assignments = sink.assignments();
        assert!(
            assignments.iter().all(|&(_, p)| p < k),
            "{name}: partition id out of range"
        );
        let mut got: Vec<Edge> = assignments.iter().map(|(e, _)| *e).collect();
        got.sort();
        assert_eq!(
            got, want,
            "{name}: assignment is not a permutation of the edge set"
        );
    }
}

#[test]
fn roster_on_web_graph() {
    let graph = Dataset::It.generate_scaled(0.01);
    for k in [2u32, 8, 17] {
        check_graph(&graph, k);
    }
}

#[test]
fn roster_on_social_graph() {
    let graph = Dataset::Ok.generate_scaled(0.01);
    check_graph(&graph, 8);
}

#[test]
fn roster_on_degenerate_graphs() {
    // Star (extreme skew), path (no structure to exploit), parallel edges +
    // self-loops.
    let star = InMemoryGraph::from_edges((1..60).map(|i| Edge::new(0, i)).collect());
    check_graph(&star, 4);
    let path = InMemoryGraph::from_edges((0..60).map(|i| Edge::new(i, i + 1)).collect());
    check_graph(&path, 4);
    let messy = InMemoryGraph::from_edges(vec![
        Edge::new(0, 0),
        Edge::new(0, 1),
        Edge::new(0, 1),
        Edge::new(1, 2),
        Edge::new(2, 2),
        Edge::new(3, 4),
    ]);
    check_graph(&messy, 3);
}

#[test]
fn two_phase_cap_is_hard_across_ks() {
    let graph = Dataset::Uk.generate_scaled(0.01);
    for k in [2u32, 5, 32, 101] {
        for cfg in [
            tps_core::two_phase::TwoPhaseConfig::default(),
            tps_core::two_phase::TwoPhaseConfig::hdrf_variant(),
        ] {
            let mut p = tps_core::two_phase::TwoPhasePartitioner::new(cfg);
            let mut sink = tps_core::sink::CountingSink::new(k);
            let mut stream = graph.stream();
            tps_core::partitioner::Partitioner::partition(
                &mut p,
                &mut stream,
                &PartitionParams::new(k),
                &mut sink,
            )
            .unwrap();
            let cap = PartitionLoads::new(k, graph.num_edges(), 1.05).cap();
            let max = sink.counts().iter().copied().max().unwrap();
            assert!(max <= cap, "{}: k={k} max load {max} > cap {cap}", p.name());
            assert_eq!(sink.total(), graph.num_edges());
        }
    }
}

#[test]
fn deterministic_roster_reproduces_exactly() {
    let graph = Dataset::Gsh.generate_scaled(0.005);
    for mut p in full_roster(false) {
        let name = p.name();
        let params = PartitionParams::new(6);
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        p.partition(&mut graph.stream(), &params, &mut a).unwrap();
        p.partition(&mut graph.stream(), &params, &mut b).unwrap();
        assert_eq!(
            a.assignments(),
            b.assignments(),
            "{name} is not deterministic"
        );
    }
}

#[test]
fn quality_ordering_on_clustered_graph() {
    // Statistical expectation on a strongly clustered graph: in-memory NE
    // beats 2PS-L, which beats stateless hashing (paper Fig. 4 ordering).
    let graph = Dataset::Gsh.generate_scaled(0.02);
    let k = 16u32;
    let rf = |p: &mut dyn tps_core::partitioner::Partitioner| {
        let mut sink = tps_core::sink::QualitySink::new(graph.num_vertices(), k);
        p.partition(&mut graph.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish().replication_factor
    };
    let ne = rf(&mut tps_baselines::NePartitioner);
    let tps = rf(&mut tps_core::two_phase::TwoPhasePartitioner::new(
        Default::default(),
    ));
    let random = rf(&mut tps_baselines::RandomPartitioner::default());
    assert!(ne < tps, "NE {ne} should beat 2PS-L {tps}");
    assert!(tps < random, "2PS-L {tps} should beat random {random}");
}
