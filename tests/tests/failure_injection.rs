//! Failure injection: I/O errors raised mid-stream must propagate out of
//! every pass of every partitioner — no panic, no partial-success lie.

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::{AssignmentSink, VecSink};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::stream::{EdgeStream, InMemoryGraph};
use tps_graph::types::Edge;

/// A stream that fails with an I/O error after `fail_after` successful reads
/// (cumulative across passes), emulating a device error mid-run.
struct FailingStream {
    inner: InMemoryGraph,
    reads: u64,
    fail_after: u64,
}

impl FailingStream {
    fn new(graph: &InMemoryGraph, fail_after: u64) -> Self {
        FailingStream {
            inner: graph.stream(),
            reads: 0,
            fail_after,
        }
    }
}

impl EdgeStream for FailingStream {
    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()
    }
    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.reads >= self.fail_after {
            return Err(io::Error::other("injected device error"));
        }
        self.reads += 1;
        self.inner.next_edge()
    }
    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
    fn num_vertices_hint(&self) -> Option<u64> {
        self.inner.num_vertices_hint()
    }
}

/// A sink that errors after `fail_after` assignments (emulating a full disk
/// while writing partition files).
struct FailingSink {
    assigned: u64,
    fail_after: u64,
}

impl AssignmentSink for FailingSink {
    fn assign(&mut self, _edge: Edge, _p: u32) -> io::Result<()> {
        if self.assigned >= self.fail_after {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected sink error",
            ));
        }
        self.assigned += 1;
        Ok(())
    }
}

fn graph() -> InMemoryGraph {
    tps_graph::gen::gnm::generate(100, 500, 7)
}

#[test]
fn stream_errors_propagate_from_every_pass() {
    let g = graph();
    // 2PS-L makes 4 passes of 500 reads each; inject failures landing in
    // each of them.
    for fail_after in [10u64, 600, 1100, 1600] {
        let mut stream = FailingStream::new(&g, fail_after);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let err = p
            .partition(&mut stream, &PartitionParams::new(4), &mut VecSink::new())
            .expect_err("must surface the injected error");
        assert!(err.to_string().contains("injected device error"), "{err}");
    }
}

#[test]
fn stream_errors_propagate_from_baselines() {
    let g = graph();
    let mut roster: Vec<Box<dyn Partitioner>> = vec![
        Box::new(tps_baselines::HdrfPartitioner::default()),
        Box::new(tps_baselines::DbhPartitioner::default()),
        Box::new(tps_baselines::NePartitioner),
        Box::new(tps_baselines::SnePartitioner::default()),
        Box::new(tps_baselines::HepPartitioner::with_tau(10.0)),
        Box::new(tps_baselines::MultilevelPartitioner::default()),
    ];
    for p in roster.iter_mut() {
        let mut stream = FailingStream::new(&g, 50);
        let err = p
            .partition(&mut stream, &PartitionParams::new(4), &mut VecSink::new())
            .expect_err(&format!("{} must surface the injected error", p.name()));
        assert!(
            err.to_string().contains("injected device error"),
            "{}: {err}",
            p.name()
        );
    }
}

#[test]
fn sink_errors_propagate() {
    let g = graph();
    let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
    let mut sink = FailingSink {
        assigned: 0,
        fail_after: 100,
    };
    let err = p
        .partition(&mut g.stream(), &PartitionParams::new(4), &mut sink)
        .expect_err("must surface the sink error");
    assert!(err.to_string().contains("injected sink error"), "{err}");
}

#[test]
fn truncated_binary_file_is_an_error_not_a_panic() {
    let dir = std::env::temp_dir().join(format!("tps-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.bel");
    tps_graph::formats::binary::write_binary_edge_list(
        &path,
        10,
        (0..10u32).map(|i| Edge::new(i % 10, (i + 1) % 10)),
    )
    .unwrap();
    // Chop the file mid-record.
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() - 5]).unwrap();
    let mut f = tps_graph::formats::binary::BinaryEdgeFile::open(&path).unwrap();
    let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
    let result = p.partition(&mut f, &PartitionParams::new(2), &mut VecSink::new());
    assert!(result.is_err(), "truncated file must error");
    std::fs::remove_dir_all(&dir).ok();
}
