//! Distributed/parallel equivalence and protocol-trace contracts.
//!
//! Pins the guarantees documented in `tps-dist`:
//!
//! * a distributed run over any transport is **bit-identical** to the
//!   in-process `ParallelRunner` at the same worker count, for every
//!   storage backend (in-memory, v1 file, v2 file);
//! * the loopback-channel and loopback-TCP transports carry **identical
//!   protocol traces** (same message sequence, same frame bytes lengths) —
//!   serialisation lives entirely above the transport;
//! * corrupt or truncated frames are errors, never panics or hangs.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use tps_core::parallel::ParallelRunner;
use tps_core::partitioner::PartitionParams;
use tps_core::sink::{MemorySpoolFactory, VecSink};
use tps_core::two_phase::TwoPhaseConfig;
use tps_dist::transport::TraceEvent;
use tps_dist::{
    loopback_pair, run_coordinator, run_worker, AttachedResolver, FaultPolicy, InputDescriptor,
    NoReplacements, TcpTransport, TraceTransport, Transport,
};
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

/// Which transport a dist run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wire {
    Loopback,
    Tcp,
}

/// Run a traced distributed job over `wire` and return (assignments,
/// coordinator-side trace per worker).
fn dist_traced(
    source: &dyn RangedEdgeSource,
    k: u32,
    workers: usize,
    wire: Wire,
) -> (Vec<(Edge, u32)>, Vec<Vec<TraceEvent>>) {
    let config = TwoPhaseConfig::default();
    let params = PartitionParams::new(k);
    let traces: Vec<Arc<Mutex<Vec<TraceEvent>>>> = (0..workers)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();

    let mut coordinator_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
    let mut worker_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
    match wire {
        Wire::Loopback => {
            for trace in &traces {
                let (c, w) = loopback_pair();
                coordinator_sides.push(Box::new(TraceTransport::new(c, trace.clone())));
                worker_sides.push(Box::new(w));
            }
        }
        Wire::Tcp => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            for trace in &traces {
                let client = std::net::TcpStream::connect(addr).unwrap();
                let (served, _) = listener.accept().unwrap();
                coordinator_sides.push(Box::new(TraceTransport::new(
                    TcpTransport::new(served).unwrap(),
                    trace.clone(),
                )));
                worker_sides.push(Box::new(TcpTransport::new(client).unwrap()));
            }
        }
    }

    let mut sink = VecSink::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_sides
            .into_iter()
            .map(|mut t| {
                scope.spawn(move || {
                    run_worker(&mut *t, &AttachedResolver(source), &MemorySpoolFactory)
                })
            })
            .collect();
        run_coordinator(
            &config,
            &params,
            source.info(),
            &InputDescriptor::Attached,
            workers,
            coordinator_sides,
            &mut NoReplacements,
            &FaultPolicy::default(),
            0,
            &mut sink,
        )
        .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    });
    let traces = traces.iter().map(|t| t.lock().unwrap().clone()).collect();
    (sink.into_assignments(), traces)
}

fn parallel_reference(g: &InMemoryGraph, k: u32, workers: usize) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    ParallelRunner::new(TwoPhaseConfig::default(), workers)
        .partition(g, &PartitionParams::new(k), &mut sink)
        .unwrap();
    sink.into_assignments()
}

/// Arbitrary small graphs (duplicates and self-loops allowed).
fn arb_graph() -> impl Strategy<Value = InMemoryGraph> {
    proptest::collection::vec((0u32..48, 0u32..48), 1..160)
        .prop_map(|pairs| InMemoryGraph::from_edges(pairs.into_iter().map(Edge::from).collect()))
}

proptest! {
    // Each case spins up to 3 backends × 2 transports × 3 worker counts of
    // full protocol runs (TCP included), so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dist_equals_parallel_across_transports_backends_and_worker_counts(
        graph in arb_graph(),
        k in 1u32..9,
    ) {
        // Materialise the same edges as v1 and v2 files (chunk size chosen
        // not to divide range boundaries).
        let dir = std::env::temp_dir().join(format!(
            "tps-dist-prop-{}-{:x}",
            std::process::id(),
            graph.num_edges() * 31 + k as u64
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let v1_path = dir.join("g.bel");
        let v2_path = dir.join("g.bel2");
        tps_graph::formats::binary::write_binary_edge_list(
            &v1_path,
            graph.num_vertices(),
            graph.edges().iter().copied(),
        )
        .unwrap();
        tps_io::write_v2_edge_list(
            &v2_path,
            graph.num_vertices(),
            graph.edges().iter().copied(),
            7,
        )
        .unwrap();
        let v1 = tps_io::RangedV1File::open(&v1_path).unwrap();
        let v2 = tps_io::RangedV2File::open(&v2_path).unwrap();

        for workers in [1usize, 2, 4] {
            let want = parallel_reference(&graph, k, workers);
            let (mem_out, mem_trace) = dist_traced(&graph, k, workers, Wire::Loopback);
            prop_assert_eq!(&mem_out, &want, "loopback/mem, {} workers", workers);

            // Storage backends change nothing: same shard map, same bytes.
            let (v1_out, v1_trace) = dist_traced(&v1, k, workers, Wire::Loopback);
            let (v2_out, v2_trace) = dist_traced(&v2, k, workers, Wire::Loopback);
            prop_assert_eq!(&v1_out, &want, "loopback/v1, {} workers", workers);
            prop_assert_eq!(&v2_out, &want, "loopback/v2, {} workers", workers);
            prop_assert_eq!(&v1_trace, &mem_trace, "v1 trace, {} workers", workers);
            prop_assert_eq!(&v2_trace, &mem_trace, "v2 trace, {} workers", workers);

            // TCP carries the identical protocol trace and output.
            let (tcp_out, tcp_trace) = dist_traced(&graph, k, workers, Wire::Tcp);
            prop_assert_eq!(&tcp_out, &want, "tcp/mem, {} workers", workers);
            prop_assert_eq!(&tcp_trace, &mem_trace, "tcp trace, {} workers", workers);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn traces_follow_the_documented_message_sequence() {
    let g = tps_graph::datasets::Dataset::Ok.generate_scaled(0.01);
    let (_, traces) = dist_traced(&g, 8, 2, Wire::Loopback);
    for trace in &traces {
        let names: Vec<&str> = trace
            .iter()
            .map(|e| {
                // Coordinator-side: sent frames are C→W messages.
                e.name()
            })
            .collect();
        // Run frames repeat; collapse them for the structural check.
        let mut collapsed = names.clone();
        collapsed.dedup();
        assert_eq!(
            collapsed,
            vec![
                "Hello",
                "Job",
                "Degrees",
                "Globals",
                "LocalClustering",
                "Plan",
                "ReplicationChunk",
                "MergedReplicationChunk",
                "ShardDone",
                "Pull",
                "Run",
                "RunsDone",
                "Shutdown",
            ],
            "full trace: {names:?}"
        );
    }
}

/// A graph whose vertex-id space spans several replication chunks
/// (`ReplChunks` targets 2^17 words per frame; at k = 8 that is 131072
/// vertices per chunk), with edges scattered across the whole range so
/// every chunk carries bits.
#[test]
fn replication_barrier_spans_multiple_chunks_bit_identically() {
    let num_vertices: u32 = 300_000;
    let mut edges = Vec::new();
    for i in 0..400u32 {
        let u = (i * 1_499) % num_vertices;
        let v = (u + 137_003) % num_vertices;
        edges.push(Edge::new(u, v));
    }
    edges.push(Edge::new(0, num_vertices - 1)); // pin the id space
    let g = InMemoryGraph::from_edges(edges);
    let k = 8;
    let chunks = tps_dist::ReplChunks::new(g.num_vertices(), k);
    assert!(
        chunks.count() >= 3,
        "test graph must span several chunks, got {}",
        chunks.count()
    );

    for workers in [2usize, 3] {
        let want = parallel_reference(&g, k, workers);
        let (got, traces) = dist_traced(&g, k, workers, Wire::Loopback);
        assert_eq!(got, want, "{workers} workers");
        for (w, trace) in traces.iter().enumerate() {
            let recv_chunks = trace
                .iter()
                .filter(|e| !e.sent && e.name() == "ReplicationChunk")
                .count();
            let sent_merged = trace
                .iter()
                .filter(|e| e.sent && e.name() == "MergedReplicationChunk")
                .count();
            assert_eq!(
                recv_chunks,
                chunks.count() as usize,
                "worker {w}: one ReplicationChunk per vertex range"
            );
            assert_eq!(
                sent_merged,
                chunks.count() as usize,
                "worker {w}: one MergedReplicationChunk per vertex range"
            );
            // Every barrier frame stays far below the frame cap — the
            // point of chunking (zero-run encoding shrinks them further).
            for e in trace
                .iter()
                .filter(|e| e.name() == "ReplicationChunk" || e.name() == "MergedReplicationChunk")
            {
                assert!(
                    e.len < 1 << 21,
                    "worker {w}: {} frame of {} bytes",
                    e.name(),
                    e.len
                );
            }
        }
    }
}

#[test]
fn dist_handles_the_prefetch_and_mmap_backends_too() {
    let g = tps_graph::datasets::Dataset::Ok.generate_scaled(0.01);
    let dir = std::env::temp_dir().join(format!("tps-dist-backends-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("g.bel");
    tps_graph::formats::binary::write_binary_edge_list(
        &v1_path,
        g.num_vertices(),
        g.edges().iter().copied(),
    )
    .unwrap();
    let want = parallel_reference(&g, 8, 3);
    for backend in tps_io::ReaderBackend::ALL {
        let source = tps_io::open_ranged_backend(&v1_path, backend).unwrap();
        let (out, _) = dist_traced(&*source, 8, 3, Wire::Loopback);
        assert_eq!(out, want, "{backend:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---- error paths: a corrupt peer must produce errors, not hangs ----

/// Feed the coordinator a worker that sends garbage instead of `Hello`.
#[test]
fn coordinator_rejects_garbage_handshake() {
    let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1)]);
    let (c, mut w) = loopback_pair();
    let transports: Vec<Box<dyn Transport>> = vec![Box::new(c)];
    w.send(&[250, 1, 2, 3]).unwrap(); // unknown tag
    let mut sink = VecSink::new();
    let err = run_coordinator(
        &TwoPhaseConfig::default(),
        &PartitionParams::new(2),
        g.info(),
        &InputDescriptor::Attached,
        1,
        transports,
        &mut NoReplacements,
        &FaultPolicy::default(),
        0,
        &mut sink,
    )
    .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

/// A worker whose coordinator vanishes mid-protocol errors out cleanly.
#[test]
fn worker_survives_coordinator_disconnect() {
    let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2)]);
    let (c, mut w) = loopback_pair();
    drop(c);
    let err = run_worker(&mut w, &AttachedResolver(&g), &MemorySpoolFactory).unwrap_err();
    // Depending on timing the worker fails sending Hello (BrokenPipe) or
    // waiting for the Job (UnexpectedEof) — either way, an error, no hang.
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::UnexpectedEof
        ),
        "{err}"
    );
}

/// A worker receiving a `Job` whose graph info contradicts its source
/// aborts (and the coordinator sees the abort as an error).
#[test]
fn mismatched_job_info_aborts_the_run() {
    let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2)]);
    let lying = InMemoryGraph::from_edges(vec![Edge::new(0, 1)]);
    let (c, w) = loopback_pair();
    let transports: Vec<Box<dyn Transport>> = vec![Box::new(c)];
    let mut sink = VecSink::new();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut w = w;
            run_worker(&mut w, &AttachedResolver(&lying), &MemorySpoolFactory)
        });
        let err = run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(2),
            g.info(),
            &InputDescriptor::Attached,
            1,
            transports,
            &mut NoReplacements,
            &FaultPolicy::default(),
            0,
            &mut sink,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("input mismatch"),
            "unexpected error: {err}"
        );
        assert!(handle.join().unwrap().is_err());
    });
}

/// Abort reasons propagate across real TCP, not just loopback.
#[test]
fn abort_propagates_over_tcp() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut t = TcpTransport::new(std::net::TcpStream::connect(addr).unwrap()).unwrap();
        // Speak a wrong protocol version.
        t.send(&tps_dist::Message::Hello { version: 999 }.encode())
            .unwrap();
        // The coordinator answers with an Abort frame.
        tps_dist::Message::decode(&t.recv().unwrap()).unwrap()
    });
    let (stream, _) = listener.accept().unwrap();
    let transports: Vec<Box<dyn Transport>> = vec![Box::new(TcpTransport::new(stream).unwrap())];
    let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1)]);
    let mut sink = VecSink::new();
    let err = run_coordinator(
        &TwoPhaseConfig::default(),
        &PartitionParams::new(2),
        g.info(),
        &InputDescriptor::Attached,
        1,
        transports,
        &mut NoReplacements,
        &FaultPolicy::default(),
        0,
        &mut sink,
    )
    .unwrap_err();
    assert!(err.to_string().contains("protocol"), "{err}");
    let got = client.join().unwrap();
    assert!(matches!(got, tps_dist::Message::Abort { .. }));
}
