//! Out-of-core end-to-end: a `--mem-budget-mb` job whose cluster state
//! pages through a real on-disk `FilePageStore` must be bit-identical to
//! the unbudgeted run — assignments, replication factor, everything the
//! partitioner decides. This is the integration half of the proptested
//! per-crate bit-identity suites (`tps-clustering::paged`,
//! `tps-core::two_phase`): here the whole stack runs, file input through
//! `tps_io::run_job`, with pages actually hitting disk.

use tps_core::job::{JobSpec, ThreadMode};
use tps_core::sink::VecSink;
use tps_graph::datasets::Dataset;
use tps_io::write_v2_edge_list;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-ooc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn budgeted_file_job_is_bit_identical_to_unbudgeted() {
    let graph = Dataset::Ok.generate_scaled(0.01);
    let dir = tmpdir("bitident");
    let path = dir.join("ok.bel2");
    write_v2_edge_list(
        &path,
        graph.num_vertices(),
        graph.edges().iter().copied(),
        4096,
    )
    .unwrap();

    let run = |budget_mb: u64| {
        let mut sink = VecSink::new();
        let outcome = tps_io::run_job(
            JobSpec::path(&path)
                .k(8)
                .threads(ThreadMode::Serial)
                .mem_budget_mb(budget_mb)
                .extra_sink(&mut sink),
        )
        .unwrap();
        (sink.into_assignments(), outcome)
    };

    let (base_assign, base) = run(0);
    // 1 MiB: cluster-page share is 512 KiB against ~8 MiB of cluster state
    // for this graph — real eviction through the temp-dir page files.
    for budget_mb in [1u64, 4096] {
        let (assign, outcome) = run(budget_mb);
        assert_eq!(assign, base_assign, "budget {budget_mb} MiB diverged");
        assert_eq!(
            outcome.metrics.replication_factor, base.metrics.replication_factor,
            "budget {budget_mb} MiB changed rf"
        );
        assert!(
            outcome.report.counter("paging_budget_bytes") > 0,
            "budget {budget_mb} MiB did not engage cluster paging"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
