//! Property-based tests (proptest) over the incremental 2PS-L engine.
//!
//! Pins the contract `tps-serve` builds on: at zero drift the engine *is*
//! the bootstrap partitioning; novel-edge churn that is fully undone
//! restores the bootstrap state bit for bit; and the retained books
//! (per-partition loads, replica reference counts, staleness) stay exact
//! under arbitrary interleavings of insertions and deletions.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use tps_core::incremental::IncrementalTwoPhase;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

/// Arbitrary simple graphs: unique canonical edges, no self-loops (the
/// engine's live-edge map is keyed on canonical edges, so duplicates and
/// loops are the *callers'* problem — `ServeState::apply` rejects them).
fn simple_edges(pairs: Vec<(u32, u32)>) -> Vec<Edge> {
    let uniq: BTreeSet<(u32, u32)> = pairs
        .into_iter()
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    uniq.into_iter().map(|(s, d)| Edge::new(s, d)).collect()
}

fn arb_simple_graph() -> impl Strategy<Value = InMemoryGraph> {
    proptest::collection::vec((0u32..48, 0u32..48), 1..120).prop_map(|pairs| {
        let mut edges = simple_edges(pairs);
        if edges.is_empty() {
            edges.push(Edge::new(0, 1)); // all draws were self-loops
        }
        InMemoryGraph::from_edges(edges)
    })
}

/// Novel edges disjoint from [`arb_simple_graph`]'s vertex range, so
/// inserting them never collides with a bootstrap edge.
fn arb_novel_edges() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((48u32..80, 48u32..80), 1..40).prop_map(simple_edges)
}

fn bootstrap(graph: &InMemoryGraph, k: u32) -> IncrementalTwoPhase {
    let mut stream = graph.stream();
    IncrementalTwoPhase::bootstrap(&mut stream, k, 1.05, 1.5, TwoPhaseConfig::default())
        .expect("bootstrap over an in-memory stream cannot fail")
}

fn live_map(eng: &IncrementalTwoPhase) -> BTreeMap<Edge, u32> {
    eng.assignments().collect()
}

/// The books must be derivable from the live assignment alone: loads are
/// per-partition edge counts, and a vertex has a replica on `p` iff some
/// live edge incident to it lives on `p` (exact retraction on delete).
fn check_books(eng: &IncrementalTwoPhase, k: u32) -> Result<(), TestCaseError> {
    let live = live_map(eng);
    let mut loads = vec![0u64; k as usize];
    for p in live.values() {
        loads[*p as usize] += 1;
    }
    prop_assert_eq!(eng.loads(), &loads[..], "loads diverged from a recount");
    prop_assert_eq!(eng.num_edges(), live.len() as u64);
    for v in 0..eng.num_vertices() as u32 {
        for p in 0..k {
            let want = live
                .iter()
                .any(|(e, &q)| q == p && (e.src == v || e.dst == v));
            prop_assert_eq!(
                eng.has_replica(v, p),
                want,
                "replica books wrong at vertex {} partition {}",
                v,
                p
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inserting novel edges and then removing them all restores the
    /// bootstrap assignment bit for bit, with staleness strictly
    /// increasing across every mutation (it counts drift, not live size).
    #[test]
    fn undone_novel_churn_restores_bootstrap(
        graph in arb_simple_graph(),
        k in 1u32..9,
        novel in arb_novel_edges(),
    ) {
        let mut eng = bootstrap(&graph, k);
        prop_assert_eq!(eng.staleness(), 0.0, "zero drift at bootstrap");
        let baseline = live_map(&eng);
        prop_assert_eq!(baseline.len() as u64, graph.num_edges());
        check_books(&eng, k)?;

        let mut staleness = 0.0;
        let mut given = Vec::new();
        for &e in &novel {
            let p = eng.insert(e);
            prop_assert!(p < k);
            prop_assert_eq!(eng.partition_of(e), Some(p));
            prop_assert!(eng.staleness() > staleness, "staleness must grow per mutation");
            staleness = eng.staleness();
            given.push((e, p));
        }
        check_books(&eng, k)?;

        for &(e, p) in given.iter().rev() {
            prop_assert_eq!(eng.remove(e), Some(p), "removal must report the live partition");
            prop_assert!(eng.staleness() > staleness, "staleness must grow per mutation");
            staleness = eng.staleness();
        }
        prop_assert_eq!(live_map(&eng), baseline, "undone churn must restore bootstrap");
        check_books(&eng, k)?;
    }

    /// Removing and re-inserting live edges keeps the books exact: the
    /// re-inserted edge may land on a different partition, but the live
    /// edge *set* and every derived count stay consistent throughout.
    #[test]
    fn live_edge_churn_keeps_books_exact(
        graph in arb_simple_graph(),
        k in 1u32..9,
        stride in 1usize..5,
    ) {
        let mut eng = bootstrap(&graph, k);
        let baseline = live_map(&eng);
        let victims: Vec<Edge> = baseline.keys().copied().step_by(stride).collect();

        for &e in &victims {
            prop_assert!(eng.remove(e).is_some());
            prop_assert_eq!(eng.partition_of(e), None);
            prop_assert_eq!(eng.remove(e), None, "double remove must be rejected");
        }
        check_books(&eng, k)?;

        for &e in &victims {
            let p = eng.insert(e);
            prop_assert!(p < k);
            prop_assert_eq!(eng.partition_of(e), Some(p));
        }
        check_books(&eng, k)?;
        let after: Vec<Edge> = live_map(&eng).keys().copied().collect();
        let want: Vec<Edge> = baseline.keys().copied().collect();
        prop_assert_eq!(after, want, "churn must preserve the live edge set");
    }
}
