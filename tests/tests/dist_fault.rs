//! Chaos tests for the fault-tolerant distributed runtime.
//!
//! The contract under test (ISSUE 4 / ROADMAP "worker fault handling"):
//! killing any single worker at **any** protocol point — every barrier and
//! mid-`Run` stream — still produces output **bit-identical** to the
//! in-process `--threads N` run, with a bounded number of re-issues, for
//! every storage backend. Also pinned here: epoch-stale frames from a
//! previous issuance are discarded (never merged or emitted twice), future
//! epochs and foreign shards are rejected, receive timeouts detect hung
//! (not just dead) workers, and standbys / completed workers / supplied
//! replacements all serve re-issues.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::Scope;
use std::time::Duration;

use proptest::prelude::*;
use tps_core::parallel::ParallelRunner;
use tps_core::partitioner::{PartitionParams, RunReport};
use tps_core::sink::{MemorySpoolFactory, VecSink};
use tps_core::two_phase::TwoPhaseConfig;
use tps_dist::{
    loopback_pair, run_coordinator, run_worker, run_worker_handshake, AttachedResolver,
    FaultPolicy, FaultTransport, Handshake, InputDescriptor, KillMode, KillPoint, KillSpec,
    Message, NoReplacements, Transport, WorkerSupply, PROTOCOL_VERSION,
};
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::InMemoryGraph;
use tps_graph::types::Edge;

/// A supply that spawns fresh loopback workers (handshaking with `Rejoin`,
/// as a reconnecting process worker would) into an enclosing thread scope.
struct ScopedSupply<'s, 'e, 'g> {
    scope: &'s Scope<'s, 'e>,
    source: &'g dyn RangedEdgeSource,
    spawned: &'g AtomicUsize,
}

impl<'s, 'e, 'g: 'e> WorkerSupply for ScopedSupply<'s, 'e, 'g> {
    fn replacement(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
        let (c, mut w) = loopback_pair();
        let source = self.source;
        self.spawned.fetch_add(1, Ordering::Relaxed);
        self.scope.spawn(move || {
            let _ = run_worker_handshake(
                &mut w,
                &AttachedResolver(source),
                &MemorySpoolFactory,
                Handshake::Rejoin,
            );
        });
        Ok(Some(Box::new(c)))
    }
}

/// Run a distributed job where worker `killed` dies at `kill`, recovering
/// through supply-spawned replacements. Returns the assignments and report.
fn dist_chaos(
    source: &dyn RangedEdgeSource,
    k: u32,
    workers: usize,
    killed: usize,
    kill: KillSpec,
    policy: &FaultPolicy,
) -> io::Result<(Vec<(Edge, u32)>, RunReport)> {
    let config = TwoPhaseConfig::default();
    let params = PartitionParams::new(k);
    let spawned = AtomicUsize::new(0);
    let mut sink = VecSink::new();
    let report = std::thread::scope(|scope| {
        let mut coordinator_sides: Vec<Box<dyn Transport>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (c, wk) = loopback_pair();
            coordinator_sides.push(Box::new(c));
            if w == killed {
                let mut t = FaultTransport::new(wk, kill, KillMode::Sever);
                scope.spawn(move || {
                    // Killed workers error out by design; their result is
                    // the fault being injected.
                    let _ = run_worker(&mut t, &AttachedResolver(source), &MemorySpoolFactory);
                });
            } else {
                let mut t = wk;
                scope.spawn(move || {
                    let _ = run_worker(&mut t, &AttachedResolver(source), &MemorySpoolFactory);
                });
            }
        }
        let mut supply = ScopedSupply {
            scope,
            source,
            spawned: &spawned,
        };
        run_coordinator(
            &config,
            &params,
            source.info(),
            &InputDescriptor::Attached,
            workers,
            coordinator_sides,
            &mut supply,
            policy,
            0,
            &mut sink,
        )
    })?;
    Ok((sink.into_assignments(), report))
}

fn parallel_reference(g: &InMemoryGraph, k: u32, workers: usize) -> Vec<(Edge, u32)> {
    let mut sink = VecSink::new();
    ParallelRunner::new(TwoPhaseConfig::default(), workers)
        .partition(g, &PartitionParams::new(k), &mut sink)
        .unwrap();
    sink.into_assignments()
}

/// Exhaustive sweep: kill each worker after each frame index, across all
/// three storage backends. Frame-count kill points cover every barrier
/// (the worker's protocol is 13 frames plus its `Run` stream).
#[test]
fn any_worker_killed_at_any_frame_is_bit_identical() {
    let g = tps_graph::gen::gnm::generate(64, 400, 11);
    let dir = std::env::temp_dir().join(format!("tps-chaos-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("g.bel");
    let v2_path = dir.join("g.bel2");
    tps_graph::formats::binary::write_binary_edge_list(
        &v1_path,
        g.num_vertices(),
        g.edges().iter().copied(),
    )
    .unwrap();
    tps_io::write_v2_edge_list(&v2_path, g.num_vertices(), g.edges().iter().copied(), 37).unwrap();
    let v1 = tps_io::RangedV1File::open(&v1_path).unwrap();
    let v2 = tps_io::RangedV2File::open(&v2_path).unwrap();
    let sources: [(&str, &dyn RangedEdgeSource); 3] = [("mem", &g), ("v1", &v1), ("v2", &v2)];

    let workers = 2;
    let want = parallel_reference(&g, 8, workers);
    let policy = FaultPolicy::with_retries(2);
    for (backend, source) in sources {
        // 15 frames covers the full per-worker exchange of this graph
        // (one Run frame per shard); the last indices exercise "killed
        // after its shard completed", which must be a no-op.
        for frame in 0..=15u32 {
            for killed in 0..workers {
                let kill = KillSpec {
                    point: KillPoint::Frames(frame),
                };
                let (got, report) = dist_chaos(source, 8, workers, killed, kill, &policy)
                    .unwrap_or_else(|e| {
                        panic!("{backend}: kill worker {killed} at frame {frame}: {e}")
                    });
                assert_eq!(
                    got, want,
                    "{backend}: output diverged (worker {killed} killed at frame {frame})"
                );
                let retries = report.counter("worker_retries");
                assert!(
                    retries <= policy.max_retries as u64,
                    "{backend}: {retries} retries exceed the budget"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Named kill points at the three chaos barriers the CI job drives.
#[test]
fn named_kill_points_recover_including_mid_run_stream() {
    // Big enough that each shard streams multiple Run frames (8192/batch).
    let g = tps_graph::datasets::Dataset::Ok.generate_scaled(0.05);
    let workers = 2;
    let want = parallel_reference(&g, 8, workers);
    let policy = FaultPolicy::with_retries(2);
    for (spec, want_retries) in [
        ("recv:globals", 1),                // dies while phase 1 runs
        ("send:localclustering", 1),        // dies pre-plan
        ("recv:mergedreplicationchunk", 1), // dies mid phase 2
        ("send:run:1", 1),                  // dies mid-Run stream, after one batch
        ("send:run:2", 1),                  // deeper into the stream
        ("send:runsdone", 0),               // dies with its work fully delivered
    ] {
        let kill = KillSpec::parse(spec).unwrap();
        let (got, report) = dist_chaos(&g, 8, workers, 1, kill, &policy).unwrap();
        assert_eq!(got, want, "kill at {spec}");
        assert_eq!(
            report.counter("worker_retries"),
            want_retries,
            "one kill means at most one re-issue at {spec}"
        );
        // Early kills recover through a supply-spawned rejoining worker;
        // emit-stage kills may be served by an already-idle completed
        // worker instead — either way, at most one new connection.
        assert!(report.counter("workers_rejoined") <= 1, "{spec}");
    }
}

proptest! {
    // Each case is several full protocol runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graph × k × worker count × kill frame × killed worker:
    /// output is bit-identical to `--threads N` and retries stay bounded.
    #[test]
    fn chaos_recovery_is_bit_identical(
        pairs in proptest::collection::vec((0u32..48, 0u32..48), 1..160),
        k in 1u32..9,
        workers in 1usize..5,
        kill_frame in 0u32..16,
        killed_index in 0usize..4,
    ) {
        let g = InMemoryGraph::from_edges(pairs.into_iter().map(Edge::from).collect());
        let killed = killed_index % workers;
        let want = parallel_reference(&g, k, workers);
        let policy = FaultPolicy::with_retries(2);
        let kill = KillSpec { point: KillPoint::Frames(kill_frame) };
        let (got, report) = dist_chaos(&g, k, workers, killed, kill, &policy).unwrap();
        prop_assert_eq!(got, want);
        prop_assert!(report.counter("worker_retries") <= 2);
    }
}

// ---- epoch semantics ----

/// Rebuild a worker frame with its epoch lowered by one — the forgery a
/// presumed-dead worker's leftovers would look like.
fn with_epoch(msg: &Message, epoch: u32) -> Message {
    match msg.clone() {
        Message::Degrees { shard, degrees, .. } => Message::Degrees {
            shard,
            epoch,
            degrees,
        },
        Message::LocalClustering {
            shard, clustering, ..
        } => Message::LocalClustering {
            shard,
            epoch,
            clustering,
        },
        Message::ReplicationChunk {
            shard,
            chunk,
            words,
            ..
        } => Message::ReplicationChunk {
            shard,
            epoch,
            chunk,
            words,
        },
        Message::ShardDone {
            shard,
            counters,
            loads,
            assigned,
            trace,
            counter_snap,
            ..
        } => Message::ShardDone {
            shard,
            epoch,
            counters,
            loads,
            assigned,
            trace,
            counter_snap,
        },
        Message::Run { shard, batch, .. } => Message::Run {
            shard,
            epoch,
            batch,
        },
        Message::RunsDone { shard, .. } => Message::RunsDone { shard, epoch },
        other => other,
    }
}

/// A worker-side transport that precedes every enveloped frame of epoch
/// `e > 0` with a duplicate claiming the given forged epoch.
struct InjectEpoch<T: Transport> {
    inner: T,
    forge: fn(u32) -> u32,
}

impl<T: Transport> Transport for InjectEpoch<T> {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if let Ok(msg) = Message::decode(frame) {
            if let Some((_, epoch)) = msg.shard_epoch() {
                if epoch > 0 {
                    let forged = with_epoch(&msg, (self.forge)(epoch));
                    self.inner.send(&forged.encode())?;
                }
            }
        }
        self.inner.send(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.inner.recv()
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

/// Kill the only worker right after its `Job`, then have the replacement
/// duplicate **every** frame — degrees, clustering, summary, every `Run`
/// batch, the `RunsDone` — under the stale epoch 0. The coordinator must
/// discard each duplicate (nothing merged or emitted twice) and still
/// produce the bit-identical output.
#[test]
fn stale_epoch_frames_are_discarded_not_merged_twice() {
    let g = tps_graph::gen::gnm::generate(80, 600, 3);
    let want = parallel_reference(&g, 4, 1);
    let mut sink = VecSink::new();
    let report = std::thread::scope(|scope| {
        let g = &g;
        let (c, wk) = loopback_pair();
        let mut doomed = FaultTransport::new(
            wk,
            KillSpec {
                point: KillPoint::Frames(2), // Hello sent, Job received, dead
            },
            KillMode::Sever,
        );
        scope.spawn(move || {
            let _ = run_worker(&mut doomed, &AttachedResolver(g), &MemorySpoolFactory);
        });

        struct StaleSupply<'s, 'e, 'g> {
            scope: &'s Scope<'s, 'e>,
            source: &'g InMemoryGraph,
        }
        impl<'s, 'e, 'g: 'e> WorkerSupply for StaleSupply<'s, 'e, 'g> {
            fn replacement(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
                let (c, w) = loopback_pair();
                let source = self.source;
                self.scope.spawn(move || {
                    let mut t = InjectEpoch {
                        inner: w,
                        forge: |e| e - 1,
                    };
                    let _ = run_worker_handshake(
                        &mut t,
                        &AttachedResolver(source),
                        &MemorySpoolFactory,
                        Handshake::Rejoin,
                    );
                });
                Ok(Some(Box::new(c)))
            }
        }
        let mut supply = StaleSupply { scope, source: g };
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(4),
            g.info(),
            &InputDescriptor::Attached,
            1,
            vec![Box::new(c) as Box<dyn Transport>],
            &mut supply,
            &FaultPolicy::with_retries(1),
            0,
            &mut sink,
        )
    })
    .unwrap();
    assert_eq!(sink.into_assignments(), want);
    assert_eq!(report.counter("worker_retries"), 1);
    assert_eq!(report.counter("workers_rejoined"), 1);
}

/// A frame claiming a *future* epoch is a protocol violation, not something
/// to wait for — the shard is re-issued (and the job fails once the retry
/// budget is gone).
#[test]
fn future_epoch_frames_are_rejected() {
    let g = tps_graph::gen::gnm::generate(40, 200, 5);
    let mut sink = VecSink::new();
    let err = std::thread::scope(|scope| {
        let g = &g;
        // The assigned worker dies right after its Job (epoch 0)...
        let (c, wk) = loopback_pair();
        let mut doomed = FaultTransport::new(
            wk,
            KillSpec {
                point: KillPoint::Frames(2),
            },
            KillMode::Sever,
        );
        scope.spawn(move || {
            let _ = run_worker(&mut doomed, &AttachedResolver(g), &MemorySpoolFactory);
        });
        // ...and the replacement (serving epoch 1) forges every envelope up
        // to epoch 2. The budget allows the one real loss but not the
        // forgery, so the epoch violation surfaces as the job error.
        struct ForgingSupply<'s, 'e, 'g> {
            scope: &'s Scope<'s, 'e>,
            source: &'g InMemoryGraph,
        }
        impl<'s, 'e, 'g: 'e> WorkerSupply for ForgingSupply<'s, 'e, 'g> {
            fn replacement(&mut self) -> io::Result<Option<Box<dyn Transport>>> {
                let (c, w) = loopback_pair();
                let source = self.source;
                self.scope.spawn(move || {
                    let mut t = InjectEpoch {
                        inner: w,
                        forge: |e| e + 1,
                    };
                    let _ = run_worker_handshake(
                        &mut t,
                        &AttachedResolver(source),
                        &MemorySpoolFactory,
                        Handshake::Rejoin,
                    );
                });
                Ok(Some(Box::new(c)))
            }
        }
        let mut supply = ForgingSupply { scope, source: g };
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(4),
            g.info(),
            &InputDescriptor::Attached,
            1,
            vec![Box::new(c) as Box<dyn Transport>],
            &mut supply,
            &FaultPolicy::with_retries(1),
            0,
            &mut sink,
        )
    })
    .unwrap_err();
    assert!(
        err.to_string().contains("epoch"),
        "error should name the epoch mismatch: {err}"
    );
}

// ---- recovery sources ----

/// A hung (not dead) worker: nothing arrives, the connection stays open.
/// The frame timeout must detect it and a standby must take over — both
/// for a worker that hangs before its handshake (costs no retry budget:
/// it never held a shard) and for one that hangs mid-protocol (costs one
/// re-issue).
#[test]
fn frame_timeout_detects_hung_worker_and_standby_recovers() {
    let g = tps_graph::gen::gnm::generate(50, 300, 9);
    let want = parallel_reference(&g, 4, 1);
    for hang_after_handshake in [false, true] {
        let mut sink = VecSink::new();
        let report = std::thread::scope(|scope| {
            let g = &g;
            // The hung worker: its transport end stays alive but silent —
            // optionally after a well-formed Hello, so it is assigned the
            // shard and hangs mid-protocol instead of at the handshake.
            let (c_hung, mut w_hung) = loopback_pair();
            if hang_after_handshake {
                w_hung
                    .send(
                        &Message::Hello {
                            version: PROTOCOL_VERSION,
                        }
                        .encode(),
                    )
                    .unwrap();
            }
            // The standby: a real worker, accepted up-front.
            let (c_standby, mut w_standby) = loopback_pair();
            scope.spawn(move || {
                let _ = run_worker(&mut w_standby, &AttachedResolver(g), &MemorySpoolFactory);
            });
            let policy = FaultPolicy {
                max_retries: 1,
                frame_timeout: Some(Duration::from_millis(100)),
            };
            let transports: Vec<Box<dyn Transport>> = vec![Box::new(c_hung), Box::new(c_standby)];
            let result = run_coordinator(
                &TwoPhaseConfig::default(),
                &PartitionParams::new(4),
                g.info(),
                &InputDescriptor::Attached,
                1,
                transports,
                &mut NoReplacements,
                &policy,
                0,
                &mut sink,
            );
            drop(w_hung);
            result
        })
        .unwrap();
        assert_eq!(
            sink.into_assignments(),
            want,
            "hang_after_handshake = {hang_after_handshake}"
        );
        // Hanging at the handshake loses the connection but no issued
        // shard; hanging mid-protocol costs exactly one re-issue.
        assert_eq!(
            report.counter("worker_retries"),
            hang_after_handshake as u64,
            "hang_after_handshake = {hang_after_handshake}"
        );
    }
}

/// A worker whose own shard completed serves a later shard's re-issue —
/// no standby, no supply.
#[test]
fn completed_worker_serves_a_reissue() {
    let g = tps_graph::datasets::Dataset::Ok.generate_scaled(0.02);
    let workers = 2;
    let want = parallel_reference(&g, 8, workers);
    let mut sink = VecSink::new();
    let report = std::thread::scope(|scope| {
        let g = &g;
        let mut coordinator_sides: Vec<Box<dyn Transport>> = Vec::new();
        for w in 0..workers {
            let (c, wk) = loopback_pair();
            coordinator_sides.push(Box::new(c));
            if w == 1 {
                // Worker 1 dies awaiting its Pull — after shard 0's worker
                // has fully completed and become idle.
                let mut t =
                    FaultTransport::new(wk, KillSpec::parse("recv:pull").unwrap(), KillMode::Sever);
                scope.spawn(move || {
                    let _ = run_worker(&mut t, &AttachedResolver(g), &MemorySpoolFactory);
                });
            } else {
                let mut t = wk;
                scope.spawn(move || {
                    let _ = run_worker(&mut t, &AttachedResolver(g), &MemorySpoolFactory);
                });
            }
        }
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(8),
            g.info(),
            &InputDescriptor::Attached,
            workers,
            coordinator_sides,
            &mut NoReplacements,
            &FaultPolicy::with_retries(1),
            0,
            &mut sink,
        )
    })
    .unwrap();
    assert_eq!(sink.into_assignments(), want);
    assert_eq!(report.counter("worker_retries"), 1);
    assert_eq!(
        report.counter("workers_rejoined"),
        0,
        "recovered via the idle completed worker, not a new connection"
    );
}

/// With the retry budget at zero the first loss still fails the job (the
/// pre-v2 contract), and the error names the spent budget.
#[test]
fn zero_retry_budget_fails_on_first_loss() {
    let g = tps_graph::gen::gnm::generate(30, 100, 2);
    let mut sink = VecSink::new();
    let err = std::thread::scope(|scope| {
        let g = &g;
        let (c, wk) = loopback_pair();
        let mut t = FaultTransport::new(
            wk,
            KillSpec {
                point: KillPoint::Frames(3),
            },
            KillMode::Sever,
        );
        scope.spawn(move || {
            let _ = run_worker(&mut t, &AttachedResolver(g), &MemorySpoolFactory);
        });
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(2),
            g.info(),
            &InputDescriptor::Attached,
            1,
            vec![Box::new(c) as Box<dyn Transport>],
            &mut NoReplacements,
            &FaultPolicy::default(),
            0,
            &mut sink,
        )
    })
    .unwrap_err();
    assert!(
        err.to_string().contains("retry budget"),
        "error should name the budget: {err}"
    );
}

/// Retries allowed but nowhere to get a replacement: the job fails with a
/// diagnostic naming the missing replacement, not a hang.
#[test]
fn no_replacement_available_is_an_error_not_a_hang() {
    let g = tps_graph::gen::gnm::generate(30, 100, 2);
    let mut sink = VecSink::new();
    let err = std::thread::scope(|scope| {
        let g = &g;
        let (c, wk) = loopback_pair();
        let mut t = FaultTransport::new(
            wk,
            KillSpec {
                point: KillPoint::Frames(3),
            },
            KillMode::Sever,
        );
        scope.spawn(move || {
            let _ = run_worker(&mut t, &AttachedResolver(g), &MemorySpoolFactory);
        });
        run_coordinator(
            &TwoPhaseConfig::default(),
            &PartitionParams::new(2),
            g.info(),
            &InputDescriptor::Attached,
            1,
            vec![Box::new(c) as Box<dyn Transport>],
            &mut NoReplacements,
            &FaultPolicy::with_retries(3),
            0,
            &mut sink,
        )
    })
    .unwrap_err();
    assert!(
        err.to_string().contains("no replacement"),
        "error should name the missing replacement: {err}"
    );
}
