//! Differential fuzzing of the SWAR bulk decoder against the checked
//! scalar reference.
//!
//! The v2 hot path ([`tps_io::v2::decode_payload`] and the fused
//! [`tps_io::v2::decode_chunk_payload`]) decodes varint pairs with
//! unaligned 8-byte loads and branchless bit extraction; its contract is
//! that it is **observationally identical** to the byte-at-a-time
//! reference [`tps_io::v2::decode_payload_scalar`] — the same edges on
//! success, and on malformed input the same `io::ErrorKind` *and* the same
//! error message, with the same partially decoded prefix left in the
//! output buffer. This suite pins that contract over adversarial inputs:
//!
//! * well-formed payloads (round-trip through the bulk encoder),
//! * truncated payloads (cut mid-varint at arbitrary offsets),
//! * overlong varints (continuation bits past the 5-byte limit),
//! * 5-byte varints overflowing u32,
//! * arbitrary byte soup with an arbitrary claimed edge count,
//! * checksum verification fused into the decode (valid and corrupted).
//!
//! Case counts scale with proptest's `PROPTEST_CASES` env var (the
//! `decode-fuzz` CI job runs the defaults; nightly sets `PROPTEST_CASES`
//! to 10× — same generators, deeper soak); `PROPTEST_SEED` pins the RNG so
//! a failing run replays exactly, and failure-seed files land in
//! `PROPTEST_FAILURE_DIR` for upload as artifacts.

use proptest::prelude::*;
use tps_graph::types::Edge;
use tps_io::v2::{
    decode_chunk_payload, decode_payload, decode_payload_scalar, encode_payload, fnv1a32,
    write_varint,
};

/// Reference encode: one [`write_varint`] per endpoint, the layout the
/// format doc specifies. The bulk `encode_payload` is pinned bit-identical
/// to this.
fn encode_scalar(edges: &[Edge]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in edges {
        write_varint(&mut out, e.src);
        write_varint(&mut out, e.dst);
    }
    out
}

/// Outcome of a decode, normalised for comparison: the decoded prefix plus
/// the error kind/message (if any).
#[derive(Debug, PartialEq)]
struct Outcome {
    edges: Vec<Edge>,
    err: Option<(std::io::ErrorKind, String)>,
}

fn run_scalar(payload: &[u8], count: u32) -> Outcome {
    let mut edges = Vec::new();
    let err = decode_payload_scalar(payload, count, &mut edges)
        .err()
        .map(|e| (e.kind(), e.to_string()));
    Outcome { edges, err }
}

fn run_swar(payload: &[u8], count: u32) -> Outcome {
    let mut edges = Vec::new();
    let err = decode_payload(payload, count, &mut edges)
        .err()
        .map(|e| (e.kind(), e.to_string()));
    Outcome { edges, err }
}

/// Fused checksum+decode.
fn run_fused(payload: &[u8], count: u32, checksum: u32) -> Outcome {
    let mut edges = Vec::new();
    let err = decode_chunk_payload(payload, count, Some(checksum), &mut edges)
        .err()
        .map(|e| (e.kind(), e.to_string()));
    Outcome { edges, err }
}

/// The reference for the fused path: verify the checksum over the whole
/// payload first, then decode with the scalar reference.
fn run_verify_then_scalar(payload: &[u8], count: u32, checksum: u32) -> Outcome {
    if fnv1a32(payload) != checksum {
        return Outcome {
            edges: Vec::new(),
            err: Some((
                std::io::ErrorKind::InvalidData,
                "chunk checksum mismatch (corrupt payload)".to_string(),
            )),
        };
    }
    run_scalar(payload, count)
}

/// Endpoint ids stratified over the five varint length classes so every
/// encoded width (1–5 bytes) appears often, not just the short ones a
/// uniform u32 draw would favour.
fn endpoint_strategy() -> impl Strategy<Value = u32> {
    (0u32..5, 0u64..u64::MAX).prop_map(|(class, raw)| {
        let (lo, hi) = match class {
            0 => (0u64, 0x80),
            1 => (0x80, 0x4000),
            2 => (0x4000, 0x20_0000),
            3 => (0x20_0000, 0x1000_0000),
            _ => (0x1000_0000, 1 << 32),
        };
        (lo + raw % (hi - lo)) as u32
    })
}

/// Random edges over stratified endpoints.
fn edge_strategy() -> impl Strategy<Value = Edge> {
    (endpoint_strategy(), endpoint_strategy()).prop_map(|(src, dst)| Edge { src, dst })
}

/// Arbitrary bytes (the shim has no `any::<u8>()`).
fn byte_strategy() -> impl Strategy<Value = u8> {
    (0u64..256).prop_map(|b| b as u8)
}

/// Bytes with the continuation bit set — varints that never terminate.
fn cont_byte_strategy() -> impl Strategy<Value = u8> {
    (0u64..128).prop_map(|b| 0x80 | b as u8)
}

proptest! {
    /// Well-formed payloads: SWAR decodes the exact edge list, and the
    /// bulk encoder emits bit-identical bytes to the per-varint reference.
    #[test]
    fn well_formed_payloads_round_trip(edges in proptest::collection::vec(edge_strategy(), 0..300)) {
        let reference = encode_scalar(&edges);
        let mut bulk = Vec::new();
        encode_payload(&edges, &mut bulk);
        prop_assert_eq!(&bulk, &reference, "bulk encoder diverged from write_varint");

        let count = edges.len() as u32;
        let scalar = run_scalar(&reference, count);
        let swar = run_swar(&reference, count);
        prop_assert_eq!(&scalar, &swar);
        prop_assert!(scalar.err.is_none(), "clean payload decoded with error");
        prop_assert_eq!(scalar.edges, edges);
    }

    /// Truncation at an arbitrary cut point must produce the identical
    /// "truncated varint" / "trailing bytes" error (and identical decoded
    /// prefix) from both decoders.
    #[test]
    fn truncated_payloads_agree(
        edges in proptest::collection::vec(edge_strategy(), 1..120),
        cut_raw in 0usize..1 << 20,
    ) {
        let full = encode_scalar(&edges);
        let cut = cut_raw % full.len(); // strict prefix: always truncated
        let payload = &full[..cut];
        let count = edges.len() as u32;
        prop_assert_eq!(run_scalar(payload, count), run_swar(payload, count));
    }

    /// Overlong varints: runs of continuation bytes (bit 7 set) exceeding
    /// the 5-byte limit. Both decoders must report the same error.
    #[test]
    fn overlong_varints_agree(
        prefix in proptest::collection::vec(edge_strategy(), 0..40),
        run in proptest::collection::vec(cont_byte_strategy(), 5..14),
        filler in proptest::collection::vec(byte_strategy(), 0..8),
        count_extra in 1u32..4,
    ) {
        let mut payload = encode_scalar(&prefix);
        payload.extend(&run);
        payload.extend(&filler);
        let count = prefix.len() as u32 + count_extra;
        prop_assert_eq!(run_scalar(&payload, count), run_swar(&payload, count));
    }

    /// 5-byte varints whose final byte overflows u32 (> 0x0F): the SWAR
    /// path must reject them exactly like the scalar "varint overflows
    /// u32" check rather than silently truncating high bits.
    #[test]
    fn overflowing_varints_agree(
        prefix in proptest::collection::vec(edge_strategy(), 0..40),
        high_raw in 0u32..0x70,
        tail in proptest::collection::vec(byte_strategy(), 0..12),
        count_extra in 1u32..4,
    ) {
        let mut payload = encode_scalar(&prefix);
        payload.extend([0x80, 0x80, 0x80, 0x80, 0x10 + high_raw as u8]);
        payload.extend(&tail);
        let count = prefix.len() as u32 + count_extra;
        prop_assert_eq!(run_scalar(&payload, count), run_swar(&payload, count));
    }

    /// Arbitrary byte soup with an arbitrary claimed count: whatever the
    /// scalar reference does — succeed, truncate, overflow, or complain
    /// about trailing bytes — the SWAR path does identically.
    #[test]
    fn random_bytes_agree(
        payload in proptest::collection::vec(byte_strategy(), 0..600),
        count in 0u32..200,
    ) {
        prop_assert_eq!(run_scalar(&payload, count), run_swar(&payload, count));
    }

    /// Fused checksum+decode vs verify-then-decode: with the correct
    /// checksum both succeed identically; with a corrupted payload byte
    /// the mismatch error wins over any decode error, exactly as in the
    /// two-pass sequence. On a checksum mismatch only the error is part of
    /// the contract — the fused path has already decoded into `out` by the
    /// time the mismatch surfaces (every caller truncates on error), so
    /// the buffers are compared only on the paths where decode errors
    /// decide the outcome.
    #[test]
    fn fused_checksum_matches_two_pass(
        payload in proptest::collection::vec(byte_strategy(), 0..400),
        count in 0u32..120,
        (idx_raw, xor) in (0usize..1 << 20, 0u64..256),
    ) {
        let sum = fnv1a32(&payload);
        let mut payload = payload;
        // xor == 0 (or an empty payload) leaves it intact: the valid-sum case.
        if !payload.is_empty() && xor != 0 {
            let i = idx_raw % payload.len();
            payload[i] ^= xor as u8;
        }
        let fused = run_fused(&payload, count, sum);
        let reference = run_verify_then_scalar(&payload, count, sum);
        prop_assert_eq!(&fused.err, &reference.err);
        let mismatch = fused
            .err
            .as_ref()
            .is_some_and(|(_, m)| m.contains("checksum mismatch"));
        if !mismatch {
            prop_assert_eq!(fused.edges, reference.edges);
        }
    }
}

/// Deterministic regression seeds: pair layouts that sit exactly on the
/// SWAR fast-path boundaries (the 8-byte single-load limit, the 16-byte
/// slack window, and the scalar tail hand-off).
#[test]
fn boundary_pairs_agree() {
    let boundary_values = [
        0u32,
        0x7F,
        0x80,
        0x3FFF,
        0x4000,
        0x1F_FFFF,
        0x20_0000,
        0x0FFF_FFFF,
        0x1000_0000,
        u32::MAX,
    ];
    for &src in &boundary_values {
        for &dst in &boundary_values {
            // A lone pair (decoded entirely by the scalar tail), and the
            // same pair behind enough padding edges to engage the SWAR
            // loop with the pair at every distance from the slack window.
            for pad in 0..4 {
                let mut edges = vec![Edge { src: 1, dst: 1 }; pad];
                edges.push(Edge { src, dst });
                let payload = encode_scalar(&edges);
                let count = edges.len() as u32;
                let scalar = run_scalar(&payload, count);
                let swar = run_swar(&payload, count);
                assert_eq!(scalar, swar, "src={src:#x} dst={dst:#x} pad={pad}");
                assert!(scalar.err.is_none());
                assert_eq!(scalar.edges, edges);
            }
        }
    }
}

/// The scalar error messages, verbatim — the strings the SWAR fallback
/// must reproduce (a rename here is a format-contract change).
#[test]
fn error_messages_are_pinned() {
    // Truncated: a continuation byte at the very end.
    let err = run_swar(&[0x80], 1).err.unwrap();
    assert_eq!(err.0, std::io::ErrorKind::InvalidData);
    assert_eq!(err.1, "truncated varint in chunk payload");

    // Overflow: 5th byte carries bits 32+.
    let err = run_swar(&[0x80, 0x80, 0x80, 0x80, 0x10, 0x00], 1)
        .err
        .unwrap();
    assert_eq!(err.1, "varint overflows u32");

    // Trailing bytes after the claimed count.
    let err = run_swar(&[0x01, 0x02, 0x03], 1).err.unwrap();
    assert_eq!(err.1, "chunk payload has 1 trailing bytes after 1 edges");
}
