//! A blocking client for the serving protocol.
//!
//! Wraps any [`Transport`] (TCP or in-process loopback) behind typed
//! request methods. All requests are batched — the wire cost of a frame is
//! amortised over up to thousands of lookups — and strictly
//! request/reply, so one client is one outstanding request.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use tps_dist::{TcpTransport, Transport};
use tps_graph::types::{Edge, PartitionId};

use crate::packed::NOT_FOUND;
use crate::proto::{ServeMessage, ServeStats, SERVE_PROTOCOL_VERSION};

/// Result of one [`ServeClient::update`] batch.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateOutcome {
    /// Partition each insert landed on; `None` = rejected duplicate.
    pub inserted: Vec<Option<PartitionId>>,
    /// Partition each removal vacated; `None` = the edge was not live.
    pub removed: Vec<Option<PartitionId>>,
    /// Drift since load after this batch.
    pub staleness: f64,
    /// The server epoch after this batch.
    pub epoch: u64,
}

/// A connected, handshaken serving client.
pub struct ServeClient {
    t: Box<dyn Transport>,
    k: u32,
    num_vertices: u64,
    num_edges: u64,
}

impl ServeClient {
    /// Connect over TCP and handshake.
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        ServeClient::over(Box::new(TcpTransport::new(stream)?))
    }

    /// Handshake over an already-established transport (e.g. one end of
    /// [`loopback_pair`](tps_dist::loopback_pair)).
    pub fn over(mut t: Box<dyn Transport>) -> io::Result<ServeClient> {
        t.set_recv_timeout(Some(Duration::from_secs(30)))?;
        t.send(
            &ServeMessage::Hello {
                version: SERVE_PROTOCOL_VERSION,
            }
            .encode(),
        )?;
        match ServeMessage::decode(&t.recv()?)? {
            ServeMessage::Welcome {
                version,
                k,
                num_vertices,
                num_edges,
            } if version == SERVE_PROTOCOL_VERSION => Ok(ServeClient {
                t,
                k,
                num_vertices,
                num_edges,
            }),
            ServeMessage::Welcome { version, .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "server speaks serve protocol v{version}, client v{SERVE_PROTOCOL_VERSION}"
                ),
            )),
            ServeMessage::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )),
        }
    }

    /// Number of partitions the server is serving.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Vertex-id space at handshake time.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Live edge count at handshake time.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn request(&mut self, msg: &ServeMessage) -> io::Result<ServeMessage> {
        self.t.send(&msg.encode())?;
        let reply = ServeMessage::decode(&self.t.recv()?)?;
        if let ServeMessage::Error { message } = reply {
            return Err(io::Error::other(format!("server: {message}")));
        }
        Ok(reply)
    }

    fn unexpected<T>(reply: ServeMessage) -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply frame {reply:?}"),
        ))
    }

    /// The partition of each edge (`None` = not in the partitioning).
    pub fn lookup_batch(&mut self, edges: &[Edge]) -> io::Result<Vec<Option<PartitionId>>> {
        let n = edges.len();
        match self.request(&ServeMessage::Lookup {
            edges: edges.to_vec(),
        })? {
            ServeMessage::Parts { parts } if parts.len() == n => Ok(parts
                .into_iter()
                .map(|p| (p != NOT_FOUND).then_some(p))
                .collect()),
            ServeMessage::Parts { parts } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("lookup reply has {} answers for {n} edges", parts.len()),
            )),
            other => ServeClient::unexpected(other),
        }
    }

    /// The replica set (ascending partition list) of each vertex.
    pub fn replica_sets(&mut self, vertices: &[u32]) -> io::Result<Vec<Vec<PartitionId>>> {
        let n = vertices.len();
        match self.request(&ServeMessage::Replicas {
            vertices: vertices.to_vec(),
        })? {
            ServeMessage::ReplicaSets { sets } if sets.len() == n => Ok(sets),
            ServeMessage::ReplicaSets { sets } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("replica reply has {} answers for {n} vertices", sets.len()),
            )),
            other => ServeClient::unexpected(other),
        }
    }

    /// Stream one delta batch (inserts applied first, then removes).
    pub fn update(&mut self, inserts: &[Edge], removes: &[Edge]) -> io::Result<UpdateOutcome> {
        match self.request(&ServeMessage::Update {
            inserts: inserts.to_vec(),
            removes: removes.to_vec(),
        })? {
            ServeMessage::UpdateDone {
                inserted,
                removed,
                staleness,
                epoch,
            } if inserted.len() == inserts.len() && removed.len() == removes.len() => {
                let opt = |p: u32| (p != NOT_FOUND).then_some(p);
                Ok(UpdateOutcome {
                    inserted: inserted.into_iter().map(opt).collect(),
                    removed: removed.into_iter().map(opt).collect(),
                    staleness,
                    epoch,
                })
            }
            ServeMessage::UpdateDone { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "update reply sizes disagree with the request".to_string(),
            )),
            other => ServeClient::unexpected(other),
        }
    }

    /// A server statistics snapshot.
    pub fn stats(&mut self) -> io::Result<ServeStats> {
        match self.request(&ServeMessage::Stats)? {
            ServeMessage::StatsReply(s) => Ok(s),
            other => ServeClient::unexpected(other),
        }
    }

    /// Ask the daemon to exit; consumes the client.
    pub fn shutdown(mut self) -> io::Result<()> {
        match self.request(&ServeMessage::Shutdown)? {
            ServeMessage::Bye => Ok(()),
            other => ServeClient::unexpected(other),
        }
    }
}
