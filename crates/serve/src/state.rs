//! The daemon's in-memory serving state.
//!
//! Two representations of one mapping, kept bit-consistent:
//!
//! * [`PackedAssignment`] — the partitioning exactly as loaded from the
//!   `--out` directory's part files; immutable, binary-searched, the
//!   **read path**.
//! * [`IncrementalTwoPhase`] — the same assignment *adopted* verbatim as
//!   bootstrap state, so the paper's two-phase scoring decides where every
//!   streamed insertion goes; the **write path**.
//!
//! The delta between them lives in a small `overlay` map (canonical edge
//! key → `Some(partition)` for post-load inserts and reassignments,
//! `None` for deletions). Lookups probe the overlay first and fall through
//! to the packed table, so a point read costs one hash probe plus (on
//! overlay miss) one binary search — the cost never grows with graph size,
//! only the overlay tracks churn. The update hot path records every
//! mutation in the overlay *without* consulting the packed table (a
//! per-mutation binary search would make update latency grow with graph
//! size); entries that merely restate what the packed table already says
//! are dropped by [`ServeState::compact_overlay`], one batched galloping
//! pass, and [`ServeState::restore`] recomputes the exact minimal diff.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tps_core::incremental::IncrementalTwoPhase;
use tps_core::TwoPhaseConfig;
use tps_graph::types::{Edge, PartitionId, VertexId};
use tps_io::LoadedPartition;
use tps_obs::Counter;

use crate::metrics::{op_latency, LOOKUP_NS, REPLICAS_NS, UPDATE_NS};
use crate::packed::{edge_key, key_edge, PackedAssignment, NOT_FOUND};
use crate::proto::ServeStats;

static SERVE_LOOKUPS: Counter = Counter::new("serve.lookups");
static SERVE_UPDATES: Counter = Counter::new("serve.updates.mutations");
static SERVE_UPDATE_REJECTS: Counter = Counter::new("serve.updates.rejected");

/// How to promote a loaded partitioning to the incremental write path.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Balance factor used to size per-partition capacity (the CLI
    /// default, 1.05).
    pub alpha: f64,
    /// Extra capacity multiplier on top of `alpha` so streamed insertions
    /// have headroom before the balance cap binds.
    pub headroom: f64,
    /// Phase configuration for re-derived clustering state and insertion
    /// scoring.
    pub config: TwoPhaseConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            alpha: 1.05,
            headroom: 1.2,
            config: TwoPhaseConfig::default(),
        }
    }
}

/// Per-batch result of [`ServeState::apply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Partition each insert landed on; [`NOT_FOUND`] = rejected (the edge
    /// was already live).
    pub inserted: Vec<u32>,
    /// Partition each removal vacated; [`NOT_FOUND`] = the edge was not
    /// live.
    pub removed: Vec<u32>,
    /// The epoch after the batch (bumped iff anything changed).
    pub epoch: u64,
}

/// The shared serving state: packed read path + incremental write path +
/// overlay diff. Wrapped in an `RwLock` by the server — lookups take the
/// read side, updates the write side; the request counters are atomics so
/// readers never need write access.
pub struct ServeState {
    packed: PackedAssignment,
    engine: IncrementalTwoPhase,
    overlay: HashMap<u64, Option<PartitionId>>,
    epoch: u64,
    started: Instant,
    lookups: AtomicU64,
    updates: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl ServeState {
    /// Build serving state from an in-memory assignment (benches, tests).
    pub fn from_assignments(
        assignments: &[(Edge, PartitionId)],
        num_vertices: u64,
        k: u32,
        opts: &ServeOptions,
    ) -> io::Result<ServeState> {
        let packed = PackedAssignment::from_assignments(assignments, k)?;
        let engine = IncrementalTwoPhase::adopt(
            assignments,
            num_vertices,
            k,
            opts.alpha,
            opts.headroom,
            opts.config,
        )?;
        Ok(ServeState::assemble(packed, engine, HashMap::new()))
    }

    /// Build serving state from a partitioning loaded off disk.
    pub fn from_loaded(loaded: &LoadedPartition, opts: &ServeOptions) -> io::Result<ServeState> {
        ServeState::from_assignments(&loaded.assignments, loaded.num_vertices, loaded.k, opts)
    }

    /// Load a `--out` directory of `<stem>.part<i>.bel` files and promote
    /// it to serving state.
    pub fn load_dir(dir: &Path, opts: &ServeOptions) -> io::Result<ServeState> {
        ServeState::from_loaded(&tps_io::load_partition_dir(dir)?, opts)
    }

    /// Restore from a written engine snapshot plus the *original* loaded
    /// partition files: the packed table comes from the files, the engine
    /// (with every post-load decision) from the snapshot, and the overlay
    /// is recomputed as the exact diff between them.
    pub fn restore<R: io::Read>(loaded: &LoadedPartition, r: &mut R) -> io::Result<ServeState> {
        let engine = IncrementalTwoPhase::read_snapshot(r)?;
        if engine.k() != loaded.k {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot has k = {} but the partition directory has k = {}",
                    engine.k(),
                    loaded.k
                ),
            ));
        }
        let packed = PackedAssignment::from_assignments(&loaded.assignments, loaded.k)?;
        let mut overlay = HashMap::new();
        for (e, p) in engine.assignments() {
            let key = edge_key(e);
            if packed.get(key) != Some(p) {
                overlay.insert(key, Some(p));
            }
        }
        for (key, _) in packed.iter() {
            if engine.partition_of(key_edge(key)).is_none() {
                overlay.insert(key, None);
            }
        }
        Ok(ServeState::assemble(packed, engine, overlay))
    }

    fn assemble(
        packed: PackedAssignment,
        engine: IncrementalTwoPhase,
        overlay: HashMap<u64, Option<PartitionId>>,
    ) -> ServeState {
        ServeState {
            packed,
            engine,
            overlay,
            epoch: 0,
            started: Instant::now(),
            lookups: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Persist the write-path engine (and with it every post-load
    /// decision) so a restart can [`restore`](ServeState::restore) without
    /// re-adopting from scratch.
    pub fn write_snapshot<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        self.engine.write_snapshot(w)
    }

    /// The current partition of `e`: overlay first, then the packed table.
    pub fn lookup(&self, e: Edge) -> Option<PartitionId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        SERVE_LOOKUPS.incr();
        let key = edge_key(e);
        match self.overlay.get(&key) {
            Some(&slot) => slot,
            None => self.packed.get(key),
        }
    }

    /// The partitions vertex `v` has replicas on, ascending. Exact under
    /// churn (served from the engine's counts-backed replica sets).
    pub fn replicas_of(&self, v: VertexId) -> Vec<PartitionId> {
        self.engine.replicas_of(v)
    }

    /// Apply one delta batch: `inserts` first (each scored by the
    /// incremental two-phase write path), then `removes`. A duplicate
    /// insert or an absent removal is rejected per-op ([`NOT_FOUND`] in the
    /// outcome), never a panic, and leaves the rest of the batch intact.
    pub fn apply(&mut self, inserts: &[Edge], removes: &[Edge]) -> ApplyOutcome {
        // The overlay mirrors the engine's view of every mutated key (last
        // write wins). Deliberately NO packed-table probe here: a binary
        // search per mutation would tie update latency to graph size, and
        // a redundant overlay entry (restating what the packed table
        // already says) is merely memory that `compact_overlay` reclaims.
        let mut inserted = Vec::with_capacity(inserts.len());
        let mut removed = Vec::with_capacity(removes.len());
        let mut changed = false;
        for &e in inserts {
            if self.engine.partition_of(e).is_some() {
                SERVE_UPDATE_REJECTS.incr();
                inserted.push(NOT_FOUND);
                continue;
            }
            let p = self.engine.insert(e);
            self.overlay.insert(edge_key(e), Some(p));
            inserted.push(p);
            changed = true;
        }
        for &e in removes {
            match self.engine.remove(e) {
                Some(p) => {
                    self.overlay.insert(edge_key(e), None);
                    removed.push(p);
                    changed = true;
                }
                None => {
                    SERVE_UPDATE_REJECTS.incr();
                    removed.push(NOT_FOUND);
                }
            }
        }
        let mutations = inserted
            .iter()
            .chain(&removed)
            .filter(|&&p| p != NOT_FOUND)
            .count() as u64;
        if changed {
            self.epoch += 1;
            self.updates.fetch_add(mutations, Ordering::Relaxed);
            SERVE_UPDATES.add(mutations);
        }
        ApplyOutcome {
            inserted,
            removed,
            epoch: self.epoch,
        }
    }

    /// The update-batch epoch (bumped once per batch that changed state);
    /// connection caches validate against this.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutations since load relative to the loaded size — the signal for
    /// scheduling a full re-partition (see the README's re-bootstrap loop).
    pub fn staleness(&self) -> f64 {
        self.engine.staleness()
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.engine.k()
    }

    /// Vertex-id space currently tracked.
    pub fn num_vertices(&self) -> u64 {
        self.engine.num_vertices()
    }

    /// Live edge count (after applied deltas).
    pub fn num_edges(&self) -> u64 {
        self.engine.num_edges()
    }

    /// Size of the overlay (post-load churn shadowing the packed table;
    /// run [`ServeState::compact_overlay`] for the minimal diff).
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Seconds since this state was assembled (daemon uptime).
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Folded replica-cache `(hits, misses)` across finished connections.
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Drop overlay entries that restate what the packed table already
    /// says (an insert that recreated a loaded assignment, a tombstone
    /// for a key the table never held), restoring the overlay to the
    /// minimal engine-vs-packed diff. One sorted galloping probe of the
    /// packed table — `O(overlay)` near-sequential accesses — kept off
    /// the per-mutation hot path on purpose (see [`ServeState::apply`]).
    pub fn compact_overlay(&mut self) {
        let before = self.overlay.len();
        let mut keys: Vec<u64> = self.overlay.keys().copied().collect();
        keys.sort_unstable();
        let probed = self.packed.probe_sorted(&keys);
        for (key, packed_part) in keys.into_iter().zip(probed) {
            let redundant = match (self.overlay.get(&key), packed_part) {
                (Some(&Some(p)), Some(pp)) => p == pp,
                (Some(&None), None) => true,
                _ => false,
            };
            if redundant {
                self.overlay.remove(&key);
            }
        }
        tps_obs::instant_with(
            "serve.compact",
            format!("overlay {before} -> {}", self.overlay.len()),
        );
    }

    /// Fold a connection's replica-cache hit/miss counts into the global
    /// statistics.
    pub fn record_cache(&self, hits: u64, misses: u64) {
        self.cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// A statistics snapshot for [`crate::proto::ServeMessage::StatsReply`].
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            k: self.k(),
            num_vertices: self.num_vertices(),
            num_edges: self.num_edges(),
            staleness: self.staleness(),
            replication_factor: self.engine.replication_factor(),
            epoch: self.epoch,
            loads: self.engine.loads().to_vec(),
            lookups: self.lookups.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            uptime_secs: self.uptime_secs(),
            // Quantiles come from the process-global per-op histograms —
            // exactly what the scrape endpoint exposes.
            lookup_latency: op_latency(&LOOKUP_NS),
            replicas_latency: op_latency(&REPLICAS_NS),
            update_latency: op_latency(&UPDATE_NS),
        }
    }

    /// The write-path engine (read-only view).
    pub fn engine(&self) -> &IncrementalTwoPhase {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_assignments(n: u32, k: u32) -> (Vec<(Edge, PartitionId)>, u64) {
        let mut seen = std::collections::HashSet::new();
        let pairs: Vec<(Edge, PartitionId)> = (0..n)
            .map(|i| (Edge::new(i % 97, 97 + (i * 13) % 211), i % k))
            .filter(|&(e, _)| seen.insert(edge_key(e)))
            .collect();
        (pairs, 512)
    }

    #[test]
    fn lookups_match_loaded_files_bit_for_bit() {
        let (pairs, nv) = toy_assignments(1500, 4);
        let st = ServeState::from_assignments(&pairs, nv, 4, &ServeOptions::default()).unwrap();
        for &(e, p) in &pairs {
            assert_eq!(st.lookup(e), Some(p));
        }
        assert_eq!(st.lookup(Edge::new(400, 401)), None);
        assert_eq!(st.overlay_len(), 0);
        assert_eq!(st.num_edges(), pairs.len() as u64);
    }

    #[test]
    fn overlay_stays_consistent_with_engine_under_churn() {
        let (pairs, nv) = toy_assignments(800, 4);
        let mut st = ServeState::from_assignments(&pairs, nv, 4, &ServeOptions::default()).unwrap();
        let inserts: Vec<Edge> = (0..200u32)
            .map(|i| Edge::new(300 + i, 301 + 2 * i))
            .collect();
        let removes: Vec<Edge> = pairs.iter().take(100).map(|&(e, _)| e).collect();
        let out = st.apply(&inserts, &removes);
        assert!(out.inserted.iter().all(|&p| p < 4));
        assert!(out.removed.iter().all(|&p| p < 4));
        assert_eq!(out.epoch, 1);
        // Every edge the engine knows answers identically through the
        // overlay+packed read path, and vice versa for removed edges.
        for (e, p) in st.engine().assignments().collect::<Vec<_>>() {
            assert_eq!(st.lookup(e), Some(p));
        }
        for e in &removes {
            assert_eq!(st.lookup(*e), None);
        }
        // Removing an inserted edge leaves a tombstone; compaction drops
        // it (the packed table never held the key) without changing any
        // answer.
        let before = st.overlay_len();
        st.apply(&[], &inserts[..50]);
        assert_eq!(st.overlay_len(), before, "tombstones are kept un-probed");
        st.compact_overlay();
        assert!(st.overlay_len() < before);
        for e in &inserts[..50] {
            assert_eq!(st.lookup(*e), None, "compaction resurrected {e:?}");
        }
        for (e, p) in st.engine().assignments().collect::<Vec<_>>() {
            assert_eq!(st.lookup(e), Some(p));
        }
        assert!(st.staleness() > 0.0);
    }

    #[test]
    fn duplicate_insert_and_absent_remove_are_rejected_per_op() {
        let (pairs, nv) = toy_assignments(300, 2);
        let mut st = ServeState::from_assignments(&pairs, nv, 2, &ServeOptions::default()).unwrap();
        let live = pairs[0].0;
        let out = st.apply(
            &[live, Edge::new(400, 450)],
            &[Edge::new(499, 498), pairs[1].0],
        );
        assert_eq!(out.inserted[0], NOT_FOUND);
        assert!(out.inserted[1] < 2);
        assert_eq!(out.removed[0], NOT_FOUND);
        assert!(out.removed[1] < 2);
        // Rejections alone must not bump the epoch.
        let epoch = st.epoch();
        let out = st.apply(&[live], &[Edge::new(499, 498)]);
        assert_eq!(out.epoch, epoch);
    }

    #[test]
    fn snapshot_restore_preserves_overlay_and_answers() {
        let (pairs, nv) = toy_assignments(600, 4);
        let loaded = LoadedPartition {
            k: 4,
            num_vertices: nv,
            stem: "toy".into(),
            assignments: pairs.clone(),
            part_counts: vec![],
        };
        let mut st = ServeState::from_loaded(&loaded, &ServeOptions::default()).unwrap();
        let inserts: Vec<Edge> = (0..64u32).map(|i| Edge::new(310 + i, 410 + i)).collect();
        let removes: Vec<Edge> = pairs.iter().take(40).map(|&(e, _)| e).collect();
        st.apply(&inserts, &removes);

        let mut buf = Vec::new();
        st.write_snapshot(&mut buf).unwrap();
        let st2 = ServeState::restore(&loaded, &mut buf.as_slice()).unwrap();
        // Restore recomputes the *minimal* diff; the live overlay matches
        // it once compacted.
        st.compact_overlay();
        assert_eq!(st2.overlay_len(), st.overlay_len());
        assert_eq!(st2.num_edges(), st.num_edges());
        assert_eq!(st2.staleness(), st.staleness());
        for (e, p) in st.engine().assignments().collect::<Vec<_>>() {
            assert_eq!(st2.lookup(e), Some(p));
        }
        for e in &removes {
            assert_eq!(st2.lookup(*e), None);
        }
    }
}
