//! A hot-vertex LRU cache for replica-set queries.
//!
//! Replica sets change only when an update batch commits, so every
//! connection keeps a small LRU of `vertex → replica set` answers tagged
//! with the state **epoch** they were computed at. The server bumps the
//! epoch once per committed update batch; a cached entry from an older
//! epoch is treated as a miss, which makes invalidation one integer
//! compare instead of any cross-connection bookkeeping.
//!
//! Hand-rolled intrusive doubly-linked list over a slab — O(1) get/insert,
//! no dependencies.

use std::collections::HashMap;

use tps_graph::types::{PartitionId, VertexId};

const NIL: usize = usize::MAX;

struct Entry {
    key: VertexId,
    epoch: u64,
    val: Vec<PartitionId>,
    prev: usize,
    next: usize,
}

/// An epoch-validated LRU mapping vertices to their replica sets.
pub struct VertexLru {
    cap: usize,
    map: HashMap<VertexId, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl VertexLru {
    /// An empty cache holding at most `cap` entries (`cap == 0` disables
    /// caching entirely).
    pub fn new(cap: usize) -> VertexLru {
        VertexLru {
            cap,
            map: HashMap::with_capacity(cap.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// The cached replica set of `v` computed at `epoch`, promoting it to
    /// most-recently-used. An entry from any other epoch counts as a miss
    /// (and is dropped).
    pub fn get(&mut self, v: VertexId, epoch: u64) -> Option<&[PartitionId]> {
        let Some(&idx) = self.map.get(&v) else {
            self.misses += 1;
            return None;
        };
        if self.slab[idx].epoch != epoch {
            self.unlink(idx);
            self.map.remove(&v);
            self.free.push(idx);
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx].val)
    }

    /// Cache the replica set of `v` as of `epoch`, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, v: VertexId, epoch: u64, val: Vec<PartitionId>) {
        if self.cap == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&v) {
            self.slab[idx].epoch = epoch;
            self.slab[idx].val = val;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: v,
                    epoch,
                    val,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: v,
                    epoch,
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(v, idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = VertexLru::new(2);
        lru.insert(1, 0, vec![0]);
        lru.insert(2, 0, vec![1]);
        assert_eq!(lru.get(1, 0), Some(&[0u32][..])); // 1 is now MRU
        lru.insert(3, 0, vec![2]); // evicts 2
        assert_eq!(lru.get(2, 0), None);
        assert_eq!(lru.get(1, 0), Some(&[0u32][..]));
        assert_eq!(lru.get(3, 0), Some(&[2u32][..]));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn stale_epoch_is_a_miss() {
        let mut lru = VertexLru::new(4);
        lru.insert(7, 0, vec![0, 1]);
        assert!(lru.get(7, 0).is_some());
        assert_eq!(lru.get(7, 1), None); // epoch bumped -> invalid
        assert_eq!(lru.len(), 0); // and dropped
        lru.insert(7, 1, vec![0, 2]);
        assert_eq!(lru.get(7, 1), Some(&[0u32, 2][..]));
        let (hits, misses) = lru.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut lru = VertexLru::new(0);
        lru.insert(1, 0, vec![0]);
        assert!(lru.is_empty());
        assert_eq!(lru.get(1, 0), None);
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut lru = VertexLru::new(2);
        lru.insert(1, 0, vec![0]);
        lru.insert(2, 0, vec![1]);
        lru.insert(2, 0, vec![1, 3]);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(2, 0), Some(&[1u32, 3][..]));
        // 1 is the LRU now; inserting a third key evicts it.
        lru.insert(4, 0, vec![2]);
        assert_eq!(lru.get(1, 0), None);
    }
}
