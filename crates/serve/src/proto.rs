//! The serving request protocol.
//!
//! Frames travel over the same length-prefixed transport as the
//! distributed partitioning protocol (`tps_dist::wire` / `Transport`), but
//! form their own message family in the tag space the dist protocol v5
//! reserved for them: every serve tag is `>=`
//! [`SERVE_TAG_BASE`], so a frame accidentally
//! sent to the wrong endpoint decodes to a precise error on either side
//! instead of a silent misparse.
//!
//! | tag | frame | direction | payload |
//! |-----|-------|-----------|---------|
//! | 32  | `Hello` | client → server | protocol version |
//! | 33  | `Welcome` | server → client | version, `k`, \|V\|, live \|E\| |
//! | 34  | `Lookup` | client → server | edge batch (u32 src/dst pairs) |
//! | 35  | `Parts` | server → client | one partition per edge ([`NOT_FOUND`] = absent) |
//! | 36  | `Replicas` | client → server | vertex batch |
//! | 37  | `ReplicaSets` | server → client | one ascending partition list per vertex |
//! | 38  | `Update` | client → server | insert batch + remove batch |
//! | 39  | `UpdateDone` | server → client | per-op partitions, staleness, epoch |
//! | 40  | `Stats` | client → server | — |
//! | 41  | `StatsReply` | server → client | sizes, loads, staleness, cache counters, uptime, per-op latency quantiles |
//! | 42  | `Shutdown` | client → server | — |
//! | 43  | `Bye` | server → client | — |
//! | 44  | `Error` | server → client | message |

use std::io;

use tps_dist::wire::{self, corrupt, Reader};
use tps_dist::SERVE_TAG_BASE;
use tps_graph::types::Edge;

pub use crate::packed::NOT_FOUND;

/// Version of the serving protocol itself (independent of the dist
/// partitioning protocol's version).
///
/// v2 grew [`ServeStats`] with uptime and per-op latency quantiles sourced
/// from the live histograms; a v1 `StatsReply` decodes to a precise
/// version-hint error (and the `Hello`/`Welcome` handshake already refuses
/// mixed-version peers outright).
pub const SERVE_PROTOCOL_VERSION: u32 = 2;

/// Latency summary for one request kind, from the server's live
/// log-bucketed histogram (quantiles carry its bounded √2 relative error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpLatency {
    /// Requests of this kind answered since start.
    pub count: u64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum latency, nanoseconds.
    pub max_ns: u64,
}

/// Server-side statistics snapshot carried by [`ServeMessage::StatsReply`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServeStats {
    /// Number of partitions.
    pub k: u32,
    /// Vertex-id space.
    pub num_vertices: u64,
    /// Live edge count (after applied deltas).
    pub num_edges: u64,
    /// Mutations since bootstrap over bootstrap size — the re-bootstrap
    /// drift signal.
    pub staleness: f64,
    /// Current replication factor.
    pub replication_factor: f64,
    /// Update-batch epoch (bumped once per committed batch).
    pub epoch: u64,
    /// Per-partition live edge counts.
    pub loads: Vec<u64>,
    /// Point lookups served since start.
    pub lookups: u64,
    /// Mutations applied since start.
    pub updates: u64,
    /// Replica-set cache hits across all connections.
    pub cache_hits: u64,
    /// Replica-set cache misses across all connections.
    pub cache_misses: u64,
    /// Seconds since the daemon loaded its state (v2).
    pub uptime_secs: f64,
    /// Batched-lookup request latency (v2).
    pub lookup_latency: OpLatency,
    /// Replica-set request latency (v2).
    pub replicas_latency: OpLatency,
    /// Update-batch request latency (v2).
    pub update_latency: OpLatency,
}

/// One frame of the serving protocol. See the module table.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeMessage {
    /// Client handshake: the protocol version it speaks.
    Hello { version: u32 },
    /// Server handshake reply: version plus the loaded partition's shape.
    Welcome {
        version: u32,
        k: u32,
        num_vertices: u64,
        num_edges: u64,
    },
    /// Point/batch edge→partition lookup.
    Lookup { edges: Vec<Edge> },
    /// Lookup reply: `parts[i]` answers `edges[i]`; [`NOT_FOUND`] = absent.
    Parts { parts: Vec<u32> },
    /// Batch vertex→replica-set query.
    Replicas { vertices: Vec<u32> },
    /// Replica reply: `sets[i]` lists the partitions of `vertices[i]`,
    /// ascending (empty = vertex unknown or replica-free).
    ReplicaSets { sets: Vec<Vec<u32>> },
    /// Streamed delta: edges to insert and edges to remove, applied as one
    /// atomic batch.
    Update {
        inserts: Vec<Edge>,
        removes: Vec<Edge>,
    },
    /// Update reply: the partition each insert landed on ([`NOT_FOUND`] =
    /// rejected duplicate), the partition each removal vacated
    /// ([`NOT_FOUND`] = was absent), then drift + the new epoch.
    UpdateDone {
        inserted: Vec<u32>,
        removed: Vec<u32>,
        staleness: f64,
        epoch: u64,
    },
    /// Statistics request.
    Stats,
    /// Statistics reply.
    StatsReply(ServeStats),
    /// Ask the daemon to stop accepting and exit.
    Shutdown,
    /// Shutdown acknowledged; the server closes after sending this.
    Bye,
    /// Request-level failure (the connection stays usable).
    Error { message: String },
}

const TAG_HELLO: u8 = SERVE_TAG_BASE;
const TAG_WELCOME: u8 = SERVE_TAG_BASE + 1;
const TAG_LOOKUP: u8 = SERVE_TAG_BASE + 2;
const TAG_PARTS: u8 = SERVE_TAG_BASE + 3;
const TAG_REPLICAS: u8 = SERVE_TAG_BASE + 4;
const TAG_REPLICA_SETS: u8 = SERVE_TAG_BASE + 5;
const TAG_UPDATE: u8 = SERVE_TAG_BASE + 6;
const TAG_UPDATE_DONE: u8 = SERVE_TAG_BASE + 7;
const TAG_STATS: u8 = SERVE_TAG_BASE + 8;
const TAG_STATS_REPLY: u8 = SERVE_TAG_BASE + 9;
const TAG_SHUTDOWN: u8 = SERVE_TAG_BASE + 10;
const TAG_BYE: u8 = SERVE_TAG_BASE + 11;
const TAG_ERROR: u8 = SERVE_TAG_BASE + 12;

fn put_edges(out: &mut Vec<u8>, edges: &[Edge]) {
    wire::put_u32(out, edges.len() as u32);
    for e in edges {
        wire::put_u32(out, e.src);
        wire::put_u32(out, e.dst);
    }
}

fn put_latency(out: &mut Vec<u8>, l: &OpLatency) {
    wire::put_u64(out, l.count);
    wire::put_u64(out, l.p50_ns);
    wire::put_u64(out, l.p90_ns);
    wire::put_u64(out, l.p99_ns);
    wire::put_u64(out, l.max_ns);
}

fn read_latency(r: &mut Reader<'_>, op: &str) -> io::Result<OpLatency> {
    if r.remaining() == 0 {
        return Err(corrupt(format!(
            "stats reply ends before the {op} latency block — the peer \
             speaks serve protocol v1, this build requires \
             v{SERVE_PROTOCOL_VERSION}"
        )));
    }
    Ok(OpLatency {
        count: r.u64()?,
        p50_ns: r.u64()?,
        p90_ns: r.u64()?,
        p99_ns: r.u64()?,
        max_ns: r.u64()?,
    })
}

fn read_edges(r: &mut Reader<'_>) -> io::Result<Vec<Edge>> {
    let n = r.u32()? as usize;
    if n > r.remaining() / 8 {
        return Err(corrupt(format!("edge batch length {n} exceeds frame")));
    }
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        let src = r.u32()?;
        let dst = r.u32()?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

impl ServeMessage {
    /// Serialise to one frame body (tag byte + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ServeMessage::Hello { version } => {
                out.push(TAG_HELLO);
                wire::put_u32(&mut out, *version);
            }
            ServeMessage::Welcome {
                version,
                k,
                num_vertices,
                num_edges,
            } => {
                out.push(TAG_WELCOME);
                wire::put_u32(&mut out, *version);
                wire::put_u32(&mut out, *k);
                wire::put_u64(&mut out, *num_vertices);
                wire::put_u64(&mut out, *num_edges);
            }
            ServeMessage::Lookup { edges } => {
                out.push(TAG_LOOKUP);
                put_edges(&mut out, edges);
            }
            ServeMessage::Parts { parts } => {
                out.push(TAG_PARTS);
                wire::put_vec_u32(&mut out, parts);
            }
            ServeMessage::Replicas { vertices } => {
                out.push(TAG_REPLICAS);
                wire::put_vec_u32(&mut out, vertices);
            }
            ServeMessage::ReplicaSets { sets } => {
                out.push(TAG_REPLICA_SETS);
                wire::put_u32(&mut out, sets.len() as u32);
                for set in sets {
                    wire::put_vec_u32(&mut out, set);
                }
            }
            ServeMessage::Update { inserts, removes } => {
                out.push(TAG_UPDATE);
                put_edges(&mut out, inserts);
                put_edges(&mut out, removes);
            }
            ServeMessage::UpdateDone {
                inserted,
                removed,
                staleness,
                epoch,
            } => {
                out.push(TAG_UPDATE_DONE);
                wire::put_vec_u32(&mut out, inserted);
                wire::put_vec_u32(&mut out, removed);
                wire::put_f64(&mut out, *staleness);
                wire::put_u64(&mut out, *epoch);
            }
            ServeMessage::Stats => out.push(TAG_STATS),
            ServeMessage::StatsReply(s) => {
                out.push(TAG_STATS_REPLY);
                wire::put_u32(&mut out, s.k);
                wire::put_u64(&mut out, s.num_vertices);
                wire::put_u64(&mut out, s.num_edges);
                wire::put_f64(&mut out, s.staleness);
                wire::put_f64(&mut out, s.replication_factor);
                wire::put_u64(&mut out, s.epoch);
                wire::put_vec_u64(&mut out, &s.loads);
                wire::put_u64(&mut out, s.lookups);
                wire::put_u64(&mut out, s.updates);
                wire::put_u64(&mut out, s.cache_hits);
                wire::put_u64(&mut out, s.cache_misses);
                wire::put_f64(&mut out, s.uptime_secs);
                put_latency(&mut out, &s.lookup_latency);
                put_latency(&mut out, &s.replicas_latency);
                put_latency(&mut out, &s.update_latency);
            }
            ServeMessage::Shutdown => out.push(TAG_SHUTDOWN),
            ServeMessage::Bye => out.push(TAG_BYE),
            ServeMessage::Error { message } => {
                out.push(TAG_ERROR);
                wire::put_string(&mut out, message);
            }
        }
        out
    }

    /// Parse one frame body. Corrupt input surfaces as
    /// `io::ErrorKind::InvalidData`, never a panic; a tag below
    /// [`SERVE_TAG_BASE`] is reported as a strayed partitioning-protocol
    /// frame.
    pub fn decode(frame: &[u8]) -> io::Result<ServeMessage> {
        let mut r = Reader::new(frame);
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => ServeMessage::Hello { version: r.u32()? },
            TAG_WELCOME => ServeMessage::Welcome {
                version: r.u32()?,
                k: r.u32()?,
                num_vertices: r.u64()?,
                num_edges: r.u64()?,
            },
            TAG_LOOKUP => ServeMessage::Lookup {
                edges: read_edges(&mut r)?,
            },
            TAG_PARTS => ServeMessage::Parts {
                parts: r.vec_u32()?,
            },
            TAG_REPLICAS => ServeMessage::Replicas {
                vertices: r.vec_u32()?,
            },
            TAG_REPLICA_SETS => {
                let n = r.u32()? as usize;
                if n > r.remaining() / 4 {
                    return Err(corrupt(format!("replica-set count {n} exceeds frame")));
                }
                let mut sets = Vec::with_capacity(n);
                for _ in 0..n {
                    sets.push(r.vec_u32()?);
                }
                ServeMessage::ReplicaSets { sets }
            }
            TAG_UPDATE => ServeMessage::Update {
                inserts: read_edges(&mut r)?,
                removes: read_edges(&mut r)?,
            },
            TAG_UPDATE_DONE => ServeMessage::UpdateDone {
                inserted: r.vec_u32()?,
                removed: r.vec_u32()?,
                staleness: r.f64()?,
                epoch: r.u64()?,
            },
            TAG_STATS => ServeMessage::Stats,
            TAG_STATS_REPLY => {
                let mut s = ServeStats {
                    k: r.u32()?,
                    num_vertices: r.u64()?,
                    num_edges: r.u64()?,
                    staleness: r.f64()?,
                    replication_factor: r.f64()?,
                    epoch: r.u64()?,
                    loads: r.vec_u64()?,
                    lookups: r.u64()?,
                    updates: r.u64()?,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                    uptime_secs: 0.0,
                    lookup_latency: OpLatency::default(),
                    replicas_latency: OpLatency::default(),
                    update_latency: OpLatency::default(),
                };
                // v2 live-metrics tail. A frame from a v1 peer ends right
                // here; name the missing block instead of a bare EOF.
                if r.remaining() == 0 {
                    return Err(corrupt(format!(
                        "stats reply ends before the uptime field — the peer \
                         speaks serve protocol v1, this build requires \
                         v{SERVE_PROTOCOL_VERSION}"
                    )));
                }
                s.uptime_secs = r.f64()?;
                s.lookup_latency = read_latency(&mut r, "lookup")?;
                s.replicas_latency = read_latency(&mut r, "replicas")?;
                s.update_latency = read_latency(&mut r, "update")?;
                ServeMessage::StatsReply(s)
            }
            TAG_SHUTDOWN => ServeMessage::Shutdown,
            TAG_BYE => ServeMessage::Bye,
            TAG_ERROR => ServeMessage::Error {
                message: r.string()?,
            },
            other if other < SERVE_TAG_BASE => {
                return Err(corrupt(format!(
                    "message tag {other} belongs to the dist partitioning protocol \
                     (tags < {SERVE_TAG_BASE}) — this endpoint speaks the serve protocol"
                )));
            }
            other => return Err(corrupt(format!("unknown serve message tag {other}"))),
        };
        r.expect_empty()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ServeMessage) {
        let frame = msg.encode();
        assert!(frame[0] >= SERVE_TAG_BASE, "{msg:?} tag below serve base");
        assert_eq!(ServeMessage::decode(&frame).unwrap(), msg);
    }

    fn sample_stats() -> ServeStats {
        ServeStats {
            k: 4,
            num_vertices: 100,
            num_edges: 400,
            staleness: 0.1,
            replication_factor: 1.7,
            epoch: 3,
            loads: vec![100, 100, 100, 100],
            lookups: 12,
            updates: 5,
            cache_hits: 9,
            cache_misses: 2,
            uptime_secs: 42.5,
            lookup_latency: OpLatency {
                count: 12,
                p50_ns: 1_000,
                p90_ns: 2_000,
                p99_ns: 4_000,
                max_ns: 9_000,
            },
            replicas_latency: OpLatency::default(),
            update_latency: OpLatency {
                count: 5,
                p50_ns: 30_000,
                p90_ns: 60_000,
                p99_ns: 90_000,
                max_ns: 91_000,
            },
        }
    }

    #[test]
    fn every_frame_roundtrips() {
        roundtrip(ServeMessage::Hello { version: 1 });
        roundtrip(ServeMessage::Welcome {
            version: 1,
            k: 4,
            num_vertices: 1000,
            num_edges: 5000,
        });
        roundtrip(ServeMessage::Lookup {
            edges: vec![Edge::new(1, 2), Edge::new(9, 3)],
        });
        roundtrip(ServeMessage::Parts {
            parts: vec![0, NOT_FOUND, 3],
        });
        roundtrip(ServeMessage::Replicas {
            vertices: vec![5, 6, 7],
        });
        roundtrip(ServeMessage::ReplicaSets {
            sets: vec![vec![0, 2], vec![], vec![1]],
        });
        roundtrip(ServeMessage::Update {
            inserts: vec![Edge::new(1, 9)],
            removes: vec![Edge::new(2, 2), Edge::new(0, 1)],
        });
        roundtrip(ServeMessage::UpdateDone {
            inserted: vec![2],
            removed: vec![NOT_FOUND, 0],
            staleness: 0.25,
            epoch: 7,
        });
        roundtrip(ServeMessage::Stats);
        roundtrip(ServeMessage::StatsReply(sample_stats()));
        roundtrip(ServeMessage::Shutdown);
        roundtrip(ServeMessage::Bye);
        roundtrip(ServeMessage::Error {
            message: "nope".into(),
        });
    }

    #[test]
    fn rejects_dist_tags_and_junk() {
        let err = ServeMessage::decode(&[1, 0, 0, 0, 1]).unwrap_err();
        assert!(err.to_string().contains("partitioning protocol"), "{err}");
        assert!(ServeMessage::decode(&[200]).is_err());
        assert!(ServeMessage::decode(&[]).is_err());
        // Truncated payload.
        assert!(ServeMessage::decode(&[TAG_LOOKUP, 1, 0, 0, 0]).is_err());
        // Trailing garbage.
        let mut frame = ServeMessage::Stats.encode();
        frame.push(0);
        assert!(ServeMessage::decode(&frame).is_err());
    }

    #[test]
    fn v1_stats_reply_decodes_to_a_version_hint_not_a_bare_eof() {
        // A v1 peer's StatsReply stops after cache_misses. Reconstruct one
        // by truncating a v2 frame at the uptime field.
        let stats = sample_stats();
        let frame = ServeMessage::StatsReply(stats).encode();
        let v2_tail = 8 + 3 * 5 * 8; // uptime f64 + three 5×u64 latency blocks
        let v1_frame = &frame[..frame.len() - v2_tail];
        let err = ServeMessage::decode(v1_frame).unwrap_err();
        assert!(
            err.to_string().contains("protocol v1"),
            "want a version hint, got: {err}"
        );
        // Truncation *inside* the v2 tail names the half-read block.
        let err = ServeMessage::decode(&frame[..frame.len() - 8]).unwrap_err();
        assert!(err.to_string().contains("truncated") || err.to_string().contains("update"));
    }

    #[test]
    fn oversized_batch_counts_are_rejected_not_allocated() {
        let mut frame = vec![TAG_LOOKUP];
        tps_dist::wire::put_u32(&mut frame, u32::MAX);
        assert!(ServeMessage::decode(&frame).is_err());
        let mut frame = vec![TAG_REPLICA_SETS];
        tps_dist::wire::put_u32(&mut frame, u32::MAX);
        assert!(ServeMessage::decode(&frame).is_err());
    }
}
