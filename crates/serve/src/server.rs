//! The serving daemon: accept loop + per-connection request handler.
//!
//! One OS thread per connection over the shared
//! `Arc<RwLock<ServeState>>` — lookups and replica queries take the read
//! side (and run concurrently across connections), update batches take the
//! write side. Each connection keeps its own epoch-validated
//! [`VertexLru`], so replica-set answers cached before an update batch
//! become one-integer-compare misses after it, with no cross-connection
//! invalidation traffic.
//!
//! Shutdown is cooperative: a `Shutdown` frame (or
//! [`ServeHandle::shutdown`]) raises a flag; the accept loop polls it
//! non-blockingly and connection handlers observe it through their receive
//! timeout.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use tps_dist::transport::is_timeout;
use tps_dist::{TcpTransport, Transport};
use tps_obs::{metrics_enabled, Counter, Hist};

use crate::lru::VertexLru;
use crate::metrics::{
    INSERT_BATCH, LOOKUP_BATCH, LOOKUP_NS, REMOVE_BATCH, REPLICAS_BATCH, REPLICAS_NS, UPDATE_NS,
};
use crate::packed::NOT_FOUND;
use crate::proto::{ServeMessage, SERVE_PROTOCOL_VERSION};
use crate::state::ServeState;

static SERVE_CONNECTIONS: Counter = Counter::new("serve.connections");
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");

/// Start timing an op iff histogram recording is on — when it is off (the
/// `metrics_overhead` bench's baseline) the hot path skips even the clock
/// reads, so the measured slowdown is the full cost of the instrumentation.
#[inline]
fn op_start() -> Option<Instant> {
    metrics_enabled().then(Instant::now)
}

/// Finish timing an op: record latency and batch size into its histograms.
#[inline]
fn op_done(t0: Option<Instant>, latency: &'static Hist, batch: &'static Hist, n: usize) {
    if let Some(t0) = t0 {
        latency.record(t0.elapsed().as_nanos() as u64);
        batch.record(n as u64);
    }
}

/// Knobs for the daemon's request handling.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Per-connection replica-set cache capacity in entries (0 disables).
    pub cache_capacity: usize,
    /// How often blocked receives wake up to check the shutdown flag.
    pub recv_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 4096,
            recv_timeout: Duration::from_millis(200),
        }
    }
}

fn read_state(state: &RwLock<ServeState>) -> RwLockReadGuard<'_, ServeState> {
    state.read().unwrap_or_else(|e| e.into_inner())
}

fn write_state(state: &RwLock<ServeState>) -> RwLockWriteGuard<'_, ServeState> {
    state.write().unwrap_or_else(|e| e.into_inner())
}

/// Whether an I/O error means the peer simply went away (a clean end of a
/// serving connection, not a fault).
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Drive one client connection to completion: handshake, then a
/// request/reply loop until the client disconnects, asks for shutdown, or
/// the daemon-wide `shutdown` flag is raised.
///
/// Public so benches and tests can serve an in-process
/// [`loopback_pair`](tps_dist::loopback_pair) end without a socket.
pub fn serve_connection(
    t: &mut dyn Transport,
    state: &RwLock<ServeState>,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    SERVE_CONNECTIONS.incr();
    t.set_recv_timeout(Some(cfg.recv_timeout))?;
    let mut cache = VertexLru::new(cfg.cache_capacity);

    // Handshake: the first frame must be a version-compatible Hello.
    let hello = loop {
        match t.recv() {
            Ok(frame) => break frame,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if is_disconnect(&e) => return Ok(()),
            Err(e) => return Err(e),
        }
    };
    match ServeMessage::decode(&hello) {
        Ok(ServeMessage::Hello { version }) if version == SERVE_PROTOCOL_VERSION => {}
        Ok(ServeMessage::Hello { version }) => {
            let msg = format!(
                "serve protocol version mismatch: client speaks v{version}, server v{SERVE_PROTOCOL_VERSION}"
            );
            t.send(
                &ServeMessage::Error {
                    message: msg.clone(),
                }
                .encode(),
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        Ok(other) => {
            let msg = format!("expected Hello to open the connection, got {other:?}");
            t.send(
                &ServeMessage::Error {
                    message: msg.clone(),
                }
                .encode(),
            )?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
        }
        Err(e) => {
            t.send(
                &ServeMessage::Error {
                    message: e.to_string(),
                }
                .encode(),
            )?;
            return Err(e);
        }
    }
    {
        let st = read_state(state);
        t.send(
            &ServeMessage::Welcome {
                version: SERVE_PROTOCOL_VERSION,
                k: st.k(),
                num_vertices: st.num_vertices(),
                num_edges: st.num_edges(),
            }
            .encode(),
        )?;
    }

    let result = loop {
        let frame = match t.recv() {
            Ok(frame) => frame,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    break Ok(());
                }
                continue;
            }
            Err(e) if is_disconnect(&e) => break Ok(()),
            Err(e) => break Err(e),
        };
        SERVE_REQUESTS.incr();
        let reply = match ServeMessage::decode(&frame) {
            Ok(ServeMessage::Lookup { edges }) => {
                let span = tps_obs::enabled().then(|| tps_obs::span("serve.lookup"));
                let t0 = op_start();
                let st = read_state(state);
                let parts = edges
                    .iter()
                    .map(|&e| st.lookup(e).unwrap_or(NOT_FOUND))
                    .collect();
                drop(span);
                op_done(t0, &LOOKUP_NS, &LOOKUP_BATCH, edges.len());
                ServeMessage::Parts { parts }
            }
            Ok(ServeMessage::Replicas { vertices }) => {
                let span = tps_obs::enabled().then(|| tps_obs::span("serve.replicas"));
                let t0 = op_start();
                let st = read_state(state);
                let epoch = st.epoch();
                let sets = vertices
                    .iter()
                    .map(|&v| {
                        if let Some(hit) = cache.get(v, epoch) {
                            return hit.to_vec();
                        }
                        let set = st.replicas_of(v);
                        cache.insert(v, epoch, set.clone());
                        set
                    })
                    .collect();
                drop(span);
                op_done(t0, &REPLICAS_NS, &REPLICAS_BATCH, vertices.len());
                ServeMessage::ReplicaSets { sets }
            }
            Ok(ServeMessage::Update { inserts, removes }) => {
                let span = tps_obs::enabled().then(|| tps_obs::span("serve.update"));
                let t0 = op_start();
                let mut st = write_state(state);
                let out = st.apply(&inserts, &removes);
                let staleness = st.staleness();
                drop(st);
                drop(span);
                if let Some(t0) = t0 {
                    UPDATE_NS.record(t0.elapsed().as_nanos() as u64);
                    INSERT_BATCH.record(inserts.len() as u64);
                    REMOVE_BATCH.record(removes.len() as u64);
                }
                if tps_obs::enabled() {
                    tps_obs::instant_with(
                        "serve.delta",
                        format!("+{} -{} epoch {}", inserts.len(), removes.len(), out.epoch),
                    );
                }
                ServeMessage::UpdateDone {
                    inserted: out.inserted,
                    removed: out.removed,
                    staleness,
                    epoch: out.epoch,
                }
            }
            Ok(ServeMessage::Stats) => ServeMessage::StatsReply(read_state(state).stats()),
            Ok(ServeMessage::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                t.send(&ServeMessage::Bye.encode())?;
                break Ok(());
            }
            Ok(other) => ServeMessage::Error {
                message: format!("unexpected request frame {other:?}"),
            },
            Err(e) => ServeMessage::Error {
                message: e.to_string(),
            },
        };
        match t.send(&reply.encode()) {
            Ok(()) => {}
            Err(e) if is_disconnect(&e) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    let (hits, misses) = cache.stats();
    read_state(state).record_cache(hits, misses);
    // Flush this connection thread's recorded spans/marks so a later
    // `--trace` write sees them even though connection threads outlive no
    // barrier (the ring self-flushes at capacity; this catches the tail).
    tps_obs::drain_local();
    result
}

/// A handle to a running [`serve_listener`] loop, usable from other
/// threads to request a stop.
#[derive(Clone, Default)]
pub struct ServeHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServeHandle {
    /// A fresh handle with the flag lowered.
    pub fn new() -> ServeHandle {
        ServeHandle::default()
    }

    /// Ask the accept loop (and every connection) to wind down.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }
}

/// Accept connections on `listener` until shutdown, serving each on its
/// own thread. Blocks the calling thread; returns once the flag is raised
/// and every connection handler has finished.
pub fn serve_listener(
    listener: TcpListener,
    state: Arc<RwLock<ServeState>>,
    cfg: ServerConfig,
    handle: &ServeHandle,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    while !handle.is_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                stream.set_nonblocking(false)?;
                let state = state.clone();
                let shutdown = handle.flag();
                workers.push(std::thread::spawn(move || {
                    let mut t = match TcpTransport::new(stream) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("serve: connection setup failed: {e}");
                            return;
                        }
                    };
                    if let Err(e) = serve_connection(&mut t, &state, &cfg, &shutdown) {
                        eprintln!("serve: connection error: {e}");
                    }
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        w.join().ok();
    }
    Ok(())
}

/// Serve one in-process loopback connection on a background thread and
/// return the client-side transport — the zero-syscall path benches and
/// tests use.
pub fn spawn_loopback(
    state: Arc<RwLock<ServeState>>,
    cfg: ServerConfig,
) -> (
    tps_dist::LoopbackTransport,
    std::thread::JoinHandle<io::Result<()>>,
) {
    let (client, mut server) = tps_dist::loopback_pair();
    let handle = std::thread::spawn(move || {
        let shutdown = AtomicBool::new(false);
        serve_connection(&mut server, &state, &cfg, &shutdown)
    });
    (client, handle)
}
