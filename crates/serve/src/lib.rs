//! `tps-serve` — online assignment serving and incremental repartitioning.
//!
//! A finished 2PS-L run materialises a static partitioning; this crate
//! keeps it **live**. The daemon loads the run output once, answers
//! edge→partition and vertex→replica-set point queries at memory speed,
//! and ingests streamed edge insertions/deletions through the paper's own
//! two-phase scoring (`tps_core::incremental`) — reassigning only the
//! delta, never re-partitioning the graph. Drift is exposed as
//! `staleness` so an operator (or the CI loop) can schedule a full
//! re-partition when churn erodes quality.
//!
//! # Crate layout
//!
//! * [`packed`] — [`PackedAssignment`]: sorted-key arrays, 12 bytes/edge,
//!   binary-search reads; the read-optimised mapping loaded from the
//!   `--out` directory.
//! * [`state`] — [`ServeState`]: packed read path + adopted
//!   [`IncrementalTwoPhase`](tps_core::incremental::IncrementalTwoPhase)
//!   write path + a minimal overlay diff between them, plus snapshot
//!   save/restore.
//! * [`proto`] — [`ServeMessage`]: the request frames (tags 32+, the
//!   space dist protocol v5 reserves) over the same length-prefixed
//!   transport as `tps-dist`.
//! * [`server`] — the daemon: accept loop, thread-per-connection handler,
//!   per-connection epoch-validated replica cache.
//! * [`client`] — [`ServeClient`]: typed batched requests over any
//!   [`Transport`](tps_dist::Transport).
//! * [`lru`] — [`VertexLru`]: the hand-rolled epoch-validated LRU behind
//!   the hot-vertex cache.
//! * [`metrics`] — the live metrics plane: per-op latency/batch-size
//!   histograms recorded by the request loop, scrape-time state gauges,
//!   and the `--metrics-addr` endpoint ([`start_metrics`]).
//!
//! The CLI front ends live in `tps`: `tps serve`, `tps lookup` and
//! `tps top` (the scrape dashboard).

pub mod client;
pub mod lru;
pub mod metrics;
pub mod packed;
pub mod proto;
pub mod server;
pub mod state;

pub use client::{ServeClient, UpdateOutcome};
pub use lru::VertexLru;
pub use metrics::{metrics_body, start_metrics};
pub use packed::{edge_key, key_edge, PackedAssignment, NOT_FOUND};
pub use proto::{OpLatency, ServeMessage, ServeStats, SERVE_PROTOCOL_VERSION};
pub use server::{serve_connection, serve_listener, spawn_loopback, ServeHandle, ServerConfig};
pub use state::{ApplyOutcome, ServeOptions, ServeState};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, RwLock};
    use tps_dist::Transport;
    use tps_graph::types::Edge;

    #[test]
    fn loopback_end_to_end() {
        let pairs: Vec<(Edge, u32)> = (0..400u32)
            .map(|i| (Edge::new(i % 40, 40 + i), i % 4))
            .collect();
        let state = Arc::new(RwLock::new(
            ServeState::from_assignments(&pairs, 512, 4, &ServeOptions::default()).unwrap(),
        ));
        let (client_t, server) = spawn_loopback(state.clone(), ServerConfig::default());
        let mut client = ServeClient::over(Box::new(client_t)).unwrap();
        assert_eq!(client.k(), 4);
        assert_eq!(client.num_edges(), 400);

        // Bit-correct batched lookups, including both orientations and a miss.
        let edges: Vec<Edge> = pairs.iter().map(|&(e, _)| e).collect();
        let got = client.lookup_batch(&edges).unwrap();
        for (i, &(_, p)) in pairs.iter().enumerate() {
            assert_eq!(got[i], Some(p));
        }
        assert_eq!(
            client.lookup_batch(&[Edge::new(500, 501)]).unwrap(),
            vec![None]
        );

        // Replica sets agree with the engine, twice (second hit cached).
        for _ in 0..2 {
            let sets = client.replica_sets(&[0, 1, 499]).unwrap();
            let st = state.read().unwrap();
            assert_eq!(sets[0], st.replicas_of(0));
            assert_eq!(sets[1], st.replicas_of(1));
            assert!(sets[2].is_empty());
        }

        // A delta batch: the insert is visible, the removal gone, and the
        // epoch/staleness move.
        let out = client
            .update(&[Edge::new(100, 200)], &[pairs[0].0, Edge::new(300, 301)])
            .unwrap();
        assert!(out.inserted[0].is_some());
        assert!(out.removed[0].is_some());
        assert_eq!(out.removed[1], None);
        assert_eq!(out.epoch, 1);
        assert!(out.staleness > 0.0);
        assert_eq!(
            client.lookup_batch(&[Edge::new(200, 100)]).unwrap()[0],
            out.inserted[0]
        );
        assert_eq!(client.lookup_batch(&[pairs[0].0]).unwrap()[0], None);

        let stats = client.stats().unwrap();
        assert_eq!(stats.epoch, 1);
        assert!(stats.lookups > 0);
        assert_eq!(stats.updates, 2);
        assert!(stats.cache_hits == 0); // folded in at connection end

        // v2 live-metrics fields: sourced from the per-op histograms.
        assert!(stats.uptime_secs >= 0.0);
        assert!(
            stats.lookup_latency.count >= 4,
            "{:?}",
            stats.lookup_latency
        );
        assert!(stats.lookup_latency.p50_ns > 0);
        assert!(stats.lookup_latency.p50_ns <= stats.lookup_latency.p99_ns);
        assert!(stats.update_latency.count >= 1);

        client.shutdown().unwrap();
        server.join().unwrap().unwrap();
        let (hits, misses) = (
            state.read().unwrap().stats().cache_hits,
            state.read().unwrap().stats().cache_misses,
        );
        assert!(hits >= 3, "expected cached replica hits, got {hits}");
        assert!(misses >= 3);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let pairs = [(Edge::new(0, 1), 0u32)];
        let state = Arc::new(RwLock::new(
            ServeState::from_assignments(&pairs, 2, 1, &ServeOptions::default()).unwrap(),
        ));
        let (mut client_t, server) = spawn_loopback(state, ServerConfig::default());
        client_t
            .send(&ServeMessage::Hello { version: 999 }.encode())
            .unwrap();
        let reply = ServeMessage::decode(&client_t.recv().unwrap()).unwrap();
        assert!(matches!(reply, ServeMessage::Error { .. }), "{reply:?}");
        assert!(server.join().unwrap().is_err());
    }
}
