//! The read-optimised assignment table.
//!
//! A finished partitioning is a set of `(edge, partition)` pairs. The
//! serving daemon answers point lookups against it millions of times per
//! second, so the hash map the incremental engine keeps for its write path
//! is the wrong shape: 48+ bytes per edge and a pointer chase per probe.
//! [`PackedAssignment`] stores the same mapping as two parallel arrays —
//! sorted canonical 64-bit edge keys plus one `u32` partition id each —
//! 12 bytes per edge and a cache-friendly binary search per lookup.

use std::io;

use tps_graph::types::{Edge, PartitionId};

/// Sentinel partition id meaning "edge not present" on the wire.
pub const NOT_FOUND: u32 = u32::MAX;

/// The canonical 64-bit key of an edge: smaller endpoint in the high word.
///
/// Matches `Edge::canonical()` ordering, so keys sort by `(min, max)` and
/// both orientations of an edge map to the same key.
pub fn edge_key(e: Edge) -> u64 {
    let c = e.canonical();
    ((c.src as u64) << 32) | c.dst as u64
}

/// An immutable edge→partition mapping packed for point lookups.
#[derive(Clone, Debug, Default)]
pub struct PackedAssignment {
    /// Sorted canonical edge keys.
    keys: Vec<u64>,
    /// `parts[i]` is the partition of `keys[i]`.
    parts: Vec<u32>,
}

impl PackedAssignment {
    /// Pack a list of assignments. Rejects duplicate (canonicalised) edges
    /// and partition ids `>= k`.
    pub fn from_assignments(
        assignments: &[(Edge, PartitionId)],
        k: u32,
    ) -> io::Result<PackedAssignment> {
        let mut pairs: Vec<(u64, u32)> =
            assignments.iter().map(|&(e, p)| (edge_key(e), p)).collect();
        pairs.sort_unstable_by_key(|&(key, _)| key);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                let e = key_edge(w[0].0);
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate edge {}->{} in partition files", e.src, e.dst),
                ));
            }
        }
        let mut keys = Vec::with_capacity(pairs.len());
        let mut parts = Vec::with_capacity(pairs.len());
        for (key, p) in pairs {
            if p >= k {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("partition id {p} out of range (k = {k})"),
                ));
            }
            keys.push(key);
            parts.push(p);
        }
        Ok(PackedAssignment { keys, parts })
    }

    /// Number of packed edges.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The partition of `e`, if present. Binary search over the key array.
    pub fn lookup(&self, e: Edge) -> Option<PartitionId> {
        self.get(edge_key(e))
    }

    /// The partition of a canonical [`edge_key`], if present.
    pub fn get(&self, key: u64) -> Option<PartitionId> {
        self.keys.binary_search(&key).ok().map(|i| self.parts[i])
    }

    /// Whether the (canonicalised) key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// Every packed `(key, partition)` pair in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, PartitionId)> + '_ {
        self.keys.iter().copied().zip(self.parts.iter().copied())
    }

    /// Batch probe: the partition of each of `sorted_keys` (ascending,
    /// duplicates allowed). One galloping pass over the table — each probe
    /// restarts from the previous hit and widens exponentially — so a
    /// sorted batch of `B` keys costs `O(B log(len/B))` near-sequential
    /// accesses instead of `B` independent full-depth binary searches.
    pub fn probe_sorted(&self, sorted_keys: &[u64]) -> Vec<Option<PartitionId>> {
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        let mut out = Vec::with_capacity(sorted_keys.len());
        let mut base = 0usize;
        for &key in sorted_keys {
            let mut step = 1usize;
            while base + step < self.keys.len() && self.keys[base + step] < key {
                step *= 2;
            }
            let end = (base + step + 1).min(self.keys.len());
            let i = base + self.keys[base..end].partition_point(|&k| k < key);
            out.push((self.keys.get(i) == Some(&key)).then(|| self.parts[i]));
            base = i;
        }
        out
    }
}

/// Invert [`edge_key`]: the canonical edge of a key.
pub fn key_edge(key: u64) -> Edge {
    Edge::new((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_canonical_and_invertible() {
        let e = Edge::new(7, 3);
        assert_eq!(edge_key(e), edge_key(Edge::new(3, 7)));
        assert_eq!(key_edge(edge_key(e)), Edge::new(3, 7));
    }

    #[test]
    fn lookup_matches_source_pairs_both_orientations() {
        let pairs: Vec<(Edge, PartitionId)> = (0..500u32)
            .map(|i| (Edge::new(i % 64, 64 + (i * 7) % 200), i % 4))
            .collect();
        // Dedup on canonical key, keeping the first occurrence.
        let mut seen = std::collections::HashSet::new();
        let uniq: Vec<_> = pairs
            .into_iter()
            .filter(|&(e, _)| seen.insert(edge_key(e)))
            .collect();
        let packed = PackedAssignment::from_assignments(&uniq, 4).unwrap();
        assert_eq!(packed.len(), uniq.len());
        for &(e, p) in &uniq {
            assert_eq!(packed.lookup(e), Some(p));
            assert_eq!(packed.lookup(Edge::new(e.dst, e.src)), Some(p));
        }
        assert_eq!(packed.lookup(Edge::new(4000, 4001)), None);
    }

    #[test]
    fn sorted_batch_probe_agrees_with_point_lookups() {
        let pairs: Vec<(Edge, PartitionId)> = (0..400u32)
            .map(|i| (Edge::new(i * 3, i * 3 + 1), i % 8))
            .collect();
        let packed = PackedAssignment::from_assignments(&pairs, 8).unwrap();
        // Present, absent, duplicate and out-of-range keys, sorted.
        let mut keys: Vec<u64> = pairs.iter().map(|&(e, _)| edge_key(e)).collect();
        keys.extend((0..200u32).map(|i| edge_key(Edge::new(i * 7, i * 7 + 2))));
        keys.push(edge_key(Edge::new(0, 1)));
        keys.push(u64::MAX);
        keys.sort_unstable();
        let probed = packed.probe_sorted(&keys);
        for (&key, got) in keys.iter().zip(probed) {
            assert_eq!(got, packed.get(key), "batch probe diverged at key {key}");
        }
        assert!(PackedAssignment::default()
            .probe_sorted(&keys)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn rejects_duplicates_and_bad_partitions() {
        let dup = [(Edge::new(1, 2), 0), (Edge::new(2, 1), 1)];
        assert!(PackedAssignment::from_assignments(&dup, 4).is_err());
        let bad = [(Edge::new(1, 2), 9)];
        assert!(PackedAssignment::from_assignments(&bad, 4).is_err());
    }
}
