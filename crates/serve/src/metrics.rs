//! The daemon's live metrics plane.
//!
//! Per-op request histograms (latency in nanoseconds + batch sizes) are
//! process-global [`Hist`]s recorded by the request loop — a couple of
//! relaxed atomic ops per request, nothing else on the hot path. Gauges
//! that mirror serving *state* (staleness, overlay size, epoch, …) are
//! refreshed lazily by [`metrics_body`], i.e. entirely on the scrape
//! thread, so an idle daemon with no scraper pays nothing for them.
//!
//! [`start_metrics`] binds `--metrics-addr` and answers every scrape with
//! the full exposition: these gauges, every registered `tps_obs` counter
//! (`serve.*`, and `io.*`/`core.*` from the load), and every histogram
//! with cumulative buckets and p50/p90/p99.

use std::io;
use std::sync::{Arc, RwLock};

use tps_obs::{render_exposition, serve_metrics, set_gauge, Hist, MetricsServer};

use crate::proto::OpLatency;
use crate::state::ServeState;

/// Batched-lookup request latency, ns.
pub static LOOKUP_NS: Hist = Hist::new("serve.op.lookup.ns");
/// Edges per lookup request.
pub static LOOKUP_BATCH: Hist = Hist::new("serve.op.lookup.batch");
/// Replica-set request latency, ns.
pub static REPLICAS_NS: Hist = Hist::new("serve.op.replicas.ns");
/// Vertices per replica-set request.
pub static REPLICAS_BATCH: Hist = Hist::new("serve.op.replicas.batch");
/// Update-batch request latency (inserts + removes applied atomically), ns.
pub static UPDATE_NS: Hist = Hist::new("serve.op.update.ns");
/// Insertions per update request.
pub static INSERT_BATCH: Hist = Hist::new("serve.op.insert.batch");
/// Removals per update request.
pub static REMOVE_BATCH: Hist = Hist::new("serve.op.remove.batch");

/// Summarise one latency histogram for a `StatsReply`.
pub fn op_latency(h: &Hist) -> OpLatency {
    let s = h.snapshot();
    OpLatency {
        count: s.count(),
        p50_ns: s.quantile(0.5),
        p90_ns: s.quantile(0.9),
        p99_ns: s.quantile(0.99),
        max_ns: s.max,
    }
}

fn refresh_gauges(state: &RwLock<ServeState>) {
    let st = state.read().unwrap_or_else(|e| e.into_inner());
    set_gauge("serve.staleness", st.staleness());
    set_gauge("serve.epoch", st.epoch() as f64);
    set_gauge("serve.overlay.len", st.overlay_len() as f64);
    set_gauge("serve.edges.live", st.num_edges() as f64);
    set_gauge("serve.uptime.secs", st.uptime_secs());
    let (hits, misses) = st.cache_counts();
    set_gauge("serve.cache.hits", hits as f64);
    set_gauge("serve.cache.misses", misses as f64);
}

/// Refresh the state gauges and render the full text exposition — the
/// scrape body for this daemon. Runs on the scrape thread.
pub fn metrics_body(state: &RwLock<ServeState>) -> String {
    refresh_gauges(state);
    render_exposition()
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and serve metrics scrapes for `state`
/// until the returned server is shut down or dropped.
pub fn start_metrics(addr: &str, state: Arc<RwLock<ServeState>>) -> io::Result<MetricsServer> {
    serve_metrics(addr, move || metrics_body(&state))
}
