//! Virtual-clock device models and the accounting stream wrapper.

use std::io;
use std::time::Duration;

use tps_graph::stream::EdgeStream;
use tps_graph::types::Edge;

/// Bytes per edge record in the binary edge list (two `u32` ids).
pub const EDGE_BYTES: u64 = 8;

/// A storage device characterised by sequential bandwidth and a per-pass
/// seek/setup latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceModel {
    /// Device name as used in Table V ("Page Cache", "SSD", "HDD").
    pub name: &'static str,
    /// Sequential read bandwidth in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed cost charged at the start of every pass (seek + readahead
    /// warm-up).
    pub pass_latency: Duration,
}

impl DeviceModel {
    /// The OS page cache: memory-bandwidth re-reads (the paper's default
    /// configuration for §V-A–E, ~10 GB/s effective).
    pub fn page_cache() -> Self {
        DeviceModel {
            name: "Page Cache",
            bandwidth_bytes_per_sec: 10.0e9,
            pass_latency: Duration::ZERO,
        }
    }

    /// The paper's SSD: 938 MB/s sequential read (measured with fio).
    pub fn ssd() -> Self {
        DeviceModel {
            name: "SSD",
            bandwidth_bytes_per_sec: 938.0e6,
            pass_latency: Duration::from_micros(100),
        }
    }

    /// The paper's HDD: 158 MB/s sequential read.
    pub fn hdd() -> Self {
        DeviceModel {
            name: "HDD",
            bandwidth_bytes_per_sec: 158.0e6,
            pass_latency: Duration::from_millis(12),
        }
    }

    /// All three Table V devices.
    pub fn table5() -> [DeviceModel; 3] {
        [Self::page_cache(), Self::ssd(), Self::hdd()]
    }

    /// Simulated time to stream `bytes` in one pass.
    pub fn pass_time(&self, bytes: u64) -> Duration {
        self.pass_latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// Accumulated I/O accounting of a [`DeviceStream`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoAccount {
    /// Completed (reset-delimited) passes.
    pub passes: u64,
    /// Total bytes charged.
    pub bytes: u64,
    /// Total simulated I/O time.
    pub simulated_io: Duration,
}

/// Wraps an [`EdgeStream`], charging every streamed edge (and every pass
/// start) to a [`DeviceModel`] on a virtual clock.
///
/// Bytes are accumulated exactly; the simulated time is derived from the
/// totals on demand, so no per-edge rounding error accrues.
pub struct DeviceStream<S> {
    inner: S,
    device: DeviceModel,
    passes: u64,
    bytes: f64,
    record_bytes: f64,
    started_pass: bool,
}

impl<S: EdgeStream> DeviceStream<S> {
    /// Wrap `inner` with the given device model, charging the v1 record
    /// size ([`EDGE_BYTES`]) per edge.
    pub fn new(inner: S, device: DeviceModel) -> Self {
        Self::with_record_bytes(inner, device, EDGE_BYTES as f64)
    }

    /// Wrap `inner`, charging `record_bytes` per streamed edge.
    ///
    /// Compressed backends do not read 8 bytes per edge: a `tps-io` TPSBEL2
    /// stream's effective record size is `pass_bytes / num_edges` (often
    /// ~5–6 B). Accounting any `EdgeStream` backend accurately only needs
    /// that average, since every pass reads the whole file.
    pub fn with_record_bytes(inner: S, device: DeviceModel, record_bytes: f64) -> Self {
        assert!(record_bytes >= 0.0 && record_bytes.is_finite());
        DeviceStream {
            inner,
            device,
            passes: 0,
            bytes: 0.0,
            record_bytes,
            started_pass: false,
        }
    }

    /// The accounting so far.
    pub fn account(&self) -> IoAccount {
        IoAccount {
            passes: self.passes,
            bytes: self.bytes.round() as u64,
            simulated_io: self.device.pass_latency * self.passes as u32
                + Duration::from_secs_f64(self.bytes / self.device.bandwidth_bytes_per_sec),
        }
    }

    /// The wrapped device model.
    pub fn device(&self) -> DeviceModel {
        self.device
    }

    /// Unwrap the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EdgeStream> EdgeStream for DeviceStream<S> {
    fn reset(&mut self) -> io::Result<()> {
        self.inner.reset()?;
        self.started_pass = false;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        let e = self.inner.next_edge()?;
        if e.is_some() {
            if !self.started_pass {
                // Charge the per-pass seek on the first actual read so that
                // opened-but-never-read passes cost nothing.
                self.started_pass = true;
                self.passes += 1;
            }
            self.bytes += self.record_bytes;
        }
        Ok(e)
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        self.inner.num_vertices_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_graph::stream::{for_each_edge, InMemoryGraph};

    fn graph(edges: u32) -> InMemoryGraph {
        InMemoryGraph::from_edges((0..edges).map(|i| Edge::new(i, i + 1)).collect())
    }

    #[test]
    fn charges_bytes_per_edge() {
        let mut s = DeviceStream::new(graph(100), DeviceModel::ssd());
        for_each_edge(&mut s, |_| {}).unwrap();
        let acc = s.account();
        assert_eq!(acc.passes, 1);
        assert_eq!(acc.bytes, 100 * EDGE_BYTES);
        let expected = DeviceModel::ssd().pass_time(100 * EDGE_BYTES);
        let diff = acc.simulated_io.abs_diff(expected);
        assert!(diff < Duration::from_micros(5), "diff {diff:?}");
    }

    #[test]
    fn multiple_passes_accumulate() {
        let mut s = DeviceStream::new(graph(10), DeviceModel::hdd());
        for_each_edge(&mut s, |_| {}).unwrap();
        for_each_edge(&mut s, |_| {}).unwrap();
        let acc = s.account();
        assert_eq!(acc.passes, 2);
        assert_eq!(acc.bytes, 2 * 10 * EDGE_BYTES);
        // HDD pass latency dominates: at least 2 × 12 ms.
        assert!(acc.simulated_io >= Duration::from_millis(24));
    }

    #[test]
    fn hdd_slower_than_ssd_slower_than_cache() {
        let bytes = 1 << 30;
        let cache = DeviceModel::page_cache().pass_time(bytes);
        let ssd = DeviceModel::ssd().pass_time(bytes);
        let hdd = DeviceModel::hdd().pass_time(bytes);
        assert!(cache < ssd);
        assert!(ssd < hdd);
        // ~5.9× gap between SSD and HDD bandwidth.
        let ratio = hdd.as_secs_f64() / ssd.as_secs_f64();
        assert!(ratio > 5.0 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn empty_pass_still_counts_latency_lazily() {
        // A pass over an empty stream never reads an edge, so no pass is
        // charged (matches "open but never read" semantics).
        let mut s = DeviceStream::new(InMemoryGraph::from_edges(vec![]), DeviceModel::hdd());
        for_each_edge(&mut s, |_| {}).unwrap();
        assert_eq!(s.account().passes, 0);
    }

    #[test]
    fn custom_record_bytes_scale_the_charge() {
        // A compressed stream averaging 5.5 B/edge.
        let mut s = DeviceStream::with_record_bytes(graph(100), DeviceModel::ssd(), 5.5);
        for_each_edge(&mut s, |_| {}).unwrap();
        assert_eq!(s.account().bytes, 550);
        assert_eq!(s.account().passes, 1);
    }

    #[test]
    fn hints_pass_through() {
        let s = DeviceStream::new(graph(5), DeviceModel::ssd());
        assert_eq!(s.len_hint(), Some(5));
        assert_eq!(s.num_vertices_hint(), Some(6));
    }
}
