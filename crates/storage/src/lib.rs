//! Storage-device models for the external-storage experiments (Table V).
//!
//! The paper evaluates 2PS-L's multi-pass streaming against three storage
//! configurations: the Linux page cache (memory-speed re-reads), a local SSD
//! (938 MB/s sequential, measured with `fio`) and a local HDD (158 MB/s),
//! dropping the page cache between passes so every pass re-reads the device.
//!
//! We model this with a **virtual clock**: [`DeviceModel`] charges each byte
//! streamed at the device's sequential bandwidth plus a per-pass seek
//! penalty, and [`DeviceStream`] wraps any [`EdgeStream`](tps_graph::stream::EdgeStream) to account every
//! pass. The simulated I/O time is added to the measured CPU time, which
//! matches the paper's single-threaded read-process loop (no overlap).
//! The virtual clock keeps the benches deterministic and fast — no actual
//! sleeping or disk access is required (see DESIGN.md §2).

pub mod device;
pub mod profile;

pub use device::{DeviceModel, DeviceStream, IoAccount};
pub use profile::profile_sequential_read;
