//! A small fio-style sequential-read profiler.
//!
//! The paper profiles its devices with `fio` (single-threaded sequential
//! read of a 5 GB file in 100 MB blocks). [`profile_sequential_read`] is the
//! equivalent measurement for a real file — used by the CLI's `profile`
//! subcommand so users can calibrate a [`crate::DeviceModel`] to their own
//! hardware. The Table V bench itself uses the paper's published numbers.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::time::Instant;

/// Result of a sequential-read profile.
#[derive(Clone, Copy, Debug)]
pub struct ReadProfile {
    /// Bytes read.
    pub bytes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ReadProfile {
    /// Measured bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.seconds
        }
    }
}

/// Sequentially read `path` in `block_size`-byte chunks (fio-style) and
/// report the achieved bandwidth. Note that the OS page cache will serve
/// re-reads; drop caches externally for cold-device numbers, exactly as the
/// paper does.
pub fn profile_sequential_read(path: &Path, block_size: usize) -> io::Result<ReadProfile> {
    assert!(block_size > 0, "block size must be positive");
    let mut file = File::open(path)?;
    let mut buf = vec![0u8; block_size];
    let start = Instant::now();
    let mut total = 0u64;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        total += n as u64;
        // Touch the buffer so the read is not optimised away.
        std::hint::black_box(&buf[..n]);
    }
    Ok(ReadProfile {
        bytes: total,
        seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_a_small_file() {
        let path = std::env::temp_dir().join(format!("tps-profile-{}.bin", std::process::id()));
        std::fs::write(&path, vec![0xAB; 1 << 20]).unwrap();
        let p = profile_sequential_read(&path, 64 << 10).unwrap();
        assert_eq!(p.bytes, 1 << 20);
        assert!(p.bandwidth() > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let p = Path::new("/nonexistent/tps-file");
        assert!(profile_sequential_read(p, 4096).is_err());
    }

    #[test]
    fn zero_second_profile_has_zero_bandwidth() {
        let p = ReadProfile {
            bytes: 0,
            seconds: 0.0,
        };
        assert_eq!(p.bandwidth(), 0.0);
    }
}
