//! A counting global allocator — the repository's stand-in for the paper's
//! "maximum resident set size" measurements (Fig. 4, right column; Table II).
//!
//! The paper reports `max RSS` per partitioning run. Inside one long-running
//! bench process RSS is useless (the OS never returns freed pages), so we
//! count live heap bytes instead: [`CountingAllocator`] wraps the system
//! allocator and tracks *current* and *peak* live bytes with relaxed atomics.
//! Bench binaries install it as `#[global_allocator]`, call
//! [`reset_peak`] before each run and read [`peak_bytes`] after — giving a
//! deterministic, comparable per-run memory figure.
//!
//! Cost: two atomic adds per allocation. That overhead is identical across
//! partitioners, so comparisons remain fair.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper over the system allocator that tracks live and
/// peak heap bytes.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn add(size: usize) {
        let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        // Lossy peak update is fine: the bench harness is effectively
        // single-threaded at measurement points, and a slightly stale peak
        // changes nothing about the comparison.
        let mut peak = PEAK.load(Ordering::Relaxed);
        while cur > peak {
            match PEAK.compare_exchange_weak(peak, cur, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn sub(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: delegates directly to `System`; the bookkeeping never dereferences
// the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::sub(layout.size());
            Self::add(new_size);
        }
        p
    }
}

/// Live heap bytes right now (as tracked; 0 if the counting allocator is not
/// installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live count. Call before a measured run.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Measure the peak heap growth of `f` relative to entry, in bytes.
///
/// Only meaningful when [`CountingAllocator`] is installed as the global
/// allocator; returns 0 growth otherwise.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = current_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is *not* installed in unit tests (installing a
    // global allocator in a lib's test build would affect every test). These
    // tests cover the bookkeeping arithmetic through the public hooks.

    #[test]
    fn add_sub_roundtrip() {
        let before = current_bytes();
        CountingAllocator::add(1024);
        assert_eq!(current_bytes(), before + 1024);
        assert!(peak_bytes() >= before + 1024);
        CountingAllocator::sub(1024);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn reset_peak_drops_to_current() {
        CountingAllocator::add(4096);
        CountingAllocator::sub(4096);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn measure_peak_reports_growth() {
        let ((), growth) = measure_peak(|| {
            CountingAllocator::add(10_000);
            CountingAllocator::sub(10_000);
        });
        assert!(growth >= 10_000);
    }
}
