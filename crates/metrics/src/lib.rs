//! Measurement substrate for the `twophase` workspace.
//!
//! Everything the paper's evaluation *measures* lives here, kept strictly
//! separate from the algorithms so that quality numbers are ground truth
//! recomputed from the emitted assignment rather than read out of partitioner
//! internals:
//!
//! * [`bitmatrix`] — the vertex×partition replication bit matrix (the
//!   `O(|V|·k)` structure of Table II) and the [`bitmatrix::ReplicaSet`]
//!   interface the phase-2 kernels are generic over.
//! * [`atomic`] — the **shared** atomic variant of that matrix (word-level
//!   `fetch_or`), which keeps the chunk-parallel runner at the serial
//!   `O(|V|·k)` bound instead of `O(T·|V|·k)`.
//! * [`quality`] — replication factor, balance and load metrics
//!   (paper §II-A), accumulated edge by edge.
//! * [`alloc`] — a counting global allocator: the repo-local proxy for the
//!   paper's "maximum resident set size" plots (Fig. 4, right column).
//! * [`stats`] — mean / standard deviation over repeated runs (the paper
//!   reports 3-run means with error bars).
//! * [`timer`] — re-export of the `tps-obs` phase timer (Fig. 5 run-time
//!   dissection); spans in `tps-obs` are the single timing source.
//! * [`table`] — aligned text tables and CSV output for the bench binaries.

pub mod alloc;
pub mod atomic;
pub mod bitmatrix;
pub mod quality;
pub mod stats;
pub mod table;
pub mod timer;

pub use atomic::{AtomicReplicationMatrix, SharedReplicaView};
pub use bitmatrix::{ReplicaSet, ReplicationMatrix};
pub use quality::{PartitionMetrics, QualityTracker};
