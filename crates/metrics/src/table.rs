//! Aligned text tables and CSV output for the bench binaries.
//!
//! Every experiment binary prints the paper's rows/series twice: once as an
//! aligned human-readable table (for eyeballing against the paper) and once
//! as CSV (for plotting).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with "".
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", h, w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Format seconds compactly like the paper's tables ("24 s", "7.3 m").
pub fn fmt_duration_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0} ms", secs * 1000.0)
    } else if secs < 120.0 {
        format!("{secs:.1} s")
    } else {
        format!("{:.1} m", secs / 60.0)
    }
}

/// Format a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        assert!(s.contains("| name "));
        assert!(s.contains("| a-much-longer-name |"));
        // All lines have equal width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        assert!(csv.lines().nth(1).unwrap().contains("1,,"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_secs(0.5), "500 ms");
        assert_eq!(fmt_duration_secs(24.0), "24.0 s");
        assert_eq!(fmt_duration_secs(438.0), "7.3 m");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(895 << 20), "895.0 MiB");
    }

    #[test]
    fn csv_roundtrip_to_file() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        let path = std::env::temp_dir().join(format!("tps-table-{}.csv", std::process::id()));
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        std::fs::remove_file(&path).ok();
    }
}
