//! The shared-memory replication matrix of the chunk-parallel runner.
//!
//! Phase 2 of 2PS-L keeps one bit per (vertex, partition) pair —
//! `O(|V|·k)` bits, the dominant term of Table II. The chunk-parallel
//! runner used to shard that state per worker thread (`O(T·|V|·k)` bits)
//! and OR-merge the shards at the pre-partition/scoring barrier; this
//! module restores the serial bound for any thread count:
//!
//! * [`AtomicReplicationMatrix`] — **one** shared packed bit matrix whose
//!   words are set with relaxed `fetch_or`. The pre-partitioning subpass
//!   only ever *writes* replication state (targets depend on the merged
//!   clustering and load quotas, never on replica bits), and OR is
//!   commutative, associative and idempotent — so when every worker
//!   `fetch_or`s into the same words, the matrix at the barrier equals the
//!   OR-merge of per-worker shards for **every** interleaving, and no
//!   merge (and no per-worker copy) is needed at all.
//! * [`SharedReplicaView`] — one worker's handle on the shared matrix.
//!   Before [`freeze`](SharedReplicaView::freeze) (the pre-partitioning
//!   subpass) inserts write through to the shared words. After freeze (the
//!   scoring subpass) inserts land in a private **sparse overlay** and
//!   reads see `shared ∪ overlay` — exactly the "merged matrix plus my own
//!   scoring-time replicas" view a sharded worker had, which is what keeps
//!   the output bit-identical to the sharded path (and to `tps-dist`,
//!   whose workers still run owned per-shard matrices). The overlay holds
//!   only words this worker's scoring commits touch, so per-worker state
//!   is proportional to its own new replicas, not to `|V|·k`.
//!
//! Memory ordering: relaxed operations suffice. All workers join at the
//! barrier between the two subpasses (thread join is a happens-before
//! edge), so every pre-partition write is visible to every scoring read,
//! and bits are only ever set — a racy read during the write phase could
//! at worst miss a concurrent set, and no decision reads the matrix during
//! that phase.

use std::sync::atomic::{AtomicU64, Ordering};

use tps_graph::types::{PartitionId, VertexId};

use crate::bitmatrix::{ReplicaSet, ReplicationMatrix};

/// A compact word-index → bits map: open addressing, linear probing,
/// power-of-two capacity, 12 bytes per slot (`u32` key + `u64` bits in
/// parallel arrays). The overlay is the per-worker memory term of the
/// shared-matrix design, so its constant factor matters — a std `HashMap`
/// spends ~3× more per entry once growth slack and SipHash are counted.
///
/// Keys are word indices into the shared matrix and must fit `u32`; the
/// matrix constructor enforces that bound (`|V|·⌈k/64⌉ < 2^32` words ≈
/// 32 GiB of packed bits — beyond in-process scale).
struct WordOverlay {
    /// Word index per slot; `EMPTY` marks a free slot.
    keys: Vec<u32>,
    /// Overlay bits per slot (parallel to `keys`).
    bits: Vec<u64>,
    len: usize,
}

/// Free-slot sentinel. Unreachable as a key: word indices are `< 2^32 − 1`
/// by the matrix-size bound.
const EMPTY: u32 = u32::MAX;

impl WordOverlay {
    fn new() -> Self {
        WordOverlay {
            keys: Vec::new(),
            bits: Vec::new(),
            len: 0,
        }
    }

    /// Multiplicative hash (Fibonacci): word indices are near-sequential
    /// per vertex row, which pure masking would clump.
    #[inline]
    fn slot_of(&self, key: u32) -> usize {
        let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.keys.len() - 1)
    }

    #[inline]
    fn get(&self, key: u32) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let mut slot = self.slot_of(key);
        loop {
            match self.keys[slot] {
                k if k == key => return self.bits[slot],
                EMPTY => return 0,
                _ => slot = (slot + 1) & (self.keys.len() - 1),
            }
        }
    }

    #[inline]
    fn or_insert(&mut self, key: u32, mask: u64) {
        if self.keys.len() < 2 || self.len * 8 >= self.keys.len() * 7 {
            self.grow();
        }
        let mut slot = self.slot_of(key);
        loop {
            match self.keys[slot] {
                k if k == key => {
                    self.bits[slot] |= mask;
                    return;
                }
                EMPTY => {
                    self.keys[slot] = key;
                    self.bits[slot] = mask;
                    self.len += 1;
                    return;
                }
                _ => slot = (slot + 1) & (self.keys.len() - 1),
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(64);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_bits = std::mem::take(&mut self.bits);
        self.bits = vec![0u64; new_cap];
        self.len = 0;
        for (key, bits) in old_keys.into_iter().zip(old_bits) {
            if key != EMPTY {
                self.or_insert(key, bits);
            }
        }
    }
}

/// A packed `O(|V|·k)`-bit replication matrix shared by all phase-2
/// workers, written with relaxed word-level `fetch_or`.
pub struct AtomicReplicationMatrix {
    words_per_vertex: usize,
    bits: Vec<AtomicU64>,
    k: u32,
    num_vertices: u64,
}

impl AtomicReplicationMatrix {
    /// An all-zero shared matrix for `num_vertices` vertices and `k`
    /// partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .expect("replication matrix size overflow");
        assert!(
            total < u32::MAX as usize,
            "shared replication matrix of {total} words exceeds the in-process bound \
             (2^32 − 1 words); use the distributed runtime for matrices this large"
        );
        let mut bits = Vec::with_capacity(total);
        bits.resize_with(total, || AtomicU64::new(0));
        AtomicReplicationMatrix {
            words_per_vertex,
            bits,
            k,
            num_vertices,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    #[inline]
    fn index(&self, v: VertexId, p: PartitionId) -> (usize, u64) {
        debug_assert!(p < self.k, "partition {p} out of range (k = {})", self.k);
        let word = v as usize * self.words_per_vertex + (p as usize >> 6);
        let mask = 1u64 << (p & 63);
        (word, mask)
    }

    /// Mark `v` as replicated on `p` — one relaxed `fetch_or`, callable
    /// from any thread through a shared reference.
    #[inline]
    pub fn set(&self, v: VertexId, p: PartitionId) {
        let (word, mask) = self.index(v, p);
        self.bits[word].fetch_or(mask, Ordering::Relaxed);
    }

    /// Whether `v` is replicated on `p` (relaxed load).
    #[inline]
    pub fn get(&self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.index(v, p);
        self.bits[word].load(Ordering::Relaxed) & mask != 0
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// An owned snapshot with exact cover counts — for inspection and
    /// tests; the hot paths never materialise one.
    pub fn snapshot(&self) -> ReplicationMatrix {
        let words: Vec<u64> = self
            .bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        ReplicationMatrix::from_raw_words(self.num_vertices, self.k, words)
            .expect("set() never writes stray bits")
    }
}

/// One worker's view of the shared matrix: write-through before the
/// barrier, private sparse overlay after it (see the module docs).
pub struct SharedReplicaView<'m> {
    shared: &'m AtomicReplicationMatrix,
    /// Post-freeze writes: word index → additional bits. Sparse — only
    /// words this worker's own scoring commits touch.
    overlay: WordOverlay,
    frozen: bool,
}

impl<'m> SharedReplicaView<'m> {
    /// A thawed view: inserts write through to `shared`.
    pub fn new(shared: &'m AtomicReplicationMatrix) -> Self {
        SharedReplicaView {
            shared,
            overlay: WordOverlay::new(),
            frozen: false,
        }
    }

    /// Stop writing through: subsequent inserts stay in this view's
    /// private overlay. Called at the pre-partition/scoring barrier, after
    /// every worker's write-through pass has joined.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the view is frozen (overlay-writing).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Words held privately by this view's overlay.
    pub fn overlay_words(&self) -> usize {
        self.overlay.len
    }
}

impl ReplicaSet for SharedReplicaView<'_> {
    #[inline]
    fn k(&self) -> u32 {
        self.shared.k()
    }

    #[inline]
    fn num_vertices(&self) -> u64 {
        self.shared.num_vertices()
    }

    #[inline]
    fn contains(&self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.shared.index(v, p);
        if self.shared.bits[word].load(Ordering::Relaxed) & mask != 0 {
            return true;
        }
        self.overlay.get(word as u32) & mask != 0
    }

    #[inline]
    fn insert(&mut self, v: VertexId, p: PartitionId) {
        if self.frozen {
            let (word, mask) = self.shared.index(v, p);
            // A bit the frozen shared matrix already holds needs no
            // private copy — `contains` reads `shared ∪ overlay` either
            // way, and on prepartition-heavy graphs this keeps the
            // overlay near-empty.
            if self.shared.bits[word].load(Ordering::Relaxed) & mask != 0 {
                return;
            }
            self.overlay.or_insert(word as u32, mask);
        } else {
            self.shared.set(v, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_snapshot() {
        let m = AtomicReplicationMatrix::new(5, 130);
        assert!(!m.get(3, 129));
        m.set(3, 129);
        m.set(3, 129); // idempotent
        m.set(0, 0);
        m.set(4, 64);
        assert!(m.get(3, 129) && m.get(0, 0) && m.get(4, 64));
        assert!(!m.get(3, 128));
        let snap = m.snapshot();
        assert_eq!(snap.total_replicas(), 3);
        assert_eq!(snap.cover_count(129), 1);
        assert!(snap.get(4, 64));
    }

    #[test]
    fn concurrent_sets_equal_sharded_or_merge() {
        // The tentpole claim in miniature: T threads writing disjoint and
        // overlapping bits through fetch_or produce exactly the OR of the
        // per-thread shards.
        let shared = AtomicReplicationMatrix::new(64, 96);
        let mut shards: Vec<ReplicationMatrix> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..4u32 {
                let shared = &shared;
                handles.push(scope.spawn(move || {
                    let mut own = ReplicationMatrix::new(64, 96);
                    for i in 0..200u32 {
                        let v = (t * 37 + i * 13) % 64;
                        let p = (t * 11 + i * 7) % 96;
                        shared.set(v, p);
                        own.set(v, p);
                    }
                    own
                }));
            }
            for h in handles {
                shards.push(h.join().unwrap());
            }
        });
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge_from(s);
        }
        let snap = shared.snapshot();
        for v in 0..64u32 {
            for p in 0..96u32 {
                assert_eq!(snap.get(v, p), merged.get(v, p), "({v},{p})");
            }
        }
        assert_eq!(snap.total_replicas(), merged.total_replicas());
    }

    #[test]
    fn view_writes_through_until_frozen_then_overlays() {
        let shared = AtomicReplicationMatrix::new(8, 4);
        let mut view = SharedReplicaView::new(&shared);
        view.insert(1, 2);
        assert!(shared.get(1, 2), "thawed insert writes through");
        assert!(view.contains(1, 2));
        view.freeze();
        view.insert(3, 1);
        assert!(!shared.get(3, 1), "frozen insert stays private");
        assert!(view.contains(3, 1), "…but is visible to this view");
        assert!(view.contains(1, 2), "shared bits stay visible");
        assert_eq!(view.overlay_words(), 1);

        // A second frozen view does not see the first view's overlay —
        // the sharded-path semantics the bit-identity proptests pin.
        let other = SharedReplicaView::new(&shared);
        assert!(!other.contains(3, 1));
        assert!(other.contains(1, 2));
    }

    #[test]
    fn empty_matrix() {
        let m = AtomicReplicationMatrix::new(0, 7);
        assert_eq!(m.snapshot().total_replicas(), 0);
        assert_eq!(m.heap_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_k() {
        AtomicReplicationMatrix::new(10, 0);
    }
}
