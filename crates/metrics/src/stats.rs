//! Small statistics helpers for repeated measurements.
//!
//! The paper repeats each experiment three times and reports mean ± standard
//! deviation. [`Summary`] implements Welford's online algorithm so bench
//! binaries can stream samples in without keeping them.

/// Online mean / variance / extrema accumulator (Welford).
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (`NaN`-free; +∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Format as `mean ± std`.
    pub fn display(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean(), self.std_dev())
    }
}

/// Collect a summary from an iterator of samples.
pub fn summarize(samples: impl IntoIterator<Item = f64>) -> Summary {
    let mut s = Summary::new();
    for x in samples {
        s.add(x);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sequence() {
        let s = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn single_sample() {
        let s = summarize([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn display_format() {
        let s = summarize([1.0, 1.0]);
        assert_eq!(s.display(), "1.000 ± 0.000");
    }
}
