//! Partition quality metrics (paper §II-A).
//!
//! The optimisation objective of edge partitioning is the **replication
//! factor** `RF(p_1..p_k) = (1/|V|) · Σ_i |V(p_i)|`, under the balancing
//! constraint `|p_i| ≤ α · |E| / k`. [`QualityTracker`] accumulates both from
//! the emitted `(edge, partition)` assignments — independently of whatever
//! state the partitioner keeps, so the numbers reported by the benches are
//! ground truth.
//!
//! `|V|` is taken to be the number of vertices actually covered by at least
//! one edge. Our generators compact ids so every vertex is covered; on
//! arbitrary inputs with isolated vertices this matches the convention of the
//! paper's datasets (which have none).

use tps_graph::types::{Edge, PartitionId};

use crate::bitmatrix::ReplicationMatrix;

/// Final quality metrics of one partitioning run.
#[derive(Clone, Debug)]
pub struct PartitionMetrics {
    /// Number of partitions.
    pub k: u32,
    /// Edges assigned.
    pub num_edges: u64,
    /// Vertices covered by at least one partition.
    pub covered_vertices: u64,
    /// Σ_i |V(p_i)|.
    pub total_replicas: u64,
    /// Replication factor (1.0 is the minimum possible on covered vertices).
    pub replication_factor: f64,
    /// Edge count of the largest partition.
    pub max_load: u64,
    /// Edge count of the smallest partition.
    pub min_load: u64,
    /// Observed balance `α = max_load / (|E|/k)`.
    pub alpha: f64,
    /// Per-partition edge counts.
    pub loads: Vec<u64>,
}

impl PartitionMetrics {
    /// Render the per-partition loads as a short summary string.
    pub fn load_summary(&self) -> String {
        format!(
            "max {} / min {} / α = {:.3}",
            self.max_load, self.min_load, self.alpha
        )
    }
}

/// Accumulates metrics edge by edge.
///
/// Doubles as the reference implementation of the `v2p` bit matrix used by
/// the stateful partitioners (they typically share the same matrix).
#[derive(Clone, Debug)]
pub struct QualityTracker {
    matrix: ReplicationMatrix,
    loads: Vec<u64>,
    num_edges: u64,
}

impl QualityTracker {
    /// Create a tracker for `num_vertices` vertices and `k` partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        QualityTracker {
            matrix: ReplicationMatrix::new(num_vertices, k),
            loads: vec![0; k as usize],
            num_edges: 0,
        }
    }

    /// Record the assignment of `edge` to partition `p`.
    #[inline]
    pub fn record(&mut self, edge: Edge, p: PartitionId) {
        self.matrix.set(edge.src, p);
        self.matrix.set(edge.dst, p);
        self.loads[p as usize] += 1;
        self.num_edges += 1;
    }

    /// Edges recorded so far.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Current load of partition `p`.
    #[inline]
    pub fn load(&self, p: PartitionId) -> u64 {
        self.loads[p as usize]
    }

    /// Borrow the underlying replication matrix.
    pub fn matrix(&self) -> &ReplicationMatrix {
        &self.matrix
    }

    /// Finalise into [`PartitionMetrics`].
    pub fn finish(&self) -> PartitionMetrics {
        let k = self.matrix.k();
        let covered = (0..self.matrix.num_vertices())
            .filter(|&v| self.matrix.replica_count(v as u32) > 0)
            .count() as u64;
        let total_replicas = self.matrix.total_replicas();
        let rf = if covered == 0 {
            0.0
        } else {
            total_replicas as f64 / covered as f64
        };
        let max_load = self.loads.iter().copied().max().unwrap_or(0);
        let min_load = self.loads.iter().copied().min().unwrap_or(0);
        let expected = self.num_edges as f64 / k as f64;
        let alpha = if expected > 0.0 {
            max_load as f64 / expected
        } else {
            0.0
        };
        PartitionMetrics {
            k,
            num_edges: self.num_edges,
            covered_vertices: covered,
            total_replicas,
            replication_factor: rf,
            max_load,
            min_load,
            alpha,
            loads: self.loads.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_partitioning_has_rf_one() {
        // Two disjoint edges on two partitions: no vertex is replicated.
        let mut t = QualityTracker::new(4, 2);
        t.record(Edge::new(0, 1), 0);
        t.record(Edge::new(2, 3), 1);
        let m = t.finish();
        assert_eq!(m.covered_vertices, 4);
        assert_eq!(m.total_replicas, 4);
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
        assert_eq!(m.max_load, 1);
        assert_eq!(m.min_load, 1);
        assert!((m.alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replicated_vertex_raises_rf() {
        // A path 0-1-2 split across two partitions replicates vertex 1.
        let mut t = QualityTracker::new(3, 2);
        t.record(Edge::new(0, 1), 0);
        t.record(Edge::new(1, 2), 1);
        let m = t.finish();
        assert_eq!(m.total_replicas, 4); // {0,1} on p0, {1,2} on p1
        assert!((m.replication_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_reflects_imbalance() {
        let mut t = QualityTracker::new(6, 2);
        t.record(Edge::new(0, 1), 0);
        t.record(Edge::new(2, 3), 0);
        t.record(Edge::new(4, 5), 0);
        t.record(Edge::new(0, 2), 1);
        let m = t.finish();
        // 4 edges, k=2 → expected 2; max load 3 → α = 1.5.
        assert!((m.alpha - 1.5).abs() < 1e-12);
        assert_eq!(m.min_load, 1);
    }

    #[test]
    fn isolated_vertices_excluded_from_denominator() {
        let mut t = QualityTracker::new(10, 2);
        t.record(Edge::new(0, 1), 0);
        let m = t.finish();
        assert_eq!(m.covered_vertices, 2);
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_covers_one_vertex() {
        let mut t = QualityTracker::new(2, 2);
        t.record(Edge::new(0, 0), 1);
        let m = t.finish();
        assert_eq!(m.covered_vertices, 1);
        assert_eq!(m.total_replicas, 1);
    }

    #[test]
    fn empty_tracker_yields_zeroes() {
        let t = QualityTracker::new(5, 3);
        let m = t.finish();
        assert_eq!(m.num_edges, 0);
        assert_eq!(m.replication_factor, 0.0);
        assert_eq!(m.alpha, 0.0);
    }

    #[test]
    fn rf_upper_bound_is_k() {
        // Star with centre 0 replicated on both partitions.
        let mut t = QualityTracker::new(5, 2);
        t.record(Edge::new(0, 1), 0);
        t.record(Edge::new(0, 2), 1);
        t.record(Edge::new(0, 3), 0);
        t.record(Edge::new(0, 4), 1);
        let m = t.finish();
        assert!(m.replication_factor <= m.k as f64);
        assert!(m.replication_factor > 1.0);
    }
}
