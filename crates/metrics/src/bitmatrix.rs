//! The vertex × partition replication bit matrix (`v2p` in the paper's
//! Algorithm 2).
//!
//! One bit per (vertex, partition) pair, packed into 64-bit words:
//! `⌈k/64⌉` words per vertex, `O(|V|·k)` bits total — the dominant term of
//! 2PS-L's space complexity (Table II). The matrix also keeps the per-
//! partition cover counts `|V(p)|` incrementally, so the replication factor
//! is available in `O(k)` at any time.

use tps_graph::types::{PartitionId, VertexId};

/// Packed replication matrix with incremental cover counts.
#[derive(Clone, Debug)]
pub struct ReplicationMatrix {
    words_per_vertex: usize,
    bits: Vec<u64>,
    /// `|V(p)|` per partition — number of vertices with the bit set.
    cover_counts: Vec<u64>,
    k: u32,
    num_vertices: u64,
}

impl ReplicationMatrix {
    /// Create an all-zero matrix for `num_vertices` vertices and `k`
    /// partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .expect("replication matrix size overflow");
        ReplicationMatrix {
            words_per_vertex,
            bits: vec![0u64; total],
            cover_counts: vec![0u64; k as usize],
            k,
            num_vertices,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    #[inline]
    fn index(&self, v: VertexId, p: PartitionId) -> (usize, u64) {
        debug_assert!(p < self.k, "partition {p} out of range (k = {})", self.k);
        let word = v as usize * self.words_per_vertex + (p as usize >> 6);
        let mask = 1u64 << (p & 63);
        (word, mask)
    }

    /// Whether `v` is replicated on `p`.
    #[inline]
    pub fn get(&self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.index(v, p);
        self.bits[word] & mask != 0
    }

    /// Mark `v` as replicated on `p`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn set(&mut self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.index(v, p);
        let newly = self.bits[word] & mask == 0;
        if newly {
            self.bits[word] |= mask;
            self.cover_counts[p as usize] += 1;
        }
        newly
    }

    /// Number of partitions `v` is replicated on.
    #[inline]
    pub fn replica_count(&self, v: VertexId) -> u32 {
        let base = v as usize * self.words_per_vertex;
        self.bits[base..base + self.words_per_vertex]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// `|V(p)|` — vertices covered by partition `p`.
    #[inline]
    pub fn cover_count(&self, p: PartitionId) -> u64 {
        self.cover_counts[p as usize]
    }

    /// `Σ_p |V(p)|` — the replication-factor numerator.
    pub fn total_replicas(&self) -> u64 {
        self.cover_counts.iter().sum()
    }

    /// Iterate over the partitions `v` is replicated on.
    pub fn partitions_of(&self, v: VertexId) -> impl Iterator<Item = PartitionId> + '_ {
        let base = v as usize * self.words_per_vertex;
        let words = &self.bits[base..base + self.words_per_vertex];
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            let mut out = Vec::with_capacity(w.count_ones() as usize);
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi as u32) * 64 + b);
                w &= w - 1;
            }
            out
        })
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8 + self.cover_counts.len() * 8
    }

    /// Serialise into `out`: `|V|` (u64), `k` (u32), then the packed bit
    /// words little-endian. Cover counts are *not* shipped — they are
    /// derivable and recomputing them on decode keeps the wire format
    /// impossible to de-synchronise (the distributed runtime OR-merges
    /// shards across processes; see `tps-dist`).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_vertices.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for &w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Inverse of [`ReplicationMatrix::encode_into`]. Consumes exactly the
    /// encoded bytes from the front of `bytes`, returning the rest; cover
    /// counts are recounted from the bits. Rejects truncated input, `k = 0`
    /// and stray bits beyond partition `k − 1`.
    pub fn decode_from(bytes: &[u8]) -> Result<(ReplicationMatrix, &[u8]), String> {
        if bytes.len() < 12 {
            return Err("replication matrix truncated (missing header)".into());
        }
        let num_vertices = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let k = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if k == 0 {
            return Err("replication matrix with k = 0".into());
        }
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .ok_or("replication matrix size overflow")?;
        let rest = &bytes[12..];
        if rest.len() < total * 8 {
            return Err(format!(
                "replication matrix truncated: need {} words, have {} bytes",
                total,
                rest.len()
            ));
        }
        let mut bits = Vec::with_capacity(total);
        for rec in rest[..total * 8].chunks_exact(8) {
            bits.push(u64::from_le_bytes(rec.try_into().unwrap()));
        }
        // Bits at positions ≥ k within a vertex's last word would corrupt
        // the cover counts silently; reject them. `words_per_vertex` is
        // `⌈k/64⌉`, so the tail is always shorter than one word.
        let tail_bits = (words_per_vertex * 64 - k as usize) as u32;
        if tail_bits > 0 {
            let stray_mask = !0u64 << (64 - tail_bits);
            for v in 0..num_vertices as usize {
                if bits[(v + 1) * words_per_vertex - 1] & stray_mask != 0 {
                    return Err("replication matrix has bits beyond partition k-1".into());
                }
            }
        }
        let mut cover_counts = vec![0u64; k as usize];
        for (i, &w) in bits.iter().enumerate() {
            let mut w = w;
            let base = ((i % words_per_vertex) as u32) * 64;
            while w != 0 {
                let b = w.trailing_zeros();
                cover_counts[(base + b) as usize] += 1;
                w &= w - 1;
            }
        }
        Ok((
            ReplicationMatrix {
                words_per_vertex,
                bits,
                cover_counts,
                k,
                num_vertices,
            },
            &rest[total * 8..],
        ))
    }

    /// Bitwise-OR `other` into `self`, keeping the cover counts exact.
    ///
    /// This is the sharded-state merge of the chunk-parallel partitioner:
    /// each worker tracks the replicas its own assignments create, and the
    /// union of the shards is the global replica set. OR is commutative and
    /// associative, so the merged matrix is independent of worker order.
    /// Cost is `O(|V|·k/64)` words plus one count per *newly set* bit.
    ///
    /// # Panics
    /// Panics if the matrices' dimensions differ.
    pub fn merge_from(&mut self, other: &ReplicationMatrix) {
        assert_eq!(self.k, other.k, "k mismatch in replication-matrix merge");
        assert_eq!(
            self.num_vertices, other.num_vertices,
            "|V| mismatch in replication-matrix merge"
        );
        for (i, (word, &theirs)) in self.bits.iter_mut().zip(&other.bits).enumerate() {
            let mut new = theirs & !*word;
            *word |= theirs;
            while new != 0 {
                let b = new.trailing_zeros();
                let p = ((i % self.words_per_vertex) as u32) * 64 + b;
                self.cover_counts[p as usize] += 1;
                new &= new - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = ReplicationMatrix::new(10, 5);
        assert!(!m.get(3, 2));
        assert!(m.set(3, 2));
        assert!(m.get(3, 2));
        assert!(!m.set(3, 2), "second set reports not-new");
        assert_eq!(m.cover_count(2), 1);
    }

    #[test]
    fn works_across_word_boundaries() {
        let mut m = ReplicationMatrix::new(4, 130);
        for p in [0u32, 63, 64, 127, 128, 129] {
            assert!(m.set(1, p));
            assert!(m.get(1, p));
        }
        assert_eq!(m.replica_count(1), 6);
        assert_eq!(m.replica_count(0), 0);
        let ps: Vec<u32> = m.partitions_of(1).collect();
        assert_eq!(ps, vec![0, 63, 64, 127, 128, 129]);
    }

    #[test]
    fn cover_counts_accumulate_per_partition() {
        let mut m = ReplicationMatrix::new(5, 3);
        m.set(0, 0);
        m.set(1, 0);
        m.set(1, 1);
        m.set(4, 2);
        assert_eq!(m.cover_count(0), 2);
        assert_eq!(m.cover_count(1), 1);
        assert_eq!(m.cover_count(2), 1);
        assert_eq!(m.total_replicas(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_k() {
        ReplicationMatrix::new(10, 0);
    }

    #[test]
    fn heap_bytes_scale_with_v_and_k() {
        let small = ReplicationMatrix::new(100, 4);
        let wide = ReplicationMatrix::new(100, 256);
        let tall = ReplicationMatrix::new(1000, 4);
        assert!(wide.heap_bytes() > small.heap_bytes());
        assert!(tall.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn empty_matrix() {
        let m = ReplicationMatrix::new(0, 4);
        assert_eq!(m.total_replicas(), 0);
    }

    #[test]
    fn merge_unions_bits_and_keeps_counts_exact() {
        let mut a = ReplicationMatrix::new(6, 130);
        let mut b = ReplicationMatrix::new(6, 130);
        a.set(0, 0);
        a.set(1, 64);
        a.set(5, 129);
        b.set(0, 0); // overlap — must not double-count
        b.set(2, 63);
        b.set(5, 128);
        a.merge_from(&b);
        for (v, p) in [(0u32, 0u32), (1, 64), (5, 129), (2, 63), (5, 128)] {
            assert!(a.get(v, p), "({v},{p}) lost in merge");
        }
        assert_eq!(a.total_replicas(), 5);
        assert_eq!(a.cover_count(0), 1);
        // Counts agree with a from-scratch recount.
        let mut recount = vec![0u64; 130];
        for v in 0..6u32 {
            for p in a.partitions_of(v) {
                recount[p as usize] += 1;
            }
        }
        for p in 0..130u32 {
            assert_eq!(a.cover_count(p), recount[p as usize], "partition {p}");
        }
    }

    #[test]
    fn merge_with_self_is_identity() {
        let mut a = ReplicationMatrix::new(4, 8);
        a.set(1, 3);
        a.set(2, 7);
        let before = a.total_replicas();
        let copy = a.clone();
        a.merge_from(&copy);
        assert_eq!(a.total_replicas(), before);
    }

    #[test]
    fn wire_roundtrip_recounts_covers() {
        let mut m = ReplicationMatrix::new(5, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(4, 129);
        m.set(4, 63);
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        let (d, rest) = ReplicationMatrix::decode_from(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(d.k(), 130);
        assert_eq!(d.num_vertices(), 5);
        for (v, p) in [(0u32, 0u32), (1, 64), (4, 129), (4, 63)] {
            assert!(d.get(v, p), "({v},{p})");
        }
        assert_eq!(d.total_replicas(), 4);
        assert_eq!(d.cover_count(64), 1);
        // Trailing bytes survive.
        bytes.extend_from_slice(&[1, 2]);
        let (_, rest) = ReplicationMatrix::decode_from(&bytes).unwrap();
        assert_eq!(rest, &[1, 2]);
    }

    #[test]
    fn wire_rejects_truncation_and_stray_bits() {
        let mut m = ReplicationMatrix::new(3, 10);
        m.set(2, 9);
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        assert!(ReplicationMatrix::decode_from(&bytes[..bytes.len() - 1]).is_err());
        assert!(ReplicationMatrix::decode_from(&bytes[..4]).is_err());
        // Set a bit for partition 13 of a k = 10 matrix: invalid.
        let mut corrupt = bytes.clone();
        let mut word0 = u64::from_le_bytes(corrupt[12..20].try_into().unwrap());
        word0 |= 1 << 13;
        corrupt[12..20].copy_from_slice(&word0.to_le_bytes());
        assert!(ReplicationMatrix::decode_from(&corrupt).is_err());
        // k = 0 is rejected.
        let mut zero_k = bytes.clone();
        zero_k[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(ReplicationMatrix::decode_from(&zero_k).is_err());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_dimension_mismatch() {
        let mut a = ReplicationMatrix::new(4, 8);
        let b = ReplicationMatrix::new(4, 9);
        a.merge_from(&b);
    }
}
