//! The vertex × partition replication bit matrix (`v2p` in the paper's
//! Algorithm 2).
//!
//! One bit per (vertex, partition) pair, packed into 64-bit words:
//! `⌈k/64⌉` words per vertex, `O(|V|·k)` bits total — the dominant term of
//! 2PS-L's space complexity (Table II). The matrix also keeps the per-
//! partition cover counts `|V(p)|` incrementally, so the replication factor
//! is available in `O(k)` at any time.

use tps_graph::types::{PartitionId, VertexId};

/// The membership interface phase 2's edge kernel needs from its
/// replication state: "is vertex `v` replicated on partition `p`?" and
/// "record that it now is".
///
/// Implemented by the owned [`ReplicationMatrix`] (the serial partitioner
/// and the distributed worker) and by
/// [`SharedReplicaView`](crate::atomic::SharedReplicaView) (the chunk-
/// parallel runner's view of one shared
/// [`AtomicReplicationMatrix`](crate::atomic::AtomicReplicationMatrix)),
/// so the per-edge decision code is written once and the replication
/// state's memory layout — owned, shared, or shared-plus-overlay — is the
/// caller's choice.
pub trait ReplicaSet {
    /// Number of partitions.
    fn k(&self) -> u32;
    /// Number of vertices.
    fn num_vertices(&self) -> u64;
    /// Whether `v` is replicated on `p`.
    fn contains(&self, v: VertexId, p: PartitionId) -> bool;
    /// Mark `v` as replicated on `p` (idempotent).
    fn insert(&mut self, v: VertexId, p: PartitionId);
}

/// Packed replication matrix with incremental cover counts.
#[derive(Clone, Debug)]
pub struct ReplicationMatrix {
    words_per_vertex: usize,
    bits: Vec<u64>,
    /// `|V(p)|` per partition — number of vertices with the bit set.
    cover_counts: Vec<u64>,
    k: u32,
    num_vertices: u64,
}

impl ReplicationMatrix {
    /// Create an all-zero matrix for `num_vertices` vertices and `k`
    /// partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        assert!(k > 0, "k must be positive");
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .expect("replication matrix size overflow");
        ReplicationMatrix {
            words_per_vertex,
            bits: vec![0u64; total],
            cover_counts: vec![0u64; k as usize],
            k,
            num_vertices,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Packed words per vertex row (`⌈k/64⌉`).
    #[inline]
    pub fn words_per_vertex(&self) -> usize {
        self.words_per_vertex
    }

    /// Build a matrix from raw packed words (cover counts are recounted).
    /// Rejects a word count that does not match `num_vertices × ⌈k/64⌉`,
    /// `k = 0`, and stray bits beyond partition `k − 1` — the validation
    /// every word-level ingress (wire decode, range install) shares.
    pub fn from_raw_words(
        num_vertices: u64,
        k: u32,
        bits: Vec<u64>,
    ) -> Result<ReplicationMatrix, String> {
        if k == 0 {
            return Err("replication matrix with k = 0".into());
        }
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .ok_or("replication matrix size overflow")?;
        if bits.len() != total {
            return Err(format!(
                "replication matrix has {} words, expected {total}",
                bits.len()
            ));
        }
        validate_packed_rows(&bits, k)?;
        let mut cover_counts = vec![0u64; k as usize];
        for (i, &w) in bits.iter().enumerate() {
            let mut w = w;
            let base = ((i % words_per_vertex) as u32) * 64;
            while w != 0 {
                let b = w.trailing_zeros();
                cover_counts[(base + b) as usize] += 1;
                w &= w - 1;
            }
        }
        Ok(ReplicationMatrix {
            words_per_vertex,
            bits,
            cover_counts,
            k,
            num_vertices,
        })
    }

    /// The packed words of the vertex range `[v0, v1)` — what one
    /// vertex-range chunk of the distributed replication barrier carries.
    pub fn range_words(&self, v0: u64, v1: u64) -> &[u64] {
        assert!(
            v0 <= v1 && v1 <= self.num_vertices,
            "vertex range [{v0}, {v1}) out of bounds for |V| = {}",
            self.num_vertices
        );
        &self.bits[v0 as usize * self.words_per_vertex..v1 as usize * self.words_per_vertex]
    }

    /// Replace the packed words of the vertex range starting at `v0` with
    /// `words`, keeping the cover counts exact (per-word bit deltas). The
    /// inverse of [`ReplicationMatrix::range_words`] — how a distributed
    /// worker installs one merged vertex-range chunk. Rejects misaligned
    /// or out-of-bounds ranges and stray bits beyond partition `k − 1`.
    pub fn install_range_words(&mut self, v0: u64, words: &[u64]) -> Result<(), String> {
        let wpv = self.words_per_vertex;
        let start = (v0 as usize)
            .checked_mul(wpv)
            .filter(|s| s + words.len() <= self.bits.len())
            .ok_or_else(|| {
                format!(
                    "chunk at vertex {v0} ({} words) exceeds |V| = {}",
                    words.len(),
                    self.num_vertices
                )
            })?;
        validate_packed_rows(words, self.k)?;
        for (i, (dst, &src)) in self.bits[start..start + words.len()]
            .iter_mut()
            .zip(words)
            .enumerate()
        {
            if *dst == src {
                continue;
            }
            let base = (((start + i) % wpv) as u32) * 64;
            let mut added = src & !*dst;
            while added != 0 {
                let b = added.trailing_zeros();
                self.cover_counts[(base + b) as usize] += 1;
                added &= added - 1;
            }
            let mut removed = *dst & !src;
            while removed != 0 {
                let b = removed.trailing_zeros();
                self.cover_counts[(base + b) as usize] -= 1;
                removed &= removed - 1;
            }
            *dst = src;
        }
        Ok(())
    }

    #[inline]
    fn index(&self, v: VertexId, p: PartitionId) -> (usize, u64) {
        debug_assert!(p < self.k, "partition {p} out of range (k = {})", self.k);
        let word = v as usize * self.words_per_vertex + (p as usize >> 6);
        let mask = 1u64 << (p & 63);
        (word, mask)
    }

    /// Whether `v` is replicated on `p`.
    #[inline]
    pub fn get(&self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.index(v, p);
        self.bits[word] & mask != 0
    }

    /// Mark `v` as replicated on `p`. Returns `true` if the bit was newly set.
    #[inline]
    pub fn set(&mut self, v: VertexId, p: PartitionId) -> bool {
        let (word, mask) = self.index(v, p);
        let newly = self.bits[word] & mask == 0;
        if newly {
            self.bits[word] |= mask;
            self.cover_counts[p as usize] += 1;
        }
        newly
    }

    /// Number of partitions `v` is replicated on.
    #[inline]
    pub fn replica_count(&self, v: VertexId) -> u32 {
        let base = v as usize * self.words_per_vertex;
        self.bits[base..base + self.words_per_vertex]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// `|V(p)|` — vertices covered by partition `p`.
    #[inline]
    pub fn cover_count(&self, p: PartitionId) -> u64 {
        self.cover_counts[p as usize]
    }

    /// `Σ_p |V(p)|` — the replication-factor numerator.
    pub fn total_replicas(&self) -> u64 {
        self.cover_counts.iter().sum()
    }

    /// Iterate over the partitions `v` is replicated on.
    pub fn partitions_of(&self, v: VertexId) -> impl Iterator<Item = PartitionId> + '_ {
        let base = v as usize * self.words_per_vertex;
        let words = &self.bits[base..base + self.words_per_vertex];
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            let mut out = Vec::with_capacity(w.count_ones() as usize);
            while w != 0 {
                let b = w.trailing_zeros();
                out.push((wi as u32) * 64 + b);
                w &= w - 1;
            }
            out
        })
    }

    /// Approximate heap footprint in bytes (for the memory experiments).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8 + self.cover_counts.len() * 8
    }

    /// Serialise into `out`: `|V|` (u64), `k` (u32), then the packed bit
    /// words little-endian. Cover counts are *not* shipped — they are
    /// derivable and recomputing them on decode keeps the wire format
    /// impossible to de-synchronise (the distributed runtime OR-merges
    /// shards across processes; see `tps-dist`).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_vertices.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for &w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Inverse of [`ReplicationMatrix::encode_into`]. Consumes exactly the
    /// encoded bytes from the front of `bytes`, returning the rest; cover
    /// counts are recounted from the bits. Rejects truncated input, `k = 0`
    /// and stray bits beyond partition `k − 1`.
    pub fn decode_from(bytes: &[u8]) -> Result<(ReplicationMatrix, &[u8]), String> {
        if bytes.len() < 12 {
            return Err("replication matrix truncated (missing header)".into());
        }
        let num_vertices = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let k = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if k == 0 {
            return Err("replication matrix with k = 0".into());
        }
        let words_per_vertex = (k as usize).div_ceil(64);
        let total = words_per_vertex
            .checked_mul(num_vertices as usize)
            .ok_or("replication matrix size overflow")?;
        let rest = &bytes[12..];
        if rest.len() < total * 8 {
            return Err(format!(
                "replication matrix truncated: need {} words, have {} bytes",
                total,
                rest.len()
            ));
        }
        let mut bits = Vec::with_capacity(total);
        for rec in rest[..total * 8].chunks_exact(8) {
            bits.push(u64::from_le_bytes(rec.try_into().unwrap()));
        }
        let matrix = ReplicationMatrix::from_raw_words(num_vertices, k, bits)?;
        Ok((matrix, &rest[total * 8..]))
    }

    /// Bitwise-OR `other` into `self`, keeping the cover counts exact.
    ///
    /// This is the sharded-state merge of the chunk-parallel partitioner:
    /// each worker tracks the replicas its own assignments create, and the
    /// union of the shards is the global replica set. OR is commutative and
    /// associative, so the merged matrix is independent of worker order.
    /// Cost is `O(|V|·k/64)` words plus one count per *newly set* bit.
    ///
    /// # Panics
    /// Panics if the matrices' dimensions differ.
    pub fn merge_from(&mut self, other: &ReplicationMatrix) {
        assert_eq!(self.k, other.k, "k mismatch in replication-matrix merge");
        assert_eq!(
            self.num_vertices, other.num_vertices,
            "|V| mismatch in replication-matrix merge"
        );
        for (i, (word, &theirs)) in self.bits.iter_mut().zip(&other.bits).enumerate() {
            let mut new = theirs & !*word;
            *word |= theirs;
            while new != 0 {
                let b = new.trailing_zeros();
                let p = ((i % self.words_per_vertex) as u32) * 64 + b;
                self.cover_counts[p as usize] += 1;
                new &= new - 1;
            }
        }
    }
}

impl ReplicaSet for ReplicationMatrix {
    #[inline]
    fn k(&self) -> u32 {
        ReplicationMatrix::k(self)
    }
    #[inline]
    fn num_vertices(&self) -> u64 {
        ReplicationMatrix::num_vertices(self)
    }
    #[inline]
    fn contains(&self, v: VertexId, p: PartitionId) -> bool {
        self.get(v, p)
    }
    #[inline]
    fn insert(&mut self, v: VertexId, p: PartitionId) {
        self.set(v, p);
    }
}

/// Mask of the unused high bits in a vertex's last packed word, if any
/// (`None` when `k` is a multiple of 64). Bits at positions ≥ k would
/// corrupt the cover counts silently; every word-level ingress — wire
/// decode, range install, the distributed coordinator's chunk merge —
/// rejects rows where `last_word & mask != 0`.
#[inline]
pub fn stray_bit_mask(k: u32) -> Option<u64> {
    let tail_bits = ((k as usize).div_ceil(64) * 64 - k as usize) as u32;
    (tail_bits > 0).then(|| !0u64 << (64 - tail_bits))
}

/// Validate a packed word sequence as whole `⌈k/64⌉`-word vertex rows
/// with no stray bits beyond partition `k − 1` — the one rule every
/// word-level ingress shares (wire decode, range install, the distributed
/// coordinator's chunk merge), kept here so the ingresses cannot diverge.
pub fn validate_packed_rows(words: &[u64], k: u32) -> Result<(), String> {
    let wpv = (k as usize).div_ceil(64);
    if !words.len().is_multiple_of(wpv) {
        return Err(format!(
            "chunk of {} words is not a whole number of {wpv}-word vertex rows",
            words.len()
        ));
    }
    if let Some(mask) = stray_bit_mask(k) {
        for row in words.chunks_exact(wpv) {
            if row[wpv - 1] & mask != 0 {
                return Err("packed rows have bits beyond partition k-1".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = ReplicationMatrix::new(10, 5);
        assert!(!m.get(3, 2));
        assert!(m.set(3, 2));
        assert!(m.get(3, 2));
        assert!(!m.set(3, 2), "second set reports not-new");
        assert_eq!(m.cover_count(2), 1);
    }

    #[test]
    fn works_across_word_boundaries() {
        let mut m = ReplicationMatrix::new(4, 130);
        for p in [0u32, 63, 64, 127, 128, 129] {
            assert!(m.set(1, p));
            assert!(m.get(1, p));
        }
        assert_eq!(m.replica_count(1), 6);
        assert_eq!(m.replica_count(0), 0);
        let ps: Vec<u32> = m.partitions_of(1).collect();
        assert_eq!(ps, vec![0, 63, 64, 127, 128, 129]);
    }

    #[test]
    fn cover_counts_accumulate_per_partition() {
        let mut m = ReplicationMatrix::new(5, 3);
        m.set(0, 0);
        m.set(1, 0);
        m.set(1, 1);
        m.set(4, 2);
        assert_eq!(m.cover_count(0), 2);
        assert_eq!(m.cover_count(1), 1);
        assert_eq!(m.cover_count(2), 1);
        assert_eq!(m.total_replicas(), 4);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_k() {
        ReplicationMatrix::new(10, 0);
    }

    #[test]
    fn heap_bytes_scale_with_v_and_k() {
        let small = ReplicationMatrix::new(100, 4);
        let wide = ReplicationMatrix::new(100, 256);
        let tall = ReplicationMatrix::new(1000, 4);
        assert!(wide.heap_bytes() > small.heap_bytes());
        assert!(tall.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn empty_matrix() {
        let m = ReplicationMatrix::new(0, 4);
        assert_eq!(m.total_replicas(), 0);
    }

    #[test]
    fn merge_unions_bits_and_keeps_counts_exact() {
        let mut a = ReplicationMatrix::new(6, 130);
        let mut b = ReplicationMatrix::new(6, 130);
        a.set(0, 0);
        a.set(1, 64);
        a.set(5, 129);
        b.set(0, 0); // overlap — must not double-count
        b.set(2, 63);
        b.set(5, 128);
        a.merge_from(&b);
        for (v, p) in [(0u32, 0u32), (1, 64), (5, 129), (2, 63), (5, 128)] {
            assert!(a.get(v, p), "({v},{p}) lost in merge");
        }
        assert_eq!(a.total_replicas(), 5);
        assert_eq!(a.cover_count(0), 1);
        // Counts agree with a from-scratch recount.
        let mut recount = vec![0u64; 130];
        for v in 0..6u32 {
            for p in a.partitions_of(v) {
                recount[p as usize] += 1;
            }
        }
        for p in 0..130u32 {
            assert_eq!(a.cover_count(p), recount[p as usize], "partition {p}");
        }
    }

    #[test]
    fn merge_with_self_is_identity() {
        let mut a = ReplicationMatrix::new(4, 8);
        a.set(1, 3);
        a.set(2, 7);
        let before = a.total_replicas();
        let copy = a.clone();
        a.merge_from(&copy);
        assert_eq!(a.total_replicas(), before);
    }

    #[test]
    fn wire_roundtrip_recounts_covers() {
        let mut m = ReplicationMatrix::new(5, 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(4, 129);
        m.set(4, 63);
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        let (d, rest) = ReplicationMatrix::decode_from(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(d.k(), 130);
        assert_eq!(d.num_vertices(), 5);
        for (v, p) in [(0u32, 0u32), (1, 64), (4, 129), (4, 63)] {
            assert!(d.get(v, p), "({v},{p})");
        }
        assert_eq!(d.total_replicas(), 4);
        assert_eq!(d.cover_count(64), 1);
        // Trailing bytes survive.
        bytes.extend_from_slice(&[1, 2]);
        let (_, rest) = ReplicationMatrix::decode_from(&bytes).unwrap();
        assert_eq!(rest, &[1, 2]);
    }

    #[test]
    fn wire_rejects_truncation_and_stray_bits() {
        let mut m = ReplicationMatrix::new(3, 10);
        m.set(2, 9);
        let mut bytes = Vec::new();
        m.encode_into(&mut bytes);
        assert!(ReplicationMatrix::decode_from(&bytes[..bytes.len() - 1]).is_err());
        assert!(ReplicationMatrix::decode_from(&bytes[..4]).is_err());
        // Set a bit for partition 13 of a k = 10 matrix: invalid.
        let mut corrupt = bytes.clone();
        let mut word0 = u64::from_le_bytes(corrupt[12..20].try_into().unwrap());
        word0 |= 1 << 13;
        corrupt[12..20].copy_from_slice(&word0.to_le_bytes());
        assert!(ReplicationMatrix::decode_from(&corrupt).is_err());
        // k = 0 is rejected.
        let mut zero_k = bytes.clone();
        zero_k[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(ReplicationMatrix::decode_from(&zero_k).is_err());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_rejects_dimension_mismatch() {
        let mut a = ReplicationMatrix::new(4, 8);
        let b = ReplicationMatrix::new(4, 9);
        a.merge_from(&b);
    }

    #[test]
    fn range_words_roundtrip_through_install() {
        let mut src = ReplicationMatrix::new(10, 130);
        src.set(0, 0);
        src.set(3, 64);
        src.set(4, 129);
        src.set(9, 63);
        let mut dst = ReplicationMatrix::new(10, 130);
        dst.set(4, 1); // overwritten by the install of [3, 7)
        dst.set(9, 2); // outside the range: survives
        dst.install_range_words(3, src.range_words(3, 7)).unwrap();
        assert!(dst.get(3, 64));
        assert!(dst.get(4, 129));
        assert!(!dst.get(4, 1), "install replaces, not ORs");
        assert!(dst.get(9, 2));
        assert!(!dst.get(0, 0), "outside the range: untouched");
        // Cover counts stay exact through the replacement.
        let mut recount = vec![0u64; 130];
        for v in 0..10u32 {
            for p in dst.partitions_of(v) {
                recount[p as usize] += 1;
            }
        }
        for p in 0..130u32 {
            assert_eq!(dst.cover_count(p), recount[p as usize], "partition {p}");
        }
        assert_eq!(dst.total_replicas(), 3);
    }

    #[test]
    fn install_range_rejects_bad_shapes_and_stray_bits() {
        let mut m = ReplicationMatrix::new(4, 10);
        assert!(m.install_range_words(0, &[0, 0, 0]).is_ok());
        assert!(m.install_range_words(3, &[0, 0]).is_err(), "out of bounds");
        let wide = ReplicationMatrix::new(4, 130);
        let mut m2 = ReplicationMatrix::new(4, 130);
        assert!(
            m2.install_range_words(0, &wide.range_words(0, 1)[..1])
                .is_err(),
            "not a whole vertex row"
        );
        assert!(
            m.install_range_words(1, &[1u64 << 13]).is_err(),
            "bit beyond k-1"
        );
    }

    #[test]
    fn from_raw_words_validates_and_recounts() {
        let mut src = ReplicationMatrix::new(3, 70);
        src.set(0, 0);
        src.set(2, 65);
        let words = src.range_words(0, 3).to_vec();
        let back = ReplicationMatrix::from_raw_words(3, 70, words.clone()).unwrap();
        assert!(back.get(0, 0) && back.get(2, 65));
        assert_eq!(back.total_replicas(), 2);
        assert!(ReplicationMatrix::from_raw_words(3, 0, vec![]).is_err());
        assert!(ReplicationMatrix::from_raw_words(3, 70, words[..4].to_vec()).is_err());
        let mut stray = words;
        stray[1] |= 1 << 70u32.rem_euclid(64); // bit for partition 70 of k=70
        assert!(ReplicationMatrix::from_raw_words(3, 70, stray).is_err());
    }

    #[test]
    fn replica_set_trait_is_usable_generically() {
        fn touch<R: ReplicaSet>(r: &mut R) {
            r.insert(1, 2);
            assert!(r.contains(1, 2));
            assert!(!r.contains(0, 2));
            assert_eq!(r.k(), 4);
            assert_eq!(r.num_vertices(), 3);
        }
        let mut m = ReplicationMatrix::new(3, 4);
        touch(&mut m);
    }
}
