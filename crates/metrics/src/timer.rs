//! Compatibility shim: [`PhaseTimer`] now lives in `tps-obs`, next to the
//! span recorder that produces its durations (one timing source for both the
//! Fig. 5 dissection table and the `--trace` JSON-lines output).
//!
//! Existing `tps_metrics::timer::PhaseTimer` paths keep working through this
//! re-export; new code should depend on `tps-obs` directly.

pub use tps_obs::timer::PhaseTimer;
