//! End-to-end partitioner throughput on a small graph — a quick regression
//! guard for the relative cost ordering (DBH < 2PS-L < HDRF at k = 32).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tps_baselines::{DbhPartitioner, HdrfPartitioner};
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;

fn bench_partitioners(c: &mut Criterion) {
    let graph = Dataset::Ok.generate_scaled(0.1);
    let params = PartitionParams::new(32);

    let mut group = c.benchmark_group("partition_ok_k32");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges()));
    group.bench_function("2PS-L", |b| {
        b.iter(|| {
            let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
            let mut s = graph.stream();
            black_box(p.partition(&mut s, &params, &mut NullSink).unwrap())
        })
    });
    group.bench_function("HDRF", |b| {
        b.iter(|| {
            let mut p = HdrfPartitioner::default();
            let mut s = graph.stream();
            black_box(p.partition(&mut s, &params, &mut NullSink).unwrap())
        })
    });
    group.bench_function("DBH", |b| {
        b.iter(|| {
            let mut p = DbhPartitioner::default();
            let mut s = graph.stream();
            black_box(p.partition(&mut s, &params, &mut NullSink).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
