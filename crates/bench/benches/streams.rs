//! Edge-stream throughput: in-memory vs binary file vs device-model wrapped.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::{write_binary_edge_list, BinaryEdgeFile};
use tps_graph::stream::for_each_edge;
use tps_storage::{DeviceModel, DeviceStream};

fn bench_streams(c: &mut Criterion) {
    let graph = Dataset::Ok.generate_scaled(0.1);
    let dir = std::env::temp_dir().join(format!("tps-bench-streams-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.bel");
    write_binary_edge_list(&path, graph.num_vertices(), graph.edges().iter().copied()).unwrap();

    let mut group = c.benchmark_group("stream_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(graph.num_edges()));
    group.bench_function("in_memory", |b| {
        b.iter(|| {
            let mut s = graph.stream();
            let mut n = 0u64;
            for_each_edge(&mut s, |e| n += e.src as u64).unwrap();
            black_box(n)
        })
    });
    group.bench_function("binary_file", |b| {
        b.iter(|| {
            let mut s = BinaryEdgeFile::open(&path).unwrap();
            let mut n = 0u64;
            for_each_edge(&mut s, |e| n += e.src as u64).unwrap();
            black_box(n)
        })
    });
    group.bench_function("mmap_file", |b| {
        b.iter(|| {
            let mut s = tps_io::MmapEdgeFile::open(&path).unwrap();
            let mut n = 0u64;
            for_each_edge(&mut s, |e| n += e.src as u64).unwrap();
            black_box(n)
        })
    });
    group.bench_function("prefetch_file", |b| {
        b.iter(|| {
            let mut s = tps_io::PrefetchReader::open_v1(&path).unwrap();
            let mut n = 0u64;
            for_each_edge(&mut s, |e| n += e.src as u64).unwrap();
            black_box(n)
        })
    });
    group.bench_function("device_model_wrapped", |b| {
        b.iter(|| {
            let mut s = DeviceStream::new(graph.stream(), DeviceModel::ssd());
            let mut n = 0u64;
            for_each_edge(&mut s, |e| n += e.src as u64).unwrap();
            black_box((n, s.account().bytes))
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
