//! Micro-benchmark of the paper's core claim at the smallest scale: the
//! per-edge scoring cost of 2PS-L's two-choice score is constant in `k`,
//! HDRF's full scan is linear in `k`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tps_core::two_phase::scoring::{hdrf_score, two_choice_score, EdgeScoreInputs, HdrfParams};
use tps_metrics::bitmatrix::ReplicationMatrix;

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_edge_scoring");
    group.sample_size(20);
    for &k in &[4u32, 32, 256] {
        let mut v2p = ReplicationMatrix::new(64, k);
        // Populate some replicas so the branches are realistic.
        for v in 0..64u32 {
            v2p.set(v, v % k);
            v2p.set(v, (v * 7 + 1) % k);
        }
        let inputs = EdgeScoreInputs {
            u: 3,
            v: 11,
            du: 9,
            dv: 4,
            vol_cu: 120,
            vol_cv: 80,
            pu: 1 % k,
            pv: 2 % k,
        };
        group.bench_with_input(BenchmarkId::new("two_choice", k), &k, |b, _| {
            b.iter(|| {
                let a = two_choice_score(black_box(&inputs), black_box(inputs.pu), &v2p);
                let bscore = two_choice_score(black_box(&inputs), black_box(inputs.pv), &v2p);
                black_box(a + bscore)
            })
        });
        let params = HdrfParams::default();
        group.bench_with_input(BenchmarkId::new("hdrf_all_k", k), &k, |b, &k| {
            b.iter(|| {
                let mut best = f64::NEG_INFINITY;
                for p in 0..k {
                    let s = hdrf_score(3, 11, 9, 4, p, &v2p, 10, 20, 5, &params);
                    if s > best {
                        best = s;
                    }
                }
                black_box(best)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
