//! Streaming-clustering pass throughput (phase 1 of 2PS-L) and the degree
//! pass it depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tps_clustering::streaming::{cluster_stream, ClusteringConfig};
use tps_graph::datasets::Dataset;
use tps_graph::degree::DegreeTable;

fn bench_clustering(c: &mut Criterion) {
    let graph = Dataset::It.generate_scaled(0.1);
    let mut stream = graph.stream();
    let degrees = DegreeTable::compute(&mut stream, graph.num_vertices()).unwrap();

    let mut group = c.benchmark_group("phase1");
    group.sample_size(20);
    group.throughput(Throughput::Elements(graph.num_edges()));
    group.bench_function("degree_pass", |b| {
        b.iter(|| {
            let mut s = graph.stream();
            black_box(DegreeTable::compute(&mut s, graph.num_vertices()).unwrap())
        })
    });
    group.bench_function("clustering_pass", |b| {
        b.iter(|| {
            let mut s = graph.stream();
            black_box(
                cluster_stream(
                    &mut s,
                    &degrees,
                    &ClusteringConfig::default_for_partitions(32),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
