//! The CI performance gate: parse bench JSON reports, extract named
//! throughput metrics, and compare against a committed baseline.
//!
//! The workspace vendors no JSON crate, so a minimal recursive-descent
//! parser lives here — it only needs to read the JSON *our own* bench
//! binaries emit (objects, arrays, strings, numbers, booleans, null), but
//! it is a complete parser of that grammar, with tests.
//!
//! Metrics come in two directions, resolved per key by [`direction`]'s
//! suffix table:
//!
//! * **floors** ([`Direction::Floor`], throughput-shaped, higher is better
//!   — the default): the gate fails when `current < floor × (1 −
//!   tolerance)`. Absolute numbers vary across machines, so committed
//!   floors should be *derated* (the `perf_gate --write-baseline
//!   --derate f` flow) — the gate then catches genuine regressions
//!   without tripping on runner jitter.
//! * **ceilings** ([`Direction::Ceiling`], lower is better — the
//!   replication-factor ratios `*.rf_vs_serial`, the peak-memory
//!   bounds `*.peak_rss_mb`, the tracing-overhead ratios
//!   `*.trace_overhead.slowdown`, and the serve update-cost bounds
//!   `*.update_ms_per_edge` / `*.update_scale_ratio`): the gate fails
//!   when `current > ceiling × (1 + tolerance)`. RF ratios are
//!   deterministic for a fixed worker count and committed as measured;
//!   the rest are committed with explicit headroom (see
//!   `bench/baselines/ci.json`). None are derated by `--write-baseline`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (just enough for the bench reports).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{k}\": {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged. The
                // `&str` input guarantees complete sequences, but stay
                // panic-free should a byte-level entry point ever appear.
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let s = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|bytes| std::str::from_utf8(bytes).ok())
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Extract the gated metrics from a *merged* report
/// `{"io_readers": ..., "parallel_scaling": ..., "mem_peak": ...}`.
pub fn extract_metrics(report: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(io) = report.get("io_readers") {
        for entry in io.get("stream_pass").and_then(Json::as_arr).unwrap_or(&[]) {
            if let (Some(format), Some(backend), Some(v)) = (
                entry.get("format").and_then(Json::as_str),
                entry.get("backend").and_then(Json::as_str),
                entry.get("medges_per_sec").and_then(Json::as_f64),
            ) {
                out.insert(format!("io_readers.{format}.{backend}.medges_per_sec"), v);
            }
        }
        // The v2/v1 epoch-throughput ratios are gated as floors: unlike the
        // absolute Medges/s numbers they are robust to container-speed
        // drift, since both sides of each ratio ran interleaved on the same
        // machine in the same process.
        for entry in io.get("v2_vs_v1").and_then(Json::as_arr).unwrap_or(&[]) {
            if let (Some(backend), Some(v)) = (
                entry.get("backend").and_then(Json::as_str),
                entry.get("ratio").and_then(Json::as_f64),
            ) {
                out.insert(format!("io_readers.v2_vs_v1.{backend}.ratio"), v);
            }
        }
    }
    // parallel_scaling and dist_scaling emit the same schema (serial
    // reference + per-worker-count rows); gate both under their own prefix.
    for section in ["parallel_scaling", "dist_scaling"] {
        let Some(par) = report.get(section) else {
            continue;
        };
        if let Some(v) = par
            .get("serial")
            .and_then(|s| s.get("medges_per_sec"))
            .and_then(Json::as_f64)
        {
            out.insert(format!("{section}.serial.medges_per_sec"), v);
        }
        for entry in par.get("parallel").and_then(Json::as_arr).unwrap_or(&[]) {
            let Some(t) = entry.get("threads").and_then(Json::as_f64) else {
                continue;
            };
            if let Some(v) = entry.get("medges_per_sec").and_then(Json::as_f64) {
                out.insert(format!("{section}.t{}.medges_per_sec", t as u64), v);
            }
            // Replication-factor quality ratio: a ceiling metric (lower is
            // better), guarding the measured per-worker-count RF epsilons.
            if let Some(v) = entry.get("rf_vs_serial").and_then(Json::as_f64) {
                out.insert(format!("{section}.t{}.rf_vs_serial", t as u64), v);
            }
        }
        // Tracing-overhead ceiling: traced ÷ untraced wall time.
        if let Some(v) = par
            .get("trace_overhead")
            .and_then(|t| t.get("slowdown"))
            .and_then(Json::as_f64)
        {
            out.insert(format!("{section}.trace_overhead.slowdown"), v);
        }
    }
    // serve_scaling gates the online path: batched lookup throughput
    // (floor) plus the fixed-delta update-cost ceilings — ms/edge on the
    // base graph and the 10×-graph/base ratio that pins "update cost
    // scales with the delta, not the graph".
    if let Some(serve) = report.get("serve_scaling") {
        if let Some(v) = serve
            .get("lookup")
            .and_then(|l| l.get("lookup_qps"))
            .and_then(Json::as_f64)
        {
            out.insert("serve_scaling.lookup_qps".to_string(), v);
        }
        if let Some(update) = serve.get("update") {
            if let Some(v) = update.get("update_ms_per_edge").and_then(Json::as_f64) {
                out.insert("serve_scaling.update_ms_per_edge".to_string(), v);
            }
            if let Some(v) = update.get("update_scale_ratio").and_then(Json::as_f64) {
                out.insert("serve_scaling.update_scale_ratio".to_string(), v);
            }
        }
        // Live-metrics overhead ceiling: instrumented ÷ uninstrumented
        // lookup time, exact-tolerance like the trace_overhead slowdowns.
        if let Some(v) = serve
            .get("metrics_overhead")
            .and_then(|m| m.get("slowdown"))
            .and_then(Json::as_f64)
        {
            out.insert("serve_scaling.metrics_overhead.slowdown".to_string(), v);
        }
    }
    // mem_peak emits one row per execution mode; the gated number is the
    // peak-RSS ceiling.
    if let Some(mem) = report.get("mem_peak") {
        for entry in mem.get("modes").and_then(Json::as_arr).unwrap_or(&[]) {
            if let (Some(mode), Some(v)) = (
                entry.get("mode").and_then(Json::as_str),
                entry.get("peak_rss_mb").and_then(Json::as_f64),
            ) {
                out.insert(format!("mem_peak.{mode}.peak_rss_mb"), v);
            }
        }
    }
    // scale_up gates the paper's headline bound from both sides: absolute
    // top-scale throughput (floor) and peak RSS (ceiling), plus the two
    // top÷base growth ratios — time-per-edge (linear run-time) and peak
    // RSS (edge-independent memory) — as ceilings near 1.0.
    if let Some(scale) = report.get("scale_up") {
        if let Some(top) = scale.get("top") {
            if let Some(v) = top.get("medges_per_sec").and_then(Json::as_f64) {
                out.insert("scale_up.top.medges_per_sec".to_string(), v);
            }
            if let Some(v) = top.get("peak_rss_mb").and_then(Json::as_f64) {
                out.insert("scale_up.top.peak_rss_mb".to_string(), v);
            }
        }
        for family in ["time_per_edge", "peak_rss"] {
            if let Some(v) = scale
                .get(family)
                .and_then(|f| f.get("growth_ratio"))
                .and_then(Json::as_f64)
            {
                out.insert(format!("scale_up.{family}.growth_ratio"), v);
            }
        }
    }
    out
}

/// Compare direction of one gated metric (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Higher is better; the gate bounds regressions from below.
    Floor,
    /// Lower is better; the gate bounds regressions from above.
    Ceiling,
}

/// The per-key direction table: metrics whose key ends with a listed
/// suffix take its direction; everything else is a throughput-shaped
/// floor. One table, shared by the gate comparison and the baseline
/// writer — adding a new lower-is-better metric family is one entry here,
/// not another suffix special-case at each call site.
const DIRECTION_SUFFIXES: &[(&str, Direction)] = &[
    (".rf_vs_serial", Direction::Ceiling),
    (".peak_rss_mb", Direction::Ceiling),
    (".slowdown", Direction::Ceiling),
    (".update_ms_per_edge", Direction::Ceiling),
    (".update_scale_ratio", Direction::Ceiling),
    (".growth_ratio", Direction::Ceiling),
];

/// The compare direction of `metric`, per the suffix table above.
pub fn direction(metric: &str) -> Direction {
    DIRECTION_SUFFIXES
        .iter()
        .find(|(suffix, _)| metric.ends_with(suffix))
        .map(|&(_, d)| d)
        .unwrap_or(Direction::Floor)
}

/// Whether `metric` is a **ceiling** (lower is better).
pub fn is_ceiling(metric: &str) -> bool {
    direction(metric) == Direction::Ceiling
}

/// Per-metric tolerance override. The `*.slowdown` tracing-overhead
/// ceilings are ratios whose committed baseline already encodes the
/// allowed headroom (1.03 = "traced within 3% of untraced"), so the
/// global jitter tolerance must not widen them: they compare exactly.
/// The serve `*.update_scale_ratio` ceiling deliberately keeps the
/// standard tolerance — its committed 2.0 documents the paper-shaped
/// fixed-delta bound, while the regression it guards against (a
/// per-mutation packed-table probe tying update cost to graph size)
/// lands at 3× and beyond, so runner jitter headroom does not blunt it.
/// The scale_up `*.growth_ratio` ceilings compare exactly too: they pin
/// the paper's linear-run-time / flat-RSS claims, where the committed
/// value (≈1.25) already holds all the jitter headroom — widening it by
/// another 25% would admit a super-linear pass unchallenged.
pub fn tolerance_override(metric: &str) -> Option<f64> {
    (metric.ends_with(".slowdown") || metric.ends_with(".growth_ratio")).then_some(0.0)
}

/// Restrict `baseline` to metrics whose section (the prefix before the
/// first `.`) appears in `sections` — the report families this gate
/// invocation actually ran. CI runs the gate from more than one job
/// (perf-smoke gates io + scaling, dist-smoke gates dist) against one
/// committed baseline file; without scoping, each job would flag the other
/// job's floors as "missing bench" regressions. Within a supplied section,
/// a missing metric still fails.
pub fn scope_baseline(
    baseline: &BTreeMap<String, f64>,
    sections: &[&str],
) -> BTreeMap<String, f64> {
    baseline
        .iter()
        .filter(|(k, _)| {
            let section = k.split('.').next().unwrap_or("");
            sections.contains(&section)
        })
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

/// One metric that fell below the gate.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// `current / baseline` (1.0 = unchanged).
    pub ratio: f64,
}

/// Compare `current` metrics against `baseline`: a floor metric regresses
/// when it drops below `baseline × (1 − tolerance)`, a ceiling metric (see
/// [`is_ceiling`]) when it rises above `baseline × (1 + tolerance)`, and a
/// baseline metric missing from the current report is a regression outright
/// (a silently dropped bench must not pass the gate). Extra current metrics
/// are allowed — new benches land before their baselines.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (metric, &base) in baseline {
        let tolerance = tolerance_override(metric).unwrap_or(tolerance);
        let regressed = match current.get(metric) {
            None => true,
            Some(&cur) if is_ceiling(metric) => cur > base * (1.0 + tolerance),
            Some(&cur) => cur < base * (1.0 - tolerance),
        };
        if regressed {
            let cur = current.get(metric).copied().unwrap_or(0.0);
            out.push(Regression {
                metric: metric.clone(),
                baseline: base,
                current: cur,
                ratio: if base > 0.0 { cur / base } else { 0.0 },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let j = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "12 34", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_through_display() {
        let text = r#"{"k": [1, {"s": "a\"b"}], "n": -2.5}"#;
        let j = parse_json(text).unwrap();
        let j2 = parse_json(&j.to_string()).unwrap();
        assert_eq!(j, j2);
    }

    #[test]
    fn parses_utf8_strings() {
        let j = parse_json(r#"{"name": "2PS-L×4"}"#).unwrap();
        assert_eq!(j.get("name").unwrap().as_str(), Some("2PS-L×4"));
    }

    fn sample_report() -> Json {
        parse_json(
            r#"{
              "io_readers": {
                "stream_pass": [
                  {"format": "v1", "backend": "mmap", "pass_seconds": 0.1, "medges_per_sec": 40.0},
                  {"format": "v2", "backend": "buffered", "pass_seconds": 0.2, "medges_per_sec": 20.0}
                ],
                "v2_vs_v1": [
                  {"backend": "mmap", "ratio": 1.05, "v1_medges_per_sec": 40.0, "v2_medges_per_sec": 42.0}
                ]
              },
              "parallel_scaling": {
                "serial": {"seconds": 1.0, "medges_per_sec": 15.0},
                "parallel": [
                  {"threads": 1, "medges_per_sec": 14.0, "rf_vs_serial": 1.0},
                  {"threads": 4, "medges_per_sec": 50.0, "rf_vs_serial": 1.24}
                ]
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn extracts_named_metrics() {
        let m = extract_metrics(&sample_report());
        assert_eq!(m["io_readers.v1.mmap.medges_per_sec"], 40.0);
        assert_eq!(m["io_readers.v2.buffered.medges_per_sec"], 20.0);
        assert_eq!(m["parallel_scaling.serial.medges_per_sec"], 15.0);
        assert_eq!(m["parallel_scaling.t4.medges_per_sec"], 50.0);
        assert_eq!(m["parallel_scaling.t1.rf_vs_serial"], 1.0);
        assert_eq!(m["parallel_scaling.t4.rf_vs_serial"], 1.24);
        assert_eq!(m["io_readers.v2_vs_v1.mmap.ratio"], 1.05);
        assert_eq!(m.len(), 8);
        // The v2/v1 parity ratio is a floor (higher = v2 faster = better);
        // note the distinct `.update_scale_ratio` suffix stays a ceiling.
        assert_eq!(
            direction("io_readers.v2_vs_v1.mmap.ratio"),
            Direction::Floor
        );
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut base = BTreeMap::new();
        base.insert("a".to_string(), 100.0);
        base.insert("b".to_string(), 100.0);
        base.insert("c".to_string(), 100.0);
        let mut cur = BTreeMap::new();
        cur.insert("a".to_string(), 80.0); // within 25% tolerance
        cur.insert("b".to_string(), 70.0); // regression
        cur.insert("c".to_string(), 130.0); // improvement
        cur.insert("new".to_string(), 1.0); // extra metric: fine
        let regs = compare(&base, &cur, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "b");
        assert!((regs[0].ratio - 0.7).abs() < 1e-12);
    }

    #[test]
    fn missing_current_metric_is_a_regression() {
        let mut base = BTreeMap::new();
        base.insert("gone".to_string(), 10.0);
        let regs = compare(&base, &BTreeMap::new(), 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, 0.0);
    }

    #[test]
    fn rf_ceilings_fail_upward_not_downward() {
        let mut base = BTreeMap::new();
        base.insert("parallel_scaling.t4.rf_vs_serial".to_string(), 1.24);
        base.insert("dist_scaling.t2.rf_vs_serial".to_string(), 1.05);
        base.insert("parallel_scaling.t4.medges_per_sec".to_string(), 10.0);

        // Better (lower) RF and faster throughput: no regressions.
        let mut good = BTreeMap::new();
        good.insert("parallel_scaling.t4.rf_vs_serial".to_string(), 1.10);
        good.insert("dist_scaling.t2.rf_vs_serial".to_string(), 1.05);
        good.insert("parallel_scaling.t4.medges_per_sec".to_string(), 12.0);
        assert!(compare(&base, &good, 0.25).is_empty());

        // RF blowing past ceiling × (1 + tolerance) fails, throughput-style
        // "higher is fine" must NOT apply to a ceiling.
        let mut bad = BTreeMap::new();
        bad.insert("parallel_scaling.t4.rf_vs_serial".to_string(), 1.60);
        bad.insert("dist_scaling.t2.rf_vs_serial".to_string(), 1.05);
        bad.insert("parallel_scaling.t4.medges_per_sec".to_string(), 12.0);
        let regs = compare(&base, &bad, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "parallel_scaling.t4.rf_vs_serial");
        assert!(regs[0].ratio > 1.0);

        // A ceiling missing from the current report is a regression too —
        // 0.0 would trivially pass an upper bound otherwise.
        let mut gone = good.clone();
        gone.remove("dist_scaling.t2.rf_vs_serial");
        let regs = compare(&base, &gone, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "dist_scaling.t2.rf_vs_serial");
    }

    #[test]
    fn direction_table_routes_by_suffix() {
        assert_eq!(
            direction("parallel_scaling.t4.rf_vs_serial"),
            Direction::Ceiling
        );
        assert_eq!(
            direction("dist_scaling.t2.rf_vs_serial"),
            Direction::Ceiling
        );
        assert_eq!(direction("mem_peak.t8.peak_rss_mb"), Direction::Ceiling);
        assert_eq!(direction("mem_peak.serial.peak_rss_mb"), Direction::Ceiling);
        assert_eq!(
            direction("parallel_scaling.t4.medges_per_sec"),
            Direction::Floor
        );
        assert_eq!(
            direction("io_readers.v1.mmap.medges_per_sec"),
            Direction::Floor
        );
        assert_eq!(
            direction("scale_up.time_per_edge.growth_ratio"),
            Direction::Ceiling
        );
        assert_eq!(
            direction("scale_up.peak_rss.growth_ratio"),
            Direction::Ceiling
        );
        assert_eq!(direction("scale_up.top.medges_per_sec"), Direction::Floor);
        // Growth ratios are exact-compare ceilings, like slowdown budgets.
        assert_eq!(
            tolerance_override("scale_up.time_per_edge.growth_ratio"),
            Some(0.0)
        );
        // A suffix must match the *end* of the key, not a substring.
        assert_eq!(direction("x.peak_rss_mb.note"), Direction::Floor);
        assert!(is_ceiling("mem_peak.dist2.peak_rss_mb"));
        assert!(!is_ceiling("mem_peak.dist2.seconds"));
    }

    #[test]
    fn slowdown_ceiling_ignores_global_tolerance() {
        assert_eq!(
            direction("parallel_scaling.trace_overhead.slowdown"),
            Direction::Ceiling
        );
        assert_eq!(
            tolerance_override("parallel_scaling.trace_overhead.slowdown"),
            Some(0.0)
        );
        assert_eq!(tolerance_override("mem_peak.t8.peak_rss_mb"), None);
        let mut base = BTreeMap::new();
        // 1.03 IS the headroom: the global 25% tolerance must not widen it.
        base.insert("parallel_scaling.trace_overhead.slowdown".to_string(), 1.03);
        let mut ok = BTreeMap::new();
        ok.insert("parallel_scaling.trace_overhead.slowdown".to_string(), 1.02);
        assert!(compare(&base, &ok, 0.25).is_empty());
        let mut bad = BTreeMap::new();
        bad.insert("parallel_scaling.trace_overhead.slowdown".to_string(), 1.05);
        let regs = compare(&base, &bad, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "parallel_scaling.trace_overhead.slowdown");
    }

    #[test]
    fn extracts_trace_overhead_slowdown() {
        let j = parse_json(
            r#"{
              "parallel_scaling": {
                "serial": {"medges_per_sec": 10.0},
                "parallel": [{"threads": 4, "medges_per_sec": 30.0}],
                "trace_overhead": {"threads": 4, "untraced_medges_per_sec": 30.0,
                                   "traced_medges_per_sec": 29.5, "slowdown": 1.017}
              }
            }"#,
        )
        .unwrap();
        let m = extract_metrics(&j);
        assert_eq!(m["parallel_scaling.trace_overhead.slowdown"], 1.017);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn extracts_mem_peak_modes() {
        let j = parse_json(
            r#"{
              "mem_peak": {
                "graph": {"vertices": 10, "edges": 20, "k": 4},
                "modes": [
                  {"mode": "serial", "peak_rss_mb": 10.5, "seconds": 0.1},
                  {"mode": "t8", "peak_rss_mb": 12.0, "pre_partition_mb": 2.0},
                  {"mode": "dist2", "peak_rss_mb": 21.0}
                ]
              }
            }"#,
        )
        .unwrap();
        let m = extract_metrics(&j);
        assert_eq!(m["mem_peak.serial.peak_rss_mb"], 10.5);
        assert_eq!(m["mem_peak.t8.peak_rss_mb"], 12.0);
        assert_eq!(m["mem_peak.dist2.peak_rss_mb"], 21.0);
        assert_eq!(m.len(), 3, "seconds/pre_partition are not gated");
    }

    #[test]
    fn extracts_scale_up_metrics() {
        let j = parse_json(
            r#"{
              "scale_up": {
                "graph": {"vertices": 4194304, "k": 32, "mem_budget_mb": 160},
                "scales": [
                  {"edges": 25000000, "seconds": 29.1, "peak_rss_mb": 120.5},
                  {"edges": 100000000, "seconds": 112.0, "peak_rss_mb": 125.0}
                ],
                "top": {"edges": 100000000, "medges_per_sec": 0.893, "peak_rss_mb": 125.0},
                "time_per_edge": {"growth_ratio": 0.962},
                "peak_rss": {"growth_ratio": 1.037}
              }
            }"#,
        )
        .unwrap();
        let m = extract_metrics(&j);
        assert_eq!(m["scale_up.top.medges_per_sec"], 0.893);
        assert_eq!(m["scale_up.top.peak_rss_mb"], 125.0);
        assert_eq!(m["scale_up.time_per_edge.growth_ratio"], 0.962);
        assert_eq!(m["scale_up.peak_rss.growth_ratio"], 1.037);
        assert_eq!(m.len(), 4, "per-scale rows are context, not gated");
    }

    #[test]
    fn peak_rss_ceilings_fail_upward() {
        let mut base = BTreeMap::new();
        base.insert("mem_peak.t8.peak_rss_mb".to_string(), 100.0);
        let mut good = BTreeMap::new();
        good.insert("mem_peak.t8.peak_rss_mb".to_string(), 80.0);
        assert!(compare(&base, &good, 0.25).is_empty(), "lower RSS passes");
        let mut bad = BTreeMap::new();
        bad.insert("mem_peak.t8.peak_rss_mb".to_string(), 130.0);
        let regs = compare(&base, &bad, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "mem_peak.t8.peak_rss_mb");
    }

    #[test]
    fn extracts_serve_scaling_metrics() {
        let j = parse_json(
            r#"{
              "serve_scaling": {
                "graph": {"vertices": 10, "edges": 20, "k": 32},
                "lookup": {"batch_edges": 1024, "batches": 3, "seconds": 0.01,
                           "lookup_qps": 2000000.0},
                "metrics_overhead": {"off_qps": 2050000.0, "on_qps": 2000000.0,
                                     "slowdown": 1.025},
                "update": {"delta_edges": 2000, "update_ms_per_edge": 0.004,
                           "large_ms_per_edge": 0.005, "update_scale_ratio": 1.25}
              }
            }"#,
        )
        .unwrap();
        let m = extract_metrics(&j);
        assert_eq!(m["serve_scaling.lookup_qps"], 2000000.0);
        assert_eq!(m["serve_scaling.update_ms_per_edge"], 0.004);
        assert_eq!(m["serve_scaling.update_scale_ratio"], 1.25);
        assert_eq!(m["serve_scaling.metrics_overhead.slowdown"], 1.025);
        assert_eq!(m.len(), 4, "seconds/delta sizes/qps sides are not gated");
        // The metrics-overhead ratio rides the `.slowdown` suffix: a
        // ceiling compared exactly — its committed 1.03 IS the headroom.
        assert!(is_ceiling("serve_scaling.metrics_overhead.slowdown"));
        assert_eq!(
            tolerance_override("serve_scaling.metrics_overhead.slowdown"),
            Some(0.0)
        );
        // Throughput is a floor; both update-cost metrics are ceilings
        // with the standard jitter tolerance (the probe-per-mutation
        // regression they guard against overshoots by multiples).
        assert_eq!(direction("serve_scaling.lookup_qps"), Direction::Floor);
        assert!(is_ceiling("serve_scaling.update_ms_per_edge"));
        assert!(is_ceiling("serve_scaling.update_scale_ratio"));
        assert_eq!(tolerance_override("serve_scaling.update_scale_ratio"), None);
        assert_eq!(tolerance_override("serve_scaling.update_ms_per_edge"), None);
    }

    #[test]
    fn extracts_dist_scaling_like_parallel_scaling() {
        let j = parse_json(
            r#"{
              "dist_scaling": {
                "serial": {"medges_per_sec": 10.0},
                "parallel": [{"threads": 2, "medges_per_sec": 8.0}]
              }
            }"#,
        )
        .unwrap();
        let m = extract_metrics(&j);
        assert_eq!(m["dist_scaling.serial.medges_per_sec"], 10.0);
        assert_eq!(m["dist_scaling.t2.medges_per_sec"], 8.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn scoping_keeps_only_supplied_sections() {
        let mut base = BTreeMap::new();
        base.insert("io_readers.v1.mmap.medges_per_sec".to_string(), 1.0);
        base.insert("parallel_scaling.t2.medges_per_sec".to_string(), 2.0);
        base.insert("dist_scaling.t2.medges_per_sec".to_string(), 3.0);
        let scoped = scope_baseline(&base, &["io_readers", "parallel_scaling"]);
        assert_eq!(scoped.len(), 2);
        assert!(!scoped.contains_key("dist_scaling.t2.medges_per_sec"));
        let dist_only = scope_baseline(&base, &["dist_scaling"]);
        assert_eq!(dist_only.len(), 1);
    }
}
