//! Figure 9: 2PS-HDRF vs 2PS-L.
//!
//! Replication factor and run-time of the 2PS-HDRF variant (phase 2 scores
//! all `k` partitions with the HDRF function) normalised to 2PS-L, on
//! OK/IT/TW/FR at k ∈ {4, 32, 128, 256}. Paper findings: up to ~50 % lower
//! replication factor; run-time parity at k = 4 but up to 12× slower at
//! k = 256.
//!
//! Run: `cargo run --release -p tps-bench --bin fig9_hdrf_scoring`

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_metrics::stats::Summary;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn measure(
    graph: &tps_graph::InMemoryGraph,
    config: TwoPhaseConfig,
    k: u32,
    repeats: u32,
) -> (f64, f64) {
    let mut rf = Summary::new();
    let mut time = Summary::new();
    for _ in 0..repeats {
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .two_phase(config)
            .params(&PartitionParams::new(k))
            .num_vertices(graph.num_vertices())
            .run()
            .expect("partitioning failed");
        rf.add(out.metrics.replication_factor);
        time.add(out.seconds());
    }
    (rf.mean(), time.mean())
}

fn main() {
    let args = BenchArgs::from_env();
    let datasets = [Dataset::Ok, Dataset::It, Dataset::Tw, Dataset::Fr];
    let mut table = Table::new(vec![
        "graph",
        "k",
        "2PS-L rf",
        "2PS-HDRF rf",
        "norm. rf",
        "2PS-L time (s)",
        "2PS-HDRF time (s)",
        "norm. time",
    ]);
    for ds in datasets {
        let graph = ds.generate_scaled(args.scale);
        for &k in &[4u32, 32, 128, 256] {
            let (l_rf, l_t) = measure(&graph, TwoPhaseConfig::default(), k, args.repeats);
            let (h_rf, h_t) = measure(&graph, TwoPhaseConfig::hdrf_variant(), k, args.repeats);
            table.row(vec![
                ds.abbrev().to_string(),
                k.to_string(),
                format!("{l_rf:.3}"),
                format!("{h_rf:.3}"),
                format!("{:.3}", h_rf / l_rf),
                format!("{l_t:.3}"),
                format!("{h_t:.3}"),
                format!("{:.2}", h_t / l_t),
            ]);
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig9_hdrf_scoring", &table);
}
