//! Parallel scaling: the chunk-parallel `ParallelRunner` against the serial
//! 2PS-L runner, end to end.
//!
//! Generates the R-MAT-skewed OK stand-in, runs a full serial partition and
//! full parallel partitions at 1/2/4/8 worker threads, and emits a JSON
//! report of wall times, throughput and speedup plus the quality deltas
//! (replication factor, balance) so the determinism/quality bounds of
//! `tps-core::parallel` stay observable. One-thread parallel runs are
//! asserted bit-compatible with serial quality (same RF, same loads).
//!
//! Run: `cargo run --release -p tps-bench --bin parallel_scaling -- [--scale f] [--repeats n] [--quick]`

use tps_bench::harness::BenchArgs;
use tps_core::parallel::ParallelRunner;
use tps_core::partitioner::PartitionParams;
use tps_core::runner::{run_parallel_partitioner, run_partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;

const K: u32 = 32;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = BenchArgs::from_env();
    // The OK stand-in is R-MAT-derived: skewed degrees and ids.
    let graph = Dataset::Ok.generate_scaled(args.scale);
    let params = PartitionParams::new(K);

    // Serial reference.
    let mut serial_best: Option<tps_core::runner::RunOutcome> = None;
    for _ in 0..args.repeats {
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut stream = graph.stream();
        let out = run_partitioner(&mut p, &mut stream, graph.num_vertices(), &params)
            .expect("serial partition");
        if serial_best
            .as_ref()
            .is_none_or(|b| out.wall_time < b.wall_time)
        {
            serial_best = Some(out);
        }
    }
    let serial = serial_best.expect("at least one repeat");
    let serial_s = serial.seconds();
    let medges = graph.num_edges() as f64 / 1e6;

    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let runner = ParallelRunner::new(TwoPhaseConfig::default(), threads);
        let mut best: Option<tps_core::runner::RunOutcome> = None;
        for _ in 0..args.repeats {
            let out =
                run_parallel_partitioner(&runner, &graph, &params).expect("parallel partition");
            if best.as_ref().is_none_or(|b| out.wall_time < b.wall_time) {
                best = Some(out);
            }
        }
        let out = best.expect("at least one repeat");
        assert_eq!(
            out.metrics.num_edges,
            graph.num_edges(),
            "parallel runner dropped edges at {threads} threads"
        );
        if threads == 1 {
            // One worker executes the serial code path; quality must match
            // exactly, not within epsilon.
            assert_eq!(
                out.metrics.replication_factor, serial.metrics.replication_factor,
                "1-thread parallel RF diverged from serial"
            );
            assert_eq!(out.metrics.loads, serial.metrics.loads);
        }
        rows.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {:.6}, \"medges_per_sec\": {:.3}, \"speedup\": {:.3}, \"rf\": {:.4}, \"rf_vs_serial\": {:.4}, \"alpha\": {:.4}, \"cap_overshoot\": {}}}",
            out.seconds(),
            medges / out.seconds(),
            serial_s / out.seconds(),
            out.metrics.replication_factor,
            out.metrics.replication_factor / serial.metrics.replication_factor,
            out.metrics.alpha,
            out.report.counter("cap_overshoot"),
        ));
    }

    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"scale\": {}, \"k\": {K}}},",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "  \"serial\": {{\"seconds\": {:.6}, \"medges_per_sec\": {:.3}, \"rf\": {:.4}, \"alpha\": {:.4}}},",
        serial_s,
        medges / serial_s,
        serial.metrics.replication_factor,
        serial.metrics.alpha
    );
    println!("  \"parallel\": [\n{}\n  ]", rows.join(",\n"));
    println!("}}");
}
