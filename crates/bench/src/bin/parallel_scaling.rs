//! Parallel scaling: chunk-parallel runners against their serial
//! references, end to end.
//!
//! Generates the R-MAT-skewed OK stand-in, runs a full serial partition and
//! full parallel partitions at 1/2/4/8 worker threads, and emits a JSON
//! report of wall times, throughput and speedup plus the quality deltas
//! (replication factor, balance) so the determinism/quality bounds of
//! `tps-core::parallel` stay observable. One-thread parallel runs are
//! asserted bit-compatible with serial quality (same RF, same loads).
//!
//! `--algo` selects the algorithm (paper Fig. 4 with a threads axis):
//!
//! * `2ps` (default) — `ParallelRunner` vs the serial 2PS-L partitioner;
//! * `hdrf` — `ParallelBaselineRunner` vs serial **exact-degree** HDRF
//!   (partial degree counting is inherently sequential, so the parallel
//!   runner and its serial reference both use exact degrees);
//! * `dbh` — `ParallelBaselineRunner` vs serial DBH (whose output the
//!   parallel runner reproduces identically at every thread count).
//!
//! For the default `2ps` algorithm the report also carries a
//! `trace_overhead` section: the same 4-thread run measured untraced and
//! with `tps-obs` event recording enabled, plus their wall-time ratio
//! (`slowdown`) — the CI perf gate holds that ratio under the committed
//! `parallel_scaling.trace_overhead.slowdown` ceiling. `--trace FILE`
//! additionally writes the traced run's JSON-lines trace to FILE
//! (`tps report FILE` renders it).
//!
//! Run: `cargo run --release -p tps-bench --bin parallel_scaling -- [--algo 2ps|hdrf|dbh] [--trace file] [--scale f] [--repeats n] [--quick]`

use std::time::Instant;

use tps_baselines::{DbhPartitioner, HdrfPartitioner, ParallelBaselineRunner, StreamingBaseline};
use tps_bench::harness::BenchArgs;
use tps_core::job::{JobSpec, ThreadMode};
use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::QualitySink;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_graph::stream::InMemoryGraph;
use tps_metrics::quality::PartitionMetrics;

const K: u32 = 32;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured run, serial or parallel.
struct Measured {
    seconds: f64,
    metrics: PartitionMetrics,
    report: RunReport,
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let algo = take_value(&mut argv, "--algo").unwrap_or_else(|| "2ps".to_string());
    let trace_path = take_value(&mut argv, "--trace");
    let args = BenchArgs::parse(argv);
    // The OK stand-in is R-MAT-derived: skewed degrees and ids.
    let graph = Dataset::Ok.generate_scaled(args.scale);
    let params = PartitionParams::new(K);

    let (serial, rows) = match algo.as_str() {
        "2ps" | "2ps-l" => run_2ps(&graph, &params, &args),
        "hdrf" => run_baseline(StreamingBaseline::hdrf(), &graph, &params, &args),
        "dbh" => run_baseline(StreamingBaseline::dbh(), &graph, &params, &args),
        other => {
            eprintln!("error: unknown --algo {other:?} (2ps|hdrf|dbh)");
            std::process::exit(2);
        }
    };

    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"scale\": {}, \"k\": {K}}},",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );
    println!("  \"algo\": \"{algo}\",");
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let medges = graph.num_edges() as f64 / 1e6;
    println!(
        "  \"serial\": {{\"seconds\": {:.6}, \"medges_per_sec\": {:.3}, \"rf\": {:.4}, \"alpha\": {:.4}}},",
        serial.seconds,
        medges / serial.seconds,
        serial.metrics.replication_factor,
        serial.metrics.alpha
    );
    println!("  \"parallel\": [\n{}\n  ],", rows.join(",\n"));
    if matches!(algo.as_str(), "2ps" | "2ps-l") {
        println!(
            "  {}",
            trace_overhead(&graph, &params, &args, trace_path.as_deref())
        );
    } else {
        // Keep the document shape stable across algorithms.
        println!("  \"trace_overhead\": null");
    }
    println!("}}");
}

/// Remove `--name value` from `argv`, returning the value.
fn take_value(argv: &mut Vec<String>, name: &str) -> Option<String> {
    let i = argv.iter().position(|a| a == name)?;
    argv.remove(i);
    if i < argv.len() {
        Some(argv.remove(i))
    } else {
        eprintln!("error: {name} needs a value");
        std::process::exit(2);
    }
}

fn best_of<F: FnMut() -> Measured>(repeats: u32, mut run: F) -> Measured {
    let mut best: Option<Measured> = None;
    for _ in 0..repeats {
        let out = run();
        if best.as_ref().is_none_or(|b| out.seconds < b.seconds) {
            best = Some(out);
        }
    }
    best.expect("at least one repeat")
}

fn row(threads: usize, out: &Measured, serial: &Measured, medges: f64) -> String {
    format!(
        "    {{\"threads\": {threads}, \"seconds\": {:.6}, \"medges_per_sec\": {:.3}, \"speedup\": {:.3}, \"rf\": {:.4}, \"rf_vs_serial\": {:.4}, \"alpha\": {:.4}, \"cap_overshoot\": {}}}",
        out.seconds,
        medges / out.seconds,
        serial.seconds / out.seconds,
        out.metrics.replication_factor,
        out.metrics.replication_factor / serial.metrics.replication_factor,
        out.metrics.alpha,
        out.report.counter("cap_overshoot"),
    )
}

fn run_2ps(
    graph: &InMemoryGraph,
    params: &PartitionParams,
    args: &BenchArgs,
) -> (Measured, Vec<String>) {
    let serial = best_of(args.repeats, || {
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .two_phase(TwoPhaseConfig::default())
            .params(params)
            .num_vertices(graph.num_vertices())
            .run()
            .expect("serial partition");
        Measured {
            seconds: out.seconds(),
            metrics: out.metrics,
            report: out.report,
        }
    });
    let medges = graph.num_edges() as f64 / 1e6;
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let out = best_of(args.repeats, || {
            let out = JobSpec::ranged(graph)
                .two_phase(TwoPhaseConfig::default())
                .params(params)
                .threads(ThreadMode::Count(threads))
                .run()
                .expect("parallel partition");
            Measured {
                seconds: out.seconds(),
                metrics: out.metrics,
                report: out.report,
            }
        });
        check_row(&out, &serial, graph, threads);
        rows.push(row(threads, &out, &serial, medges));
    }
    (serial, rows)
}

fn run_baseline(
    algo: StreamingBaseline,
    graph: &InMemoryGraph,
    params: &PartitionParams,
    args: &BenchArgs,
) -> (Measured, Vec<String>) {
    let serial = best_of(args.repeats, || {
        let mut sink = QualitySink::new(graph.num_vertices(), params.k);
        let start = Instant::now();
        let report = match algo {
            // The parallel reference point uses exact degrees (see module
            // docs), so the serial HDRF reference must too.
            StreamingBaseline::Hdrf(h) => HdrfPartitioner {
                params: h,
                partial_degrees: false,
            }
            .partition(&mut graph.stream(), params, &mut sink)
            .expect("serial hdrf"),
            StreamingBaseline::Dbh { seed } => DbhPartitioner { seed }
                .partition(&mut graph.stream(), params, &mut sink)
                .expect("serial dbh"),
        };
        Measured {
            seconds: start.elapsed().as_secs_f64(),
            metrics: sink.finish(),
            report,
        }
    });
    let medges = graph.num_edges() as f64 / 1e6;
    let mut rows = Vec::new();
    for threads in THREAD_COUNTS {
        let runner = ParallelBaselineRunner::new(algo, threads);
        let out = best_of(args.repeats, || {
            let mut sink = QualitySink::new(graph.num_vertices(), params.k);
            let start = Instant::now();
            let report = runner
                .partition(graph, params, &mut sink)
                .expect("parallel");
            Measured {
                seconds: start.elapsed().as_secs_f64(),
                metrics: sink.finish(),
                report,
            }
        });
        check_row(&out, &serial, graph, threads);
        rows.push(row(threads, &out, &serial, medges));
    }
    (serial, rows)
}

fn check_row(out: &Measured, serial: &Measured, graph: &InMemoryGraph, threads: usize) {
    assert_eq!(
        out.metrics.num_edges,
        graph.num_edges(),
        "parallel runner dropped edges at {threads} threads"
    );
    if threads == 1 {
        // One worker executes the serial code path; quality must match
        // exactly, not within epsilon.
        assert_eq!(
            out.metrics.replication_factor, serial.metrics.replication_factor,
            "1-thread parallel RF diverged from serial"
        );
        assert_eq!(out.metrics.loads, serial.metrics.loads);
    }
}

/// Measure the cost of `tps-obs` event recording on the 4-thread 2PS-L
/// run. At `--quick` scale a single run lasts milliseconds, so each sample
/// times a batch of back-to-back runs (calibrated to ≥ ~0.3 s) and the
/// reported `slowdown` is the ratio of the best traced sample to the best
/// untraced sample — stable enough for the perf gate's exact-tolerance
/// ceiling. Tracing must never change output, so the traced run's quality
/// is asserted identical to the untraced run's.
fn trace_overhead(
    graph: &InMemoryGraph,
    params: &PartitionParams,
    args: &BenchArgs,
    trace_path: Option<&str>,
) -> String {
    const THREADS: usize = 4;
    const TARGET_SAMPLE_SECS: f64 = 0.3;
    let samples = args.repeats.max(3);
    let run_once = || {
        let out = JobSpec::ranged(graph)
            .two_phase(TwoPhaseConfig::default())
            .params(params)
            .threads(ThreadMode::Count(THREADS))
            .run()
            .expect("parallel partition");
        Measured {
            seconds: out.seconds(),
            metrics: out.metrics,
            report: out.report,
        }
    };

    // Warm up and calibrate the batch size on an untraced run.
    tps_obs::set_enabled(false);
    tps_obs::reset_events();
    let cal = run_once();
    let iters = ((TARGET_SAMPLE_SECS / cal.seconds.max(1e-9)).ceil() as usize).clamp(1, 50);

    // One sample = the summed partition time of `iters` back-to-back runs.
    let sample = |traced: bool| -> f64 {
        tps_obs::set_enabled(traced);
        let mut total = 0.0;
        for _ in 0..iters {
            // Each run starts with empty buffers, like a CLI run would.
            tps_obs::reset_events();
            total += run_once().seconds;
        }
        tps_obs::set_enabled(false);
        total
    };
    // Alternate untraced/traced samples so machine-load drift hits both.
    let mut best_untraced = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    for _ in 0..samples {
        best_untraced = best_untraced.min(sample(false));
        best_traced = best_traced.min(sample(true));
    }

    // Bit-identical guarantee: one traced and one untraced run must agree.
    let untraced_out = run_once();
    tps_obs::set_enabled(true);
    tps_obs::reset_events();
    let traced_out = run_once();
    tps_obs::set_enabled(false);
    assert_eq!(
        traced_out.metrics.replication_factor, untraced_out.metrics.replication_factor,
        "tracing changed partitioning output (RF)"
    );
    assert_eq!(
        traced_out.metrics.loads, untraced_out.metrics.loads,
        "tracing changed partitioning output (loads)"
    );

    if let Some(path) = trace_path {
        // One clean traced run for the artifact, from fresh buffers so the
        // file describes exactly one run.
        tps_obs::reset_events();
        tps_obs::reset_counters();
        tps_obs::set_enabled(true);
        let _ = run_once();
        tps_obs::set_enabled(false);
        let events = tps_obs::take_events();
        let counters: Vec<(u32, String, u64)> = tps_obs::counters_snapshot()
            .into_iter()
            .map(|(n, v)| (0, n, v))
            .collect();
        let meta = tps_obs::TraceMeta {
            cmd: "bench".to_string(),
            algo: format!("2PS-L×{THREADS}"),
            k: K,
            alpha: params.alpha,
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
        };
        tps_obs::write_trace(std::path::Path::new(path), &meta, &events, &counters)
            .expect("writing trace");
        eprintln!("trace: {} events -> {path}", events.len());
    }

    let medges = graph.num_edges() as f64 * iters as f64 / 1e6;
    format!(
        "\"trace_overhead\": {{\"threads\": {THREADS}, \"untraced_medges_per_sec\": {:.3}, \"traced_medges_per_sec\": {:.3}, \"slowdown\": {:.4}}}",
        medges / best_untraced,
        medges / best_traced,
        best_traced / best_untraced
    )
}
