//! Billion-edge scale-up: linear run-time with flat peak RSS under one
//! `--mem-budget-mb` budget (the CI `scale-smoke` job).
//!
//! The paper's headline claim is out-of-core edge partitioning at **linear
//! run-time**; this bench pins both halves of that claim as the edge count
//! grows with everything else held fixed. An R-MAT generator (Graph500
//! probabilities, power-law degrees — the adversarial shape for streaming
//! partitioners) streams edges straight into the v2 writer, so no scale is
//! ever materialised in memory; each scale then partitions in a **fresh
//! child process** running the ordinary budgeted serial job
//! (`tps partition --threads serial --mem-budget-mb B`) and reports its
//! `VmHWM`. The parent derives the two gated ratios:
//!
//! * `time_per_edge.growth_ratio` — seconds/edge at the top scale ÷
//!   seconds/edge at the base scale. Linear run-time means ≈ 1.0; a
//!   super-linear term (say, an `O(|E| log |E|)` sort sneaking into a
//!   pass) shows up as the edge ratio between the scales.
//! * `peak_rss.growth_ratio` — peak RSS at the top scale ÷ base scale.
//!   The memory model is `O(|V| + budget)`: vertex-linear state (degrees,
//!   cluster table, replication bits) plus budget-capped caches, nothing
//!   proportional to `|E|`. Flat RSS while edges grow 4× is that bound,
//!   measured by the operating system.
//!
//! Absolute floors/ceilings (`top.medges_per_sec`, `top.peak_rss_mb`) ride
//! along in `bench/baselines/ci.json` like every other bench family.
//!
//! Run: `cargo run --release -p tps-bench --bin scale_up -- [--quick]
//! [--edges N]`. `--quick` sweeps 25M/50M/100M edges (the CI job);
//! the default sweep tops out at 250M; `--edges N` sweeps N/4, N/2, N —
//! `--edges 1000000000` is the documented offline billion-edge run (see
//! docs/OPERATIONS.md for a measured transcript). (`--child` is the
//! internal per-scale entry point.)

use std::path::Path;
use std::time::Instant;

use tps_graph::types::Edge;

/// Fixed vertex count (2²²). The sweep varies |E| only, so every O(|V|)
/// term is constant across scales and RSS growth isolates O(|E|) leaks.
const VERTICES: u64 = 1 << 22;
const VERTEX_BITS: u32 = 22;

/// Whole-job memory budget. Sized so the budget's cluster-page share holds
/// the 2²²-vertex cluster table resident (this bench gates *flatness at
/// scale*; eviction under pressure is gated by `mem_peak`'s oc pair) while
/// the decode-cache share stays far below every scale's decoded size — so
/// the v2 cache is off uniformly and no scale gets an in-memory shortcut.
const BUDGET_MB: u64 = 160;

const K: u32 = 32;

/// Graph500 R-MAT quadrant probabilities (a, b, c; d is the remainder).
const RMAT_A: f64 = 0.57;
const RMAT_B: f64 = 0.19;
const RMAT_C: f64 = 0.19;

const V2_CHUNK_EDGES: u32 = 1 << 16;
const SEED: u64 = 0x5CA1E;

/// A streaming R-MAT edge sampler: `Iterator<Item = Edge>`, O(1) state —
/// the writer consumes it straight to disk, so a billion-edge scale costs
/// no more resident memory than a million-edge one.
struct RmatEdges {
    remaining: u64,
    state: u64,
}

impl RmatEdges {
    fn new(edges: u64, seed: u64) -> Self {
        RmatEdges {
            remaining: edges,
            state: seed | 1,
        }
    }

    /// xorshift64* — cheap, full-period, and deterministic across runs.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Iterator for RmatEdges {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let (mut u, mut v) = (0u32, 0u32);
            for _ in 0..VERTEX_BITS {
                let r = self.next_f64();
                let (ubit, vbit) = if r < RMAT_A {
                    (0, 0)
                } else if r < RMAT_A + RMAT_B {
                    (0, 1)
                } else if r < RMAT_A + RMAT_B + RMAT_C {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | ubit;
                v = (v << 1) | vbit;
            }
            if u != v {
                return Some(Edge::new(u, v));
            }
        }
    }
}

/// The swept edge counts, smallest first (base scale → top scale).
fn scales(quick: bool, top: Option<u64>) -> Vec<u64> {
    let top = top.unwrap_or(if quick { 100_000_000 } else { 250_000_000 });
    vec![top / 4, top / 2, top]
}

/// `VmHWM` (peak resident set) of this process, in KiB. `None` off Linux.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn main() {
    let mut quick = false;
    let mut top: Option<u64> = None;
    let mut child: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--edges" => {
                top = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 4)
                        .unwrap_or_else(|| die("--edges needs a positive integer")),
                );
            }
            "--child" => child = Some(args.next().unwrap_or_else(|| die("--child needs a path"))),
            "--help" | "-h" => {
                eprintln!("options: [--quick] [--edges N]   (--child FILE is internal)");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    match child {
        Some(path) => run_child(&path),
        None => run_parent(quick, top),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parent: per scale, stream-generate the v2 file, partition it in a fresh
/// child, delete the file — disk high-water is one scale, not the sweep.
fn run_parent(quick: bool, top: Option<u64>) {
    let exe = std::env::current_exe().expect("own executable path");
    let dir = std::env::temp_dir().join(format!("tps-scale-up-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let sweep = scales(quick, top);
    let mut rows: Vec<(u64, f64, f64)> = Vec::new(); // (edges, seconds, peak_rss_mb)
    let mut row_json = Vec::new();
    for &edges in &sweep {
        let input = dir.join(format!("rmat-{edges}.bel2"));
        let gen_start = Instant::now();
        tps_io::write_v2_edge_list(
            &input,
            VERTICES,
            RmatEdges::new(edges, SEED),
            V2_CHUNK_EDGES,
        )
        .expect("write v2 edge file");
        let gen_seconds = gen_start.elapsed().as_secs_f64();
        let out = std::process::Command::new(&exe)
            .arg("--child")
            .arg(&input)
            .output()
            .expect("spawn scale_up child");
        std::fs::remove_file(&input).ok();
        if !out.status.success() {
            eprintln!("scale {edges} failed:");
            eprintln!("{}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
        // Child emits "seconds peak_rss_kb".
        let text = String::from_utf8(out.stdout).expect("child emits UTF-8");
        let mut parts = text.split_whitespace();
        let seconds: f64 = parts.next().and_then(|s| s.parse().ok()).expect("seconds");
        let peak_kb: f64 = parts.next().and_then(|s| s.parse().ok()).expect("peak kb");
        let peak_mb = peak_kb / 1024.0;
        let medges = edges as f64 / 1e6 / seconds;
        eprintln!(
            "scale {edges}: gen {gen_seconds:.1}s, partition {seconds:.1}s \
             ({medges:.2} Medges/s), peak RSS {peak_mb:.1} MB"
        );
        row_json.push(format!(
            "    {{\"edges\": {edges}, \"gen_seconds\": {gen_seconds:.3}, \"seconds\": {seconds:.3}, \
             \"medges_per_sec\": {medges:.3}, \"peak_rss_mb\": {peak_mb:.1}}}"
        ));
        rows.push((edges, seconds, peak_mb));
    }
    std::fs::remove_dir_all(&dir).ok();

    let (base_edges, base_secs, base_rss) = rows[0];
    let (top_edges, top_secs, top_rss) = *rows.last().expect("at least one scale");
    let time_growth = (top_secs / top_edges as f64) / (base_secs / base_edges as f64);
    let rss_growth = top_rss / base_rss;
    let top_medges = top_edges as f64 / 1e6 / top_secs;
    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {VERTICES}, \"k\": {K}, \"mem_budget_mb\": {BUDGET_MB}}},"
    );
    println!("  \"scales\": [\n{}\n  ],", row_json.join(",\n"));
    println!(
        "  \"top\": {{\"edges\": {top_edges}, \"medges_per_sec\": {top_medges:.3}, \"peak_rss_mb\": {top_rss:.1}}},"
    );
    println!("  \"time_per_edge\": {{\"growth_ratio\": {time_growth:.3}}},");
    println!("  \"peak_rss\": {{\"growth_ratio\": {rss_growth:.3}}}");
    println!("}}");
}

/// Child: one budgeted serial job over the file; prints seconds + VmHWM.
fn run_child(input: &str) {
    let start = Instant::now();
    let mut sink = tps_core::sink::NullSink;
    tps_io::run_job(
        tps_core::job::JobSpec::path(Path::new(input))
            .k(K)
            .threads(tps_core::job::ThreadMode::Serial)
            .mem_budget_mb(BUDGET_MB)
            .extra_sink(&mut sink),
    )
    .expect("budgeted serial partition");
    let seconds = start.elapsed().as_secs_f64();
    let peak_kb = vm_hwm_kb().unwrap_or(0);
    println!("{seconds:.3} {peak_kb}");
}
