//! Table II: space complexity — verified empirically with the counting
//! allocator.
//!
//! Expectations: 2PS-L and HDRF grow with `k` (the `O(|V|·k)` replication
//! matrix); DBH is flat in `k` (`O(|V|)` degrees); Grid is `O(1)`; NE is
//! dominated by the `O(|E|)` CSR and dwarfs the streaming partitioners.
//!
//! Run: `cargo run --release -p tps-bench --bin table2_space_complexity`

use tps_baselines::{DbhPartitioner, GridPartitioner, HdrfPartitioner, NePartitioner};
use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();

    println!("## Analytic complexity (paper Table II)\n");
    let mut analytic = Table::new(vec!["name", "type", "space complexity"]);
    analytic.row(vec!["2PS-L", "Stateful Out-of-Core", "O(|V| * k)"]);
    analytic.row(vec!["HDRF", "Stateful Streaming", "O(|V| * k)"]);
    analytic.row(vec!["ADWISE", "Stateful Streaming", "O(|V| * k + b)"]);
    analytic.row(vec!["DBH", "Stateless Streaming", "O(|V|)"]);
    analytic.row(vec!["Grid", "Stateless Streaming", "O(1)"]);
    analytic.row(vec!["(in-memory)", "In-memory", ">= O(|E|)"]);
    println!("{}", analytic.render());

    println!("## Measured peak heap (MB) on OK, k in {{4, 64, 256}}\n");
    let graph = Dataset::Ok.generate_scaled(args.scale);
    eprintln!(
        "# |V| = {}, |E| = {}",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut table = Table::new(vec!["algorithm", "k=4", "k=64", "k=256", "growth 256/4"]);
    let mut algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::default()),
        Box::new(GridPartitioner::default()),
        Box::new(NePartitioner),
    ];
    for p in algos.iter_mut() {
        let mut peaks = Vec::new();
        for &k in &[4u32, 64, 256] {
            let mut stream = graph.stream();
            let out = JobSpec::stream(&mut stream)
                .partitioner(p.as_mut())
                .params(&PartitionParams::new(k))
                .num_vertices(graph.num_vertices())
                .run()
                .expect("partitioning failed");
            peaks.push(out.peak_heap_bytes as f64 / 1e6);
        }
        table.row(vec![
            p.name(),
            format!("{:.2}", peaks[0]),
            format!("{:.2}", peaks[1]),
            format!("{:.2}", peaks[2]),
            format!("{:.1}x", peaks[2] / peaks[0].max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    args.maybe_write_csv("table2_space_complexity", &table);
}
