//! Reader-backend comparison: buffered vs mmap vs prefetch, v1 vs v2.
//!
//! Writes an R-MAT-skewed stand-in graph as both TPSBEL1 and TPSBEL2, then
//! times a 4-pass streaming *epoch* per (format × backend) combination — one
//! open, then `EPOCH_PASSES` (4) sequential fingerprint passes, the exact
//! access pattern of a 2PS-L partitioning run (degree, clustering,
//! prepartition, partition) — and a full 2PS-L partition per backend on the
//! v1 file, emitting a JSON report on stdout. The headline
//! `medges_per_sec` is the per-pass average over the epoch; the cold
//! (first, checksummed + decoded) and warm passes are also reported
//! separately so the cold-pass premium stays visible. Warm v2 passes are
//! cache-served only when the file's decoded form fits the decode-cache
//! budget — the cache is all-or-nothing at open (job budget share via
//! `--mem-budget-mb`, else `TPS_V2_DECODE_CACHE_MB`, default 64 MiB; see
//! crates/io/README.md) — which holds for every bench scale here; over
//! budget, warm passes re-decode and look like cold ones. The `v2_vs_v1`
//! section reports per-backend epoch throughput ratios, which are robust
//! to container-speed drift unlike absolute Medges/s.
//!
//! Every backend must observe the bit-identical edge order — the paper's
//! multi-pass algorithms depend on it — so each pass is fingerprinted with
//! an order-sensitive FNV-1a hash and the run aborts on divergence.
//!
//! Run: `cargo run --release -p tps-bench --bin io_readers -- [--scale f] [--repeats n]`

use std::time::Instant;

use tps_bench::harness::BenchArgs;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::write_binary_edge_list;
use tps_graph::stream::EdgeStream;
use tps_io::{open_edge_stream, write_v2_edge_list, ReaderBackend};

/// Order-sensitive stream fingerprint (FNV-1a over the edge byte sequence).
fn stream_fingerprint(stream: &mut dyn EdgeStream) -> std::io::Result<(u64, u64)> {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut n = 0u64;
    stream.reset()?;
    while let Some(e) = stream.next_edge()? {
        for b in e.src.to_le_bytes().into_iter().chain(e.dst.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        n += 1;
    }
    Ok((h, n))
}

fn main() {
    let args = BenchArgs::from_env();
    let dir = std::env::temp_dir().join(format!("tps-io-readers-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let v1_path = dir.join("graph.bel");
    let v2_path = dir.join("graph.bel2");

    // The OK stand-in is R-MAT-derived: skewed degrees and skewed ids, the
    // case the v2 varint encoding targets.
    let graph = Dataset::Ok.generate_scaled(args.scale);
    write_binary_edge_list(
        &v1_path,
        graph.num_vertices(),
        graph.edges().iter().copied(),
    )
    .expect("write v1");
    write_v2_edge_list(
        &v2_path,
        graph.num_vertices(),
        graph.edges().iter().copied(),
        tps_io::v2::DEFAULT_CHUNK_EDGES,
    )
    .expect("write v2");
    let v1_bytes = std::fs::metadata(&v1_path).unwrap().len();
    let v2_bytes = std::fs::metadata(&v2_path).unwrap().len();

    const EPOCH_PASSES: usize = 4;
    #[derive(Default)]
    struct Acc {
        best_epoch: f64,
        best_cold: f64,
        best_warm: f64,
        total_epoch: f64,
    }
    let mut accs: std::collections::BTreeMap<(&str, &str), Acc> = std::collections::BTreeMap::new();
    let mut reference: Option<(u64, u64)> = None;
    // Repeats are the OUTER loop so each repeat measures v1 and v2
    // back-to-back per backend: the container CPU clock drifts over a run
    // (turbo at the start, sustained later), and interleaving keeps each
    // ratio's numerator and denominator under the same clock.
    for _ in 0..args.repeats {
        for backend in ReaderBackend::ALL {
            for (format, path) in [("v1", &v1_path), ("v2", &v2_path)] {
                let mut stream = open_edge_stream(path, backend).expect("open stream");
                let start = Instant::now();
                let (hash, n) = stream_fingerprint(&mut stream).expect("stream pass");
                let cold = start.elapsed().as_secs_f64();
                let expected = *reference.get_or_insert((hash, n));
                assert_eq!(
                    (hash, n),
                    expected,
                    "backend {} diverged from reference edge order on {format}",
                    backend.name()
                );
                let warm_start = Instant::now();
                for pass in 1..EPOCH_PASSES {
                    let got = stream_fingerprint(&mut stream).expect("stream pass");
                    assert_eq!(
                        got,
                        expected,
                        "backend {} diverged on warm pass {pass} of {format}",
                        backend.name()
                    );
                }
                let warm = warm_start.elapsed().as_secs_f64();
                let epoch = start.elapsed().as_secs_f64();
                let acc = accs.entry((format, backend.name())).or_insert(Acc {
                    best_epoch: f64::INFINITY,
                    best_cold: f64::INFINITY,
                    best_warm: f64::INFINITY,
                    total_epoch: 0.0,
                });
                acc.best_epoch = acc.best_epoch.min(epoch);
                acc.best_cold = acc.best_cold.min(cold);
                acc.best_warm = acc.best_warm.min(warm);
                acc.total_epoch += epoch;
            }
        }
    }

    let edges = graph.num_edges() as f64;
    let mut results = Vec::new();
    for (format, _) in [("v1", &v1_path), ("v2", &v2_path)] {
        for backend in ReaderBackend::ALL {
            let acc = &accs[&(format, backend.name())];
            results.push(format!(
                "    {{\"format\": \"{format}\", \"backend\": \"{}\", \"passes\": {EPOCH_PASSES}, \
                 \"epoch_seconds\": {:.6}, \"medges_per_sec\": {:.2}, \
                 \"cold_medges_per_sec\": {:.2}, \"warm_medges_per_sec\": {:.2}}}",
                backend.name(),
                acc.best_epoch,
                edges * EPOCH_PASSES as f64 / acc.best_epoch / 1e6,
                edges / acc.best_cold / 1e6,
                edges * (EPOCH_PASSES - 1) as f64 / acc.best_warm / 1e6
            ));
        }
    }

    // Per-backend v2/v1 epoch-throughput ratios: the size saving is only
    // free once these hold at >= 1.0. Ratios use *total* epoch time over
    // all (interleaved) repeats, not best-of — clock drift hits both sides
    // equally and cancels, where best-of favors whichever format caught
    // the fastest clock window.
    let mut ratio_results = Vec::new();
    for backend in ReaderBackend::ALL {
        let v1 = &accs[&("v1", backend.name())];
        let v2 = &accs[&("v2", backend.name())];
        ratio_results.push(format!(
            "    {{\"backend\": \"{}\", \"ratio\": {:.4}, \
             \"v1_medges_per_sec\": {:.2}, \"v2_medges_per_sec\": {:.2}}}",
            backend.name(),
            v1.total_epoch / v2.total_epoch,
            edges * EPOCH_PASSES as f64 / v1.best_epoch / 1e6,
            edges * EPOCH_PASSES as f64 / v2.best_epoch / 1e6
        ));
    }

    // End-to-end: a full 2PS-L partition (4 passes over the stream) per
    // backend on the v1 file.
    let mut partition_results = Vec::new();
    for backend in ReaderBackend::ALL {
        let mut best = f64::INFINITY;
        for _ in 0..args.repeats {
            let mut stream = open_edge_stream(&v1_path, backend).expect("open stream");
            let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
            let start = Instant::now();
            p.partition(&mut stream, &PartitionParams::new(32), &mut NullSink)
                .expect("partition");
            best = best.min(start.elapsed().as_secs_f64());
        }
        partition_results.push(format!(
            "    {{\"backend\": \"{}\", \"partition_seconds\": {best:.6}}}",
            backend.name()
        ));
    }

    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"scale\": {}}},",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );
    println!(
        "  \"files\": {{\"v1_bytes\": {v1_bytes}, \"v2_bytes\": {v2_bytes}, \"v2_ratio\": {:.4}}},",
        v2_bytes as f64 / v1_bytes as f64
    );
    println!("  \"stream_pass\": [\n{}\n  ],", results.join(",\n"));
    println!("  \"v2_vs_v1\": [\n{}\n  ],", ratio_results.join(",\n"));
    println!(
        "  \"partition_2psl_k32\": [\n{}\n  ]",
        partition_results.join(",\n")
    );
    println!("}}");

    assert!(
        v2_bytes < v1_bytes,
        "v2 ({v2_bytes} B) must be smaller than v1 ({v1_bytes} B)"
    );
    std::fs::remove_dir_all(&dir).ok();
}
