//! Table IV: partitioning + distributed PageRank end to end.
//!
//! For OK and WI at k = 32: replication factor, partitioning time (measured
//! on this machine), PageRank time (simulated Spark/GraphX cluster, 100
//! iterations) and the total. Paper findings to reproduce: neither the
//! best-quality partitioner (SNE / HEP-1) nor the fastest one (DBH) wins
//! the total; 2PS-L does. DBH FAILs on WI by overflowing the workers'
//! shuffle disks.
//!
//! Run: `cargo run --release -p tps-bench --bin table4_end_to_end`

use tps_baselines::{DbhPartitioner, HdrfPartitioner, HepPartitioner, SnePartitioner};
use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::VecSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::table::Table;
use tps_procsim::cost::simulate_pagerank;
use tps_procsim::{ClusterCostModel, DistributedGraph, PageRankConfig};

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn roster() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::hdrf_variant())),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::default()),
        Box::new(SnePartitioner::default()),
        Box::new(HepPartitioner::with_tau(1.0)),
    ]
}

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let pr = PageRankConfig {
        iterations: 100,
        ..Default::default()
    };
    let mut cost = ClusterCostModel::spark_like();
    // The shuffle-disk budget scales with the dataset like the paper's fixed
    // 35 GB does with its graphs.
    cost.worker_disk_budget *= args.scale;

    let mut table = Table::new(vec![
        "graph",
        "algorithm",
        "rep. factor",
        "partitioning (s)",
        "pagerank (sim s)",
        "total (s)",
    ]);
    for ds in [Dataset::Ok, Dataset::Wi] {
        let graph = ds.generate_scaled(args.scale);
        eprintln!(
            "# {}: |V| = {}, |E| = {}",
            ds.abbrev(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for mut p in roster() {
            let mut sink = VecSink::new();
            let mut stream = graph.stream();
            let out = JobSpec::stream(&mut stream)
                .partitioner(p.as_mut())
                .params(&PartitionParams::new(k))
                .num_vertices(graph.num_vertices())
                .extra_sink(&mut sink)
                .run()
                .expect("partitioning failed");
            let layout =
                DistributedGraph::from_assignments(sink.assignments(), graph.num_vertices(), k);
            let part_s = out.seconds();
            match simulate_pagerank(&layout, &pr, &cost) {
                Ok(sim) => {
                    let pr_s = sim.simulated_time.as_secs_f64();
                    table.row(vec![
                        ds.abbrev().to_string(),
                        out.name.clone(),
                        format!("{:.2}", out.metrics.replication_factor),
                        format!("{part_s:.2}"),
                        format!("{pr_s:.2}"),
                        format!("{:.2}", part_s + pr_s),
                    ]);
                }
                Err(spill) => {
                    eprintln!("# {} on {}: {spill}", out.name, ds.abbrev());
                    table.row(vec![
                        ds.abbrev().to_string(),
                        out.name.clone(),
                        format!("{:.2}", out.metrics.replication_factor),
                        format!("{part_s:.2}"),
                        "FAIL".to_string(),
                        "FAIL".to_string(),
                    ]);
                }
            }
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("table4_end_to_end", &table);
}
