//! Peak-RSS measurement of phase 2 across execution modes (the CI
//! `mem-smoke` job).
//!
//! The paper's Table II bounds replication state at `O(|V|·k)` bits; this
//! bench pins that bound *per execution mode* with the operating system's
//! own accounting. The parent process generates a G(n,m) graph and writes
//! it to a v1 `.bel` file **once**; each mode (serial, `--threads 4`,
//! `--threads 8`, a 2-worker `--dist-local` run) then executes in a
//! **fresh child process** that streams the file out-of-core (so neither
//! graph generation nor another mode's high-water mark can leak into the
//! measurement) and reads `VmHWM` from `/proc/self/status` right before
//! and after the partitioning call. The reported `peak_rss_mb` is the
//! child's process-wide high-water mark after phase 2 — the number the
//! `perf_gate` lower-is-better `*.peak_rss_mb` ceilings in
//! `bench/baselines/ci.json` guard.
//!
//! The graph is a planted-partition web-graph stand-in with `|E| = 8|V|`
//! (the generator's intended mean degree, so pre-partitioning dominates
//! phase 2) and k = 4096 (the memory-stress regime the ISSUE's motivating
//! work targets), sized so the replication matrix (`|V|·k` bits)
//! dominates the heap: a mode that keeps one matrix copy per worker is
//! immediately visible as a multiple of the serial peak.
//! Parallel modes replay assignments through spill-backed spools (a fixed
//! budget) so the `O(|E|)` replay buffers do not mask the matrix term —
//! the same `--spill-budget-mb` mechanism the CLI exposes.
//!
//! A second, vertex-heavy graph (mean degree 2, small k) drives the
//! **out-of-core pair**: `oc_unpaged` runs the plain serial job, `oc_paged`
//! the identical job under `--mem-budget-mb` (cluster state paged through
//! `tps-io`'s on-disk page store). Their gated ceilings are committed far
//! apart, so the gate fails if paging silently stops evicting. Output is
//! bit-identical between the two by construction (see
//! `tests/tests/out_of_core.rs`).
//!
//! Run: `cargo run --release -p tps-bench --bin mem_peak -- [--quick]`
//! (`--mode NAME --input FILE` is the internal child-process entry point.)

use std::path::Path;
use std::time::Instant;

use tps_core::parallel::ParallelRunner;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_dist::run_dist_local;
use tps_graph::gen::planted::{self, PlantedConfig};
use tps_io::SpillSpoolFactory;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

/// The measured modes, in report order.
const MODES: [&str; 4] = ["serial", "t4", "t8", "dist2"];

/// The out-of-core modes: same serial pipeline over a second, vertex-heavy
/// graph, with and without a `--mem-budget-mb` budget. Gated as a pair —
/// `oc_paged`'s ceiling sits well below `oc_unpaged`'s measured peak, so a
/// paging regression (cluster state silently resident again) fails the
/// gate rather than just burning memory.
const OC_MODES: [&str; 2] = ["oc_unpaged", "oc_paged"];

const DEFAULT_K: u32 = 4096;
/// k for the out-of-core pair: small, so `O(|V|)` cluster state — the term
/// the paged table exists to bound — dominates the child's heap instead of
/// the `O(|V|·k)` replication matrix.
const OC_K: u32 = 8;
/// `--mem-budget-mb` for `oc_paged`. The OC graph's cluster state is an
/// order of magnitude bigger (the ≥10× regime the ISSUE gates), so the
/// budget only holds if pages actually evict.
const OC_BUDGET_MB: u64 = 2;
const SPILL_BUDGET_BYTES: u64 = 4 << 20;
const SEED: u64 = 0xA11C;

/// The bench graph's generator configuration: strongly clusterable
/// communities (low mixing, no hub skew, community sizes well above the
/// mean degree) so that — together with the re-streaming clustering
/// passes below — phase 2 is dominated by the pre-partitioning subpass
/// and by replication state, the term this bench exists to bound.
fn bench_config(vertices: u64, edges: u64) -> PlantedConfig {
    PlantedConfig {
        mixing: 0.04,
        min_community: 24,
        max_community: 48,
        hub_skew: 1.0,
        ..PlantedConfig::web(vertices, edges)
    }
}

/// Clustering passes (paper Fig. 7/8 re-streaming): they let the
/// streaming clustering recover the planted communities, which is what
/// keeps the scoring subpass — and with it each worker's private overlay —
/// small.
const CLUSTERING_PASSES: u32 = 4;

/// Balance factor for the memory bench. The paper's α = 1.05 at high k
/// puts every partition under constant cap pressure, so commits scatter
/// through the least-loaded fallback — measuring cap-pressure noise, not
/// the replication-state bound this bench exists to pin. A loose α keeps
/// the fallback rate (and the scatter) negligible.
const BALANCE_ALPHA: f64 = 4.0;

/// Graph dimensions: (vertices, edges).
fn dims(quick: bool) -> (u64, u64) {
    if quick {
        (400_000, 3_200_000)
    } else {
        (800_000, 6_400_000)
    }
}

/// Out-of-core graph dimensions: vertex-heavy (mean degree 2), so the
/// `O(|V|)` cluster table is the dominant heap term and is ≥10× the
/// [`OC_BUDGET_MB`] budget.
fn oc_dims(quick: bool) -> (u64, u64) {
    if quick {
        (1_000_000, 2_000_000)
    } else {
        (1_500_000, 3_000_000)
    }
}

/// `VmHWM` (peak resident set) of this process, in KiB. `None` off Linux.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn mb(kb: u64) -> f64 {
    kb as f64 / 1024.0
}

fn main() {
    let mut quick = false;
    let mut k = DEFAULT_K;
    let mut mode: Option<String> = None;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--k" => {
                k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--k needs a positive integer"));
            }
            "--mode" => mode = Some(args.next().unwrap_or_else(|| die("--mode needs a value"))),
            "--input" => input = Some(args.next().unwrap_or_else(|| die("--input needs a value"))),
            "--help" | "-h" => {
                eprintln!("options: [--quick]   (--mode/--input form the child entry point)");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    match (mode, input) {
        (Some(m), Some(path)) => run_child(&m, &path, k),
        (None, None) => run_parent(quick, k),
        _ => die("--mode and --input go together (child entry point)"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parent: materialise the graph as a v1 file, run every mode in a fresh
/// child process against it, and merge the rows.
fn run_parent(quick: bool, k: u32) {
    let exe = std::env::current_exe().expect("own executable path");
    let (vertices, edges) = dims(quick);
    let dir = std::env::temp_dir().join(format!("tps-mem-peak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let input = dir.join("g.bel");
    {
        let graph = planted::generate(&bench_config(vertices, edges), SEED);
        tps_graph::formats::binary::write_binary_edge_list(
            &input,
            graph.num_vertices(),
            graph.edges().iter().copied(),
        )
        .expect("write v1 edge file");
    }
    let (oc_vertices, oc_edges) = oc_dims(quick);
    let oc_input = dir.join("oc.bel");
    {
        // Lower mixing than the replication bench: inter-community edges
        // are the only non-local page accesses left after the sort below,
        // so µ directly sets the paging fault rate.
        let oc_config = PlantedConfig {
            mixing: 0.01,
            ..bench_config(oc_vertices, oc_edges)
        };
        let graph = planted::generate(&oc_config, SEED ^ 1);
        // Endpoint-sort before writing: out-of-core paging needs stream
        // locality, and the generator's shuffled community order would make
        // every edge fault a cold page (the standard preprocessing step for
        // any bounded-memory streaming pass; see docs/OPERATIONS.md). Both
        // oc rows stream this same sorted file, so the comparison is fair
        // and the pair stays bit-identical.
        let mut edges = graph.edges().to_vec();
        edges.sort_by_key(|e| (e.src.min(e.dst), e.src.max(e.dst)));
        tps_graph::formats::binary::write_binary_edge_list(
            &oc_input,
            graph.num_vertices(),
            edges.iter().copied(),
        )
        .expect("write out-of-core v1 edge file");
    }
    let mut rows = Vec::new();
    let children = MODES
        .iter()
        .map(|m| (*m, &input, k))
        .chain(OC_MODES.iter().map(|m| (*m, &oc_input, OC_K)));
    for (mode, input, k) in children {
        let out = std::process::Command::new(&exe)
            .arg("--mode")
            .arg(mode)
            .arg("--input")
            .arg(input)
            .arg("--k")
            .arg(k.to_string())
            .output()
            .expect("spawn mem_peak child");
        if !out.status.success() {
            eprintln!("mode {mode} failed:");
            eprintln!("{}", String::from_utf8_lossy(&out.stderr));
            std::process::exit(1);
        }
        let row = String::from_utf8(out.stdout).expect("child emits UTF-8");
        rows.push(format!("    {}", row.trim()));
    }
    if std::env::var_os("TPS_MEM_KEEP").is_none() {
        std::fs::remove_dir_all(&dir).ok();
    } else {
        eprintln!("kept {}", input.display());
    }
    println!("{{");
    println!("  \"graph\": {{\"vertices\": {vertices}, \"edges\": {edges}, \"k\": {k}}},");
    println!(
        "  \"oc_graph\": {{\"vertices\": {oc_vertices}, \"edges\": {oc_edges}, \"k\": {OC_K}, \"mem_budget_mb\": {OC_BUDGET_MB}}},"
    );
    println!(
        "  \"spill_budget_mb\": {},",
        SPILL_BUDGET_BYTES as f64 / (1 << 20) as f64
    );
    println!("  \"modes\": [\n{}\n  ]", rows.join(",\n"));
    println!("}}");
}

/// Child: stream the file out-of-core through one mode, report its VmHWM.
fn run_child(mode: &str, input: &str, k: u32) {
    let source = tps_io::open_ranged_backend(Path::new(input), tps_io::ReaderBackend::Buffered)
        .expect("open v1 edge file");
    let info = source.info();
    let params = PartitionParams::with_alpha(k, BALANCE_ALPHA);
    let config = TwoPhaseConfig::with_passes(CLUSTERING_PASSES);
    let spill_dir = std::env::temp_dir().join(format!("tps-mem-peak-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("spill dir");

    let pre_kb = vm_hwm_kb().unwrap_or(0);
    let start = Instant::now();
    let mut sink = NullSink;
    match mode {
        "serial" => {
            let mut stream = source.open_range(0, info.num_edges).expect("full range");
            TwoPhasePartitioner::new(config)
                .partition(&mut *stream, &params, &mut sink)
                .expect("serial partition");
        }
        "t4" | "t8" => {
            let threads = if mode == "t4" { 4 } else { 8 };
            let factory = SpillSpoolFactory::new(&spill_dir, mode, SPILL_BUDGET_BYTES, threads)
                .expect("spill factory");
            ParallelRunner::new(config, threads)
                .with_spool_factory(std::sync::Arc::new(factory))
                .partition(&*source, &params, &mut sink)
                .expect("parallel partition");
        }
        "dist2" => {
            run_dist_local(&*source, &config, &params, 2, &mut sink).expect("dist-local partition");
        }
        // The out-of-core pair runs the whole serial job through the
        // JobSpec front door (the same path `tps partition --mem-budget-mb`
        // takes), differing only in the budget — so the RSS delta between
        // the two rows is exactly what cluster paging buys.
        "oc_unpaged" | "oc_paged" => {
            drop(source);
            let mut spec = tps_core::job::JobSpec::path(input)
                .k(k)
                .alpha(BALANCE_ALPHA)
                .threads(tps_core::job::ThreadMode::Serial)
                .two_phase(config)
                .extra_sink(&mut sink);
            if mode == "oc_paged" {
                spec = spec.mem_budget_mb(OC_BUDGET_MB);
            }
            tps_io::run_job(spec).expect("out-of-core partition");
        }
        other => die(&format!(
            "unknown mode {other:?} (serial|t4|t8|dist2|oc_unpaged|oc_paged)"
        )),
    }
    let seconds = start.elapsed().as_secs_f64();
    let heap_peak_mb = tps_metrics::alloc::peak_bytes() as f64 / (1 << 20) as f64;
    let post_kb = vm_hwm_kb().unwrap_or(0);
    std::fs::remove_dir_all(&spill_dir).ok();
    println!(
        "{{\"mode\": \"{mode}\", \"peak_rss_mb\": {:.1}, \"pre_partition_mb\": {:.1}, \"heap_peak_mb\": {heap_peak_mb:.1}, \"seconds\": {seconds:.3}}}",
        mb(post_kb),
        mb(pre_kb)
    );
}
