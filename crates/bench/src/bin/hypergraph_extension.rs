//! Extension experiment: 2PS-HL on hypergraphs (the paper's future work,
//! §VII) vs streaming baselines.
//!
//! Mirrors the Fig. 2 format: replication factor and run-time at
//! k ∈ {4, 32, 128, 256} on a planted co-membership hypergraph, comparing
//! 2PS-HL against hashed assignment and a min-max streaming greedy
//! (Alistarh et al. style, `O(|H|·k)`).
//!
//! Run: `cargo run --release -p tps-bench --bin hypergraph_extension`

use std::time::Instant;

use tps_bench::harness::BenchArgs;
use tps_hypergraph::baselines::{MinMaxGreedyPartitioner, RandomHyperPartitioner};
use tps_hypergraph::gen::{planted_hypergraph, PlantedHyperConfig};
use tps_hypergraph::{HyperPartitioner, HyperQualityTracker, TwoPhaseHyperPartitioner};
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();
    let cfg = PlantedHyperConfig {
        vertices: (40_000.0 * args.scale) as u64,
        hyperedges: (120_000.0 * args.scale) as u64,
        community_size: 40,
        mixing: 0.1,
        min_arity: 2,
        max_arity: 6,
    };
    let hg = planted_hypergraph(&cfg, 0xC0A07 ^ 7);
    eprintln!(
        "# hypergraph: {} vertices, {} hyperedges, {} pins",
        hg.num_vertices(),
        hg.num_hyperedges(),
        hg.total_pins()
    );

    let mut table = Table::new(vec![
        "k",
        "algorithm",
        "replication factor",
        "time (s)",
        "alpha",
    ]);
    for &k in &[4u32, 32, 128, 256] {
        let mut algos: Vec<Box<dyn HyperPartitioner>> = vec![
            Box::new(TwoPhaseHyperPartitioner::default()),
            Box::new(MinMaxGreedyPartitioner),
            Box::new(RandomHyperPartitioner::default()),
        ];
        for p in algos.iter_mut() {
            let mut rf = tps_metrics::stats::Summary::new();
            let mut time = tps_metrics::stats::Summary::new();
            let mut alpha = tps_metrics::stats::Summary::new();
            for _ in 0..args.repeats {
                let mut tracker = HyperQualityTracker::new(hg.num_vertices(), k);
                let mut stream = hg.stream();
                let start = Instant::now();
                p.partition(&mut stream, k, 1.05, &mut |h, part| tracker.record(h, part))
                    .expect("partitioning failed");
                time.add(start.elapsed().as_secs_f64());
                let m = tracker.finish();
                rf.add(m.replication_factor);
                alpha.add(m.alpha);
            }
            table.row(vec![
                k.to_string(),
                p.name(),
                rf.display(),
                time.display(),
                format!("{:.3}", alpha.mean()),
            ]);
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("hypergraph_extension", &table);
}
