//! The CI perf-regression gate.
//!
//! Merges the JSON reports of `io_readers` and `parallel_scaling` into one
//! `BENCH_ci.json`, extracts the gated metrics, and compares them against a
//! committed baseline (`bench/baselines/ci.json`): any throughput metric
//! below `floor × (1 − tolerance)` — or any lower-is-better ceiling
//! (`*.rf_vs_serial` replication ratios, `*.peak_rss_mb` memory bounds,
//! `*.trace_overhead.slowdown` tracing-overhead ratios; see
//! `tps_bench::gate::direction`) above `ceiling × (1 + tolerance)` —
//! fails the run with a non-zero exit. Slowdown ceilings compare exactly:
//! their committed value already encodes the headroom.
//!
//! ```text
//! # gate (CI):
//! perf_gate --io io.json --scaling par.json \
//!           --baseline bench/baselines/ci.json --out BENCH_ci.json
//! perf_gate --dist dist.json --baseline bench/baselines/ci.json   # dist-smoke job
//! perf_gate --mem mem_peak.json --baseline bench/baselines/ci.json # mem-smoke job
//! perf_gate --scale scale_up.json --baseline bench/baselines/ci.json # scale-smoke job
//!
//! # refresh the baseline (derated so other machines' jitter doesn't trip
//! # the 25% gate — the committed floor is derate × measured):
//! perf_gate --io io.json --scaling par.json --derate 0.5 \
//!           --write-baseline bench/baselines/ci.json
//! ```
//!
//! The committed baseline may hold floors for more report families than one
//! invocation supplies (CI gates io + scaling in `perf-smoke` and dist in
//! `dist-smoke`); floors are scoped to the supplied sections, and when
//! `--write-baseline` targets an existing file, floors of *unsupplied*
//! sections are carried over instead of dropped.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tps_bench::gate::{compare, extract_metrics, is_ceiling, parse_json, scope_baseline, Json};

struct Args {
    io: Option<String>,
    scaling: Option<String>,
    dist: Option<String>,
    mem: Option<String>,
    serve: Option<String>,
    scale: Option<String>,
    baseline: Option<String>,
    out: Option<String>,
    write_baseline: Option<String>,
    tolerance: f64,
    derate: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        io: None,
        scaling: None,
        dist: None,
        mem: None,
        serve: None,
        scale: None,
        baseline: None,
        out: None,
        write_baseline: None,
        tolerance: 0.25,
        derate: 1.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--io" => args.io = Some(value("io")?),
            "--scaling" => args.scaling = Some(value("scaling")?),
            "--dist" => args.dist = Some(value("dist")?),
            "--mem" => args.mem = Some(value("mem")?),
            "--serve" => args.serve = Some(value("serve")?),
            "--scale" => args.scale = Some(value("scale")?),
            "--baseline" => args.baseline = Some(value("baseline")?),
            "--out" => args.out = Some(value("out")?),
            "--write-baseline" => args.write_baseline = Some(value("write-baseline")?),
            "--tolerance" => {
                args.tolerance = value("tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance: expected a fraction like 0.25")?
            }
            "--derate" => {
                args.derate = value("derate")?
                    .parse()
                    .map_err(|_| "--derate: expected a fraction like 0.5")?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.io.is_none()
        && args.scaling.is_none()
        && args.dist.is_none()
        && args.mem.is_none()
        && args.serve.is_none()
        && args.scale.is_none()
    {
        return Err(
            "need at least one of --io / --scaling / --dist / --mem / --serve / --scale".into(),
        );
    }
    if args.baseline.is_none() && args.write_baseline.is_none() {
        return Err("need --baseline (gate mode) or --write-baseline".into());
    }
    Ok(args)
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    // Merge the per-bench reports into one document.
    let mut members = Vec::new();
    if let Some(p) = &args.io {
        members.push(("io_readers".to_string(), load_json(p)?));
    }
    if let Some(p) = &args.scaling {
        members.push(("parallel_scaling".to_string(), load_json(p)?));
    }
    if let Some(p) = &args.dist {
        members.push(("dist_scaling".to_string(), load_json(p)?));
    }
    if let Some(p) = &args.mem {
        members.push(("mem_peak".to_string(), load_json(p)?));
    }
    if let Some(p) = &args.serve {
        members.push(("serve_scaling".to_string(), load_json(p)?));
    }
    if let Some(p) = &args.scale {
        members.push(("scale_up".to_string(), load_json(p)?));
    }
    let sections: Vec<String> = members.iter().map(|(k, _)| k.clone()).collect();
    let merged = Json::Obj(members);
    let current = extract_metrics(&merged);
    if current.is_empty() {
        return Err("no gated metrics found in the supplied reports".into());
    }

    if let Some(out) = &args.out {
        std::fs::write(out, format!("{merged}\n")).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out} ({} gated metrics)", current.len());
    }

    if let Some(path) = &args.write_baseline {
        // Baseline = derated current metrics, as a flat metric→floor map.
        // Floors of sections this invocation didn't run — and the file's
        // policy comment — are carried over from the existing file so a
        // partial refresh can't drop them.
        let existing = load_json(path).ok();
        let mut floors_map: BTreeMap<String, f64> =
            match existing.as_ref().map(|e| e.get("metrics")) {
                Some(Some(Json::Obj(members))) => members
                    .iter()
                    .filter(|(k, _)| {
                        // Hand-set policy bounds (peak-RSS headroom,
                        // tracing-overhead budgets, serve update-cost
                        // bounds, v2/v1 parity floors) survive a refresh
                        // of their own section too (see the skip below).
                        k.ends_with(".peak_rss_mb")
                            || k.ends_with(".slowdown")
                            || k.ends_with(".update_ms_per_edge")
                            || k.ends_with(".update_scale_ratio")
                            || k.ends_with(".growth_ratio")
                            || k.ends_with(".ratio")
                            || !sections.iter().any(|s| k.starts_with(&format!("{s}.")))
                    })
                    .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                    .collect(),
                _ => BTreeMap::new(),
            };
        let mut skipped_rss = 0usize;
        for (k, v) in &current {
            if k.ends_with(".peak_rss_mb")
                || k.ends_with(".slowdown")
                || k.ends_with(".update_ms_per_edge")
                || k.ends_with(".update_scale_ratio")
                || k.ends_with(".growth_ratio")
                || k.ends_with(".ratio")
            {
                // RF ceilings are deterministic and written as measured;
                // peak-RSS, tracing-slowdown and serve update-cost
                // ceilings are NOT — they vary with allocator/runner, so
                // their headroom is set by hand (see the baseline
                // comment). Writing the measured value verbatim would
                // commit a zero-headroom ceiling that flakes on the next
                // runner; keep whatever the file holds. The `.ratio`
                // v2-vs-v1 parity floors are policy too — committed at
                // 1.0, not at whatever this machine happened to measure.
                skipped_rss += 1;
                continue;
            }
            // Remaining ceilings (RF ratios) are deterministic per worker
            // count: committed as measured, never derated.
            let bound = if is_ceiling(k) { *v } else { v * args.derate };
            floors_map.insert(k.clone(), round3(bound));
        }
        if skipped_rss > 0 {
            eprintln!(
                "note: {skipped_rss} hand-set bounds (*.peak_rss_mb / *.slowdown / \
                 *.update_ms_per_edge / *.update_scale_ratio / *.growth_ratio / *.ratio) \
                 left untouched — set their headroom by hand (see the baseline comment)"
            );
        }
        let floors = Json::Obj(
            floors_map
                .into_iter()
                .map(|(k, v)| (k, Json::Num(v)))
                .collect(),
        );
        let comment = existing
            .as_ref()
            .and_then(|e| e.get("comment"))
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| {
                format!(
                    "perf-gate floors: measured medges/s derated by {} — refresh with \
                     `perf_gate --write-baseline` (see crates/bench/src/bin/perf_gate.rs)",
                    args.derate
                )
            });
        let doc = Json::Obj(vec![
            ("comment".to_string(), Json::Str(comment)),
            ("metrics".to_string(), floors),
        ]);
        std::fs::write(path, format!("{doc}\n")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote baseline {path} ({} metrics)", current.len());
        return Ok(true);
    }

    let baseline_doc = load_json(args.baseline.as_deref().expect("checked above"))?;
    let baseline: BTreeMap<String, f64> = match baseline_doc.get("metrics") {
        Some(Json::Obj(members)) => members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
            .collect(),
        _ => return Err("baseline file has no \"metrics\" object".into()),
    };
    // Gate only the report families this invocation supplied (see module
    // docs) — other jobs gate the rest.
    let section_refs: Vec<&str> = sections.iter().map(String::as_str).collect();
    let baseline = scope_baseline(&baseline, &section_refs);
    if baseline.is_empty() {
        return Err(format!(
            "baseline has no floors for the supplied sections {section_refs:?} — \
             refresh it with --write-baseline"
        ));
    }

    eprintln!(
        "{:<44} {:>6} {:>10} {:>10} {:>7}",
        "metric", "kind", "bound", "current", "ratio"
    );
    for (metric, &bound) in &baseline {
        let cur = current.get(metric).copied().unwrap_or(0.0);
        let kind = if is_ceiling(metric) { "ceil" } else { "floor" };
        eprintln!(
            "{metric:<44} {kind:>6} {bound:>10.3} {cur:>10.3} {:>6.2}x",
            if bound > 0.0 { cur / bound } else { 0.0 }
        );
    }

    let regressions = compare(&baseline, &current, args.tolerance);
    if regressions.is_empty() {
        eprintln!(
            "perf gate OK: {} metrics within {:.0}% of their baseline bounds",
            baseline.len(),
            args.tolerance * 100.0
        );
        Ok(true)
    } else {
        for r in &regressions {
            if is_ceiling(&r.metric) {
                eprintln!(
                    "REGRESSION {}: {:.3} > {:.3} × (1 + {:.2}) [ratio {:.2}]",
                    r.metric, r.current, r.baseline, args.tolerance, r.ratio
                );
            } else {
                eprintln!(
                    "REGRESSION {}: {:.3} < {:.3} × (1 − {:.2}) [ratio {:.2}]",
                    r.metric, r.current, r.baseline, args.tolerance, r.ratio
                );
            }
        }
        Ok(false)
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
