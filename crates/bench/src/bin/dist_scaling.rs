//! Distributed scaling: the loopback coordinator/worker runtime against the
//! serial 2PS-L runner, end to end.
//!
//! Generates the R-MAT-skewed OK stand-in and runs full distributed
//! partitions (`tps_dist::run_dist_local` — real protocol frames over
//! loopback channel transports, one OS thread per worker) at 1/2/4 workers.
//! The JSON schema is identical to `parallel_scaling`'s (a `serial`
//! reference plus per-worker-count rows keyed `threads`), so the perf gate
//! reads it with the same extractor under the `dist_scaling.*` prefix and
//! speedup/overhead curves are directly comparable: the delta between a
//! `parallel_scaling` row and a `dist_scaling` row at the same count is the
//! protocol cost (serialisation + channel hops + coordinator merges).
//!
//! One-worker runs are asserted bit-compatible with serial quality, the
//! distributed analogue of `parallel_scaling`'s T=1 check (T=1 loopback ≡
//! T=1 in-process ≡ serial).
//!
//! Run: `cargo run --release -p tps-bench --bin dist_scaling -- [--scale f] [--repeats n] [--quick]`

use std::time::Instant;

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::sink::QualitySink;
use tps_core::two_phase::TwoPhaseConfig;
use tps_dist::run_dist_local;
use tps_graph::datasets::Dataset;

const K: u32 = 32;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = BenchArgs::from_env();
    let graph = Dataset::Ok.generate_scaled(args.scale);
    let params = PartitionParams::new(K);
    let config = TwoPhaseConfig::default();

    // Serial reference.
    let mut serial_best: Option<tps_core::runner::RunOutcome> = None;
    for _ in 0..args.repeats {
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .two_phase(config)
            .params(&params)
            .num_vertices(graph.num_vertices())
            .run()
            .expect("serial partition");
        if serial_best
            .as_ref()
            .is_none_or(|b| out.wall_time < b.wall_time)
        {
            serial_best = Some(out);
        }
    }
    let serial = serial_best.expect("at least one repeat");
    let serial_s = serial.seconds();
    let medges = graph.num_edges() as f64 / 1e6;

    let mut rows = Vec::new();
    for workers in WORKER_COUNTS {
        let mut best: Option<(f64, tps_metrics::quality::PartitionMetrics, u64)> = None;
        for _ in 0..args.repeats {
            let mut sink = QualitySink::new(graph.num_vertices(), K);
            let start = Instant::now();
            let report = run_dist_local(&graph, &config, &params, workers, &mut sink)
                .expect("distributed partition");
            let seconds = start.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(s, _, _)| seconds < *s) {
                best = Some((seconds, sink.finish(), report.counter("cap_overshoot")));
            }
        }
        let (seconds, metrics, cap_overshoot) = best.expect("at least one repeat");
        assert_eq!(
            metrics.num_edges,
            graph.num_edges(),
            "distributed runner dropped edges at {workers} workers"
        );
        if workers == 1 {
            // One worker runs the serial decision path end to end; quality
            // must match exactly, protocol overhead aside.
            assert_eq!(
                metrics.replication_factor, serial.metrics.replication_factor,
                "1-worker distributed RF diverged from serial"
            );
            assert_eq!(metrics.loads, serial.metrics.loads);
        }
        rows.push(format!(
            "    {{\"threads\": {workers}, \"seconds\": {seconds:.6}, \"medges_per_sec\": {:.3}, \"speedup\": {:.3}, \"rf\": {:.4}, \"rf_vs_serial\": {:.4}, \"alpha\": {:.4}, \"cap_overshoot\": {cap_overshoot}}}",
            medges / seconds,
            serial_s / seconds,
            metrics.replication_factor,
            metrics.replication_factor / serial.metrics.replication_factor,
            metrics.alpha,
        ));
    }

    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"scale\": {}, \"k\": {K}}},",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );
    println!(
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "  \"serial\": {{\"seconds\": {:.6}, \"medges_per_sec\": {:.3}, \"rf\": {:.4}, \"alpha\": {:.4}}},",
        serial_s,
        medges / serial_s,
        serial.metrics.replication_factor,
        serial.metrics.alpha
    );
    println!("  \"parallel\": [\n{}\n  ]", rows.join(",\n"));
    println!("}}");
}
