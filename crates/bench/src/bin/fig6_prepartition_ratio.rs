//! Figure 6: ratio of pre-partitioned vs remaining (scored) edges at k = 32.
//!
//! Paper finding: pre-partitioning dominates on web graphs (strong
//! communities → endpoint clusters co-located) and covers a smaller share on
//! social graphs. See EXPERIMENTS.md for the expected divergence on the
//! social stand-ins (R-MAT has weaker communities than real social graphs).
//!
//! Run: `cargo run --release -p tps-bench --bin fig6_prepartition_ratio`

use tps_bench::harness::BenchArgs;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::table::Table;

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let mut table = Table::new(vec![
        "graph",
        "prepartitioned",
        "remaining",
        "prepartitioned %",
    ]);
    for ds in Dataset::TABLE3 {
        let graph = ds.generate_scaled(args.scale);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let mut sink = NullSink;
        let mut stream = graph.stream();
        let report = p
            .partition(&mut stream, &PartitionParams::new(k), &mut sink)
            .expect("partitioning failed");
        let pre = report.counter("prepartitioned") + report.counter("prepartition_overflow");
        let rem = report.counter("remaining");
        table.row(vec![
            ds.abbrev().to_string(),
            pre.to_string(),
            rem.to_string(),
            format!("{:.1}", 100.0 * pre as f64 / (pre + rem).max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig6_prepartition_ratio", &table);
}
