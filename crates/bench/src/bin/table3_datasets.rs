//! Table III: the dataset inventory.
//!
//! Prints, for every dataset, the paper's real-world statistics next to the
//! synthetic stand-in actually generated at the chosen scale (plus its
//! binary edge-list size, the paper's "Size" column).
//!
//! Run: `cargo run --release -p tps-bench --bin table3_datasets [--scale f]`

use tps_bench::harness::BenchArgs;
use tps_graph::datasets::{Dataset, GraphKind};
use tps_metrics::table::{fmt_bytes, Table};

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(vec![
        "name",
        "type",
        "paper |V|",
        "paper |E|",
        "paper size",
        "gen |V|",
        "gen |E|",
        "gen size",
        "gen mean deg",
    ]);
    for ds in Dataset::ALL {
        let stats = ds.paper_stats();
        let g = ds.generate_scaled(args.scale);
        let gen_size = 24 + g.num_edges() * 8; // header + 8 B records
        table.row(vec![
            format!("{} ({})", ds.full_name(), ds.abbrev()),
            match ds.kind() {
                GraphKind::Social => "Social".to_string(),
                GraphKind::Web => "Web".to_string(),
            },
            format!("{:.1} M", stats.vertices as f64 / 1e6),
            format!("{:.1} M", stats.edges as f64 / 1e6),
            fmt_bytes(stats.binary_size_bytes),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            fmt_bytes(gen_size),
            format!("{:.1}", g.info().mean_degree()),
        ]);
    }
    println!("{}", table.render());
    args.maybe_write_csv("table3_datasets", &table);
}
