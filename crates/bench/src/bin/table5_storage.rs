//! Table V: partitioning time on different storage devices.
//!
//! 2PS-L streams the graph `3 + passes` times; on slow devices the re-reads
//! dominate. We run 2PS-L over a [`tps_storage::DeviceStream`] for each
//! Table V device (page cache / SSD at 938 MB/s / HDD at 158 MB/s) and
//! report measured CPU time + virtual-clock I/O time, with the slowdown
//! percentage vs the page cache — the paper's format.
//!
//! Run: `cargo run --release -p tps-bench --bin table5_storage`

use tps_bench::harness::BenchArgs;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::sink::NullSink;
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::table::{fmt_duration_secs, Table};
use tps_storage::{DeviceModel, DeviceStream};

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let mut table = Table::new(vec![
        "graph",
        "device",
        "cpu (s)",
        "sim io (s)",
        "total (s)",
        "vs page cache",
        "passes",
    ]);
    for ds in Dataset::TABLE3 {
        let graph = ds.generate_scaled(args.scale);
        // Measure the CPU cost once (best of `repeats`), then charge each
        // device's I/O on top — the devices differ only in I/O, and reusing
        // one CPU figure keeps scheduler noise out of the comparison.
        let mut cpu = f64::INFINITY;
        for _ in 0..args.repeats {
            let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
            let mut stream = graph.stream();
            let start = std::time::Instant::now();
            p.partition(&mut stream, &PartitionParams::new(k), &mut NullSink)
                .expect("partitioning failed");
            cpu = cpu.min(start.elapsed().as_secs_f64());
        }
        let mut cache_total = None;
        for device in DeviceModel::table5() {
            let mut stream = DeviceStream::new(graph.stream(), device);
            let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
            p.partition(&mut stream, &PartitionParams::new(k), &mut NullSink)
                .expect("partitioning failed");
            let acc = stream.account();
            let io = acc.simulated_io.as_secs_f64();
            let total = cpu + io;
            let base = *cache_total.get_or_insert(total);
            table.row(vec![
                ds.abbrev().to_string(),
                device.name.to_string(),
                format!("{cpu:.2}"),
                format!("{io:.2}"),
                fmt_duration_secs(total),
                format!("+{:.0} %", 100.0 * (total - base) / base),
                acc.passes.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("table5_storage", &table);
}
