//! Figure 4: the main evaluation — replication factor, run-time and memory
//! for every partitioner on every Table III graph at k ∈ {4, 32, 128, 256}.
//!
//! Mirrors the paper's run policy: ADWISE and the multilevel (METIS-class)
//! partitioner only run on the two smallest graphs (the paper aborted them
//! beyond 12 h); SNE refuses high k relative to its chunk capacity and is
//! reported as FAIL, exactly like the paper's "SNE FAIL" annotations.
//!
//! Run: `cargo run --release -p tps-bench --bin fig4_performance [--quick]`
//! (the full sweep at scale 1.0 takes tens of minutes; `--quick` runs a
//! reduced, representative sweep).

use tps_baselines::{
    AdwisePartitioner, DbhPartitioner, DnePartitioner, HdrfPartitioner, HepPartitioner,
    MultilevelPartitioner, NePartitioner, SnePartitioner,
};
use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::stats::Summary;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

/// Which algorithms run on which graph (paper §V + appendix policy).
fn roster(ds: Dataset, slow_ok: bool) -> Vec<Box<dyn Partitioner>> {
    let mut v: Vec<Box<dyn Partitioner>> = vec![
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::default()),
        Box::new(SnePartitioner::default()),
        Box::new(HepPartitioner::with_tau(1.0)),
        Box::new(HepPartitioner::with_tau(10.0)),
        Box::new(HepPartitioner::with_tau(100.0)),
        Box::new(NePartitioner),
        Box::new(DnePartitioner::default()),
    ];
    // ADWISE/multilevel only on the two smallest graphs (paper: aborted on
    // the rest).
    if slow_ok && matches!(ds, Dataset::Ok | Dataset::It) {
        v.push(Box::new(AdwisePartitioner::default()));
        v.push(Box::new(MultilevelPartitioner::default()));
    }
    v
}

fn main() {
    let args = BenchArgs::from_env();
    let ks: &[u32] = if args.scale < 0.5 {
        &[4, 32, 128]
    } else {
        &[4, 32, 128, 256]
    };

    let mut table = Table::new(vec![
        "graph",
        "k",
        "algorithm",
        "replication factor",
        "time (s)",
        "peak heap (MB)",
        "alpha",
    ]);
    for ds in Dataset::TABLE3 {
        let graph = ds.generate_scaled(args.scale);
        eprintln!(
            "# {}: |V| = {}, |E| = {}",
            ds.abbrev(),
            graph.num_vertices(),
            graph.num_edges()
        );
        for &k in ks {
            for mut p in roster(ds, true) {
                let name = p.name();
                // Slow partitioners run once (paper appendix: "for ADWISE and
                // METIS we only performed each partitioning experiment once").
                let repeats = if name == "ADWISE" || name == "Multilevel" {
                    1
                } else {
                    args.repeats
                };
                let mut rf = Summary::new();
                let mut time = Summary::new();
                let mut mem = Summary::new();
                let mut alpha = Summary::new();
                let mut failed = None;
                for _ in 0..repeats {
                    let mut stream = graph.stream();
                    match JobSpec::stream(&mut stream)
                        .partitioner(p.as_mut())
                        .params(&PartitionParams::new(k))
                        .num_vertices(graph.num_vertices())
                        .run()
                    {
                        Ok(out) => {
                            rf.add(out.metrics.replication_factor);
                            time.add(out.seconds());
                            mem.add(out.peak_heap_bytes as f64 / 1e6);
                            alpha.add(out.metrics.alpha);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match failed {
                    Some(_) => {
                        table.row(vec![
                            ds.abbrev().to_string(),
                            k.to_string(),
                            name,
                            "FAIL".to_string(),
                            "FAIL".to_string(),
                            String::new(),
                            String::new(),
                        ]);
                    }
                    None => {
                        table.row(vec![
                            ds.abbrev().to_string(),
                            k.to_string(),
                            name,
                            rf.display(),
                            time.display(),
                            format!("{:.1}", mem.mean()),
                            format!("{:.3}", alpha.mean()),
                        ]);
                    }
                }
            }
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig4_performance", &table);
}
