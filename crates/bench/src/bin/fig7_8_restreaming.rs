//! Figures 7 + 8: the re-streaming sweep.
//!
//! Normalised replication factor (Fig. 7) and normalised total run-time
//! (Fig. 8) of 2PS-L with 1–8 streaming clustering passes at k = 32, on the
//! OK/IT/TW/FR graphs. Paper findings: up to ~3.5 % RF reduction; 8 passes
//! roughly double the total run-time (clustering is a minor share of it).
//!
//! Run: `cargo run --release -p tps-bench --bin fig7_8_restreaming`

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_metrics::stats::Summary;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let datasets = [Dataset::Ok, Dataset::It, Dataset::Tw, Dataset::Fr];
    let mut table = Table::new(vec![
        "graph",
        "passes",
        "rf",
        "norm. rf",
        "time (s)",
        "norm. time",
    ]);
    for ds in datasets {
        let graph = ds.generate_scaled(args.scale);
        let mut base_rf = None;
        let mut base_time = None;
        for passes in 1..=8u32 {
            let mut rf = Summary::new();
            let mut time = Summary::new();
            for _ in 0..args.repeats {
                let mut stream = graph.stream();
                let out = JobSpec::stream(&mut stream)
                    .two_phase(TwoPhaseConfig::with_passes(passes))
                    .params(&PartitionParams::new(k))
                    .num_vertices(graph.num_vertices())
                    .run()
                    .expect("partitioning failed");
                rf.add(out.metrics.replication_factor);
                time.add(out.seconds());
            }
            let b_rf = *base_rf.get_or_insert(rf.mean());
            let b_t = *base_time.get_or_insert(time.mean());
            table.row(vec![
                ds.abbrev().to_string(),
                passes.to_string(),
                format!("{:.3}", rf.mean()),
                format!("{:.4}", rf.mean() / b_rf),
                format!("{:.3}", time.mean()),
                format!("{:.3}", time.mean() / b_t),
            ]);
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig7_8_restreaming", &table);
}
