//! Table I: time complexity — verified empirically.
//!
//! The paper's Table I is analytic; here we verify the two claims that
//! matter end to end:
//!
//! 1. **k-scaling** — 2PS-L's and DBH's run-times are flat in `k`, HDRF's
//!    (and 2PS-HDRF's) grow ~linearly: we report `time(k)/time(k_min)`.
//! 2. **|E|-scaling** — 2PS-L is linear in `|E|`: we report `time/|E|`
//!    across graph scales, which should be constant.
//!
//! Run: `cargo run --release -p tps-bench --bin table1_time_complexity`

use tps_baselines::{DbhPartitioner, HdrfPartitioner};
use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::stats::Summary;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn time_of(p: &mut dyn Partitioner, graph: &tps_graph::InMemoryGraph, k: u32, repeats: u32) -> f64 {
    let mut time = Summary::new();
    for _ in 0..repeats {
        let mut stream = graph.stream();
        let out = JobSpec::stream(&mut stream)
            .partitioner(p)
            .params(&PartitionParams::new(k))
            .num_vertices(graph.num_vertices())
            .run()
            .expect("partitioning failed");
        time.add(out.seconds());
    }
    time.mean()
}

fn main() {
    let args = BenchArgs::from_env();

    println!("## Analytic complexity (paper Table I)\n");
    let mut analytic = Table::new(vec!["name", "type", "time complexity"]);
    analytic.row(vec!["2PS-L", "Stateful Out-of-Core", "O(|E|)"]);
    analytic.row(vec!["HDRF", "Stateful Streaming", "O(|E| * k)"]);
    analytic.row(vec!["ADWISE", "Stateful Streaming", "O(|E| * k)"]);
    analytic.row(vec!["DBH", "Stateless Streaming", "O(|E|)"]);
    analytic.row(vec!["Grid", "Stateless Streaming", "O(|E|)"]);
    analytic.row(vec!["DNE", "In-memory", "O(d*|E|*(k+d)/(n*k))"]);
    analytic.row(vec!["METIS", "In-memory", "O((|V|+|E|)*log2(k))"]);
    analytic.row(vec!["HEP", "Hybrid", "O(|E|*(log|V|+k)+|V|)"]);
    println!("{}", analytic.render());

    // 1. k-scaling on the OK graph.
    println!("## Empirical k-scaling (times in s; ratio = time(k)/time(4))\n");
    let graph = Dataset::Ok.generate_scaled(args.scale);
    let ks = [4u32, 16, 64, 256];
    let mut table = Table::new(vec![
        "algorithm",
        "k=4",
        "k=16",
        "k=64",
        "k=256",
        "ratio 256/4",
    ]);
    let mut algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
        Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::hdrf_variant())),
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::default()),
    ];
    for p in algos.iter_mut() {
        let times: Vec<f64> = ks
            .iter()
            .map(|&k| time_of(p.as_mut(), &graph, k, args.repeats))
            .collect();
        table.row(vec![
            p.name(),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.3}", times[2]),
            format!("{:.3}", times[3]),
            format!("{:.1}x", times[3] / times[0].max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    args.maybe_write_csv("table1_k_scaling", &table);

    // 2. |E|-scaling for 2PS-L at k = 32.
    println!("## Empirical |E|-scaling for 2PS-L at k=32 (time/|E| should be flat)\n");
    let mut escale = Table::new(vec!["scale", "|E|", "time (s)", "ns per edge"]);
    for &s in &[0.25f64, 0.5, 1.0, 2.0] {
        let g = Dataset::Ok.generate_scaled(args.scale * s);
        let mut p = TwoPhasePartitioner::new(TwoPhaseConfig::default());
        let t = time_of(&mut p, &g, 32, args.repeats);
        escale.row(vec![
            format!("{s}"),
            g.num_edges().to_string(),
            format!("{t:.3}"),
            format!("{:.1}", t * 1e9 / g.num_edges() as f64),
        ]);
    }
    println!("{}", escale.render());
    args.maybe_write_csv("table1_e_scaling", &escale);
}
