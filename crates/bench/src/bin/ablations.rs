//! Ablations of 2PS-L's design choices (DESIGN.md §6).
//!
//! 1. Cluster volume-cap factor ∈ {0.5, 1.0, 2.0, ∞}.
//! 2. Cluster→partition mapping: Graham sorted vs unsorted first-fit.
//! 3. Pre-partitioning on/off.
//! 4. Clustering algorithm: bounded exact-degree (2PS-L) vs the original
//!    Hollocou partial-degree clustering feeding the same phase 2 (the
//!    paper's extension #1 motivation).
//!
//! Run: `cargo run --release -p tps-bench --bin ablations`

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::two_phase::{MappingStrategy, TwoPhaseConfig};
use tps_graph::datasets::Dataset;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn run_config(graph: &tps_graph::InMemoryGraph, config: TwoPhaseConfig, k: u32) -> (f64, f64, f64) {
    let mut stream = graph.stream();
    let out = JobSpec::stream(&mut stream)
        .two_phase(config)
        .params(&PartitionParams::new(k))
        .num_vertices(graph.num_vertices())
        .run()
        .expect("partitioning failed");
    let pre = out.report.counter("prepartitioned") as f64;
    let total = graph.num_edges().max(1) as f64;
    (out.metrics.replication_factor, out.seconds(), pre / total)
}

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let mut table = Table::new(vec![
        "graph",
        "variant",
        "rf",
        "time (s)",
        "prepartitioned %",
    ]);
    for ds in [Dataset::It, Dataset::Ok] {
        let graph = ds.generate_scaled(args.scale);
        let mut row = |variant: &str, cfg: TwoPhaseConfig| {
            let (rf, t, pre) = run_config(&graph, cfg, k);
            table.row(vec![
                ds.abbrev().to_string(),
                variant.to_string(),
                format!("{rf:.3}"),
                format!("{t:.3}"),
                format!("{:.1}", pre * 100.0),
            ]);
        };
        row("baseline (cap 0.5)", TwoPhaseConfig::default());
        for factor in [0.25f64, 1.0, 2.0] {
            row(
                &format!("cap factor {factor}"),
                TwoPhaseConfig {
                    volume_cap_factor: factor,
                    ..Default::default()
                },
            );
        }
        // "Unbounded" = a cap so large it never binds (factor k ⇒ cap = 2|E|).
        row(
            "cap unbounded",
            TwoPhaseConfig {
                volume_cap_factor: k as f64,
                ..Default::default()
            },
        );
        row(
            "unsorted mapping",
            TwoPhaseConfig {
                mapping: MappingStrategy::UnsortedFirstFit,
                ..Default::default()
            },
        );
        row(
            "no pre-partitioning",
            TwoPhaseConfig {
                prepartitioning: false,
                ..Default::default()
            },
        );
        row("2 clustering passes", TwoPhaseConfig::with_passes(2));
    }
    println!("{}", table.render());
    args.maybe_write_csv("ablations", &table);
}
