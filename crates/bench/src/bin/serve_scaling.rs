//! Serving scaling: online lookup throughput and incremental update cost.
//!
//! Partitions the R-MAT-skewed OK stand-in, promotes the result to a
//! `tps-serve` state and drives it over the zero-syscall loopback transport
//! (the in-process analogue of `tps serve` + `tps lookup`):
//!
//! * **lookup_qps** — batched (1024-edge) point lookups, full passes over
//!   the live edge set; every answer is verified bit-identical to the
//!   partitioner's assignment before the timed passes start.
//! * **update_ms_per_edge** — a fixed-size delta (remove + re-insert the
//!   same edges through the incremental engine), measured on the base
//!   graph *and* on a 10× graph with the **same absolute delta**. Their
//!   ratio (`update_scale_ratio`) is the paper-shaped claim that update
//!   cost scales with the delta, not the graph: a ratio near 1 means a
//!   10× graph does not make the same delta 10× slower. The per-edge work
//!   is O(k); what residual ratio remains is cache-hierarchy cost (the
//!   larger engine state falls out of L2/TLB reach), so the gate runs at
//!   `--quick` scale where both states are cache-resident and the ratio
//!   isolates algorithmic scaling.
//!
//! * **metrics_overhead** — the same full-pass lookup workload timed with
//!   the live-metrics histograms recording (the daemon's default) vs
//!   disabled (`tps_obs::set_metrics_enabled(false)`, which also skips the
//!   clock reads). The ratio (`slowdown`) pins "hot paths effectively
//!   free": a couple of relaxed atomic ops per request. Served answers
//!   are asserted bit-identical either way.
//!
//! The JSON report is gated by `perf_gate --serve`: `lookup_qps` is a
//! floor (measured on the instrumented default path), `update_ms_per_edge`
//! and `update_scale_ratio` are ceilings, and `metrics_overhead.slowdown`
//! is an exact-tolerance ceiling like the tracing one (see
//! `tps_bench::gate::direction` / `tolerance_override`).
//!
//! Run: `cargo run --release -p tps-bench --bin serve_scaling -- [--scale f] [--repeats n] [--quick]`

use std::sync::{Arc, RwLock};
use std::time::Instant;

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::sink::VecSink;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_graph::types::Edge;
use tps_serve::{spawn_loopback, ServeClient, ServeOptions, ServeState, ServerConfig};

const K: u32 = 32;
const LOOKUP_BATCH: usize = 1024;
const DELTA_EDGES: usize = 2000;
/// Remove+insert cycles folded into one timed sample: a single cycle is
/// sub-millisecond, so thread-wakeup jitter on the loopback round-trip
/// would otherwise dominate the measurement.
const CYCLES_PER_SAMPLE: usize = 8;

/// Partition `scale`× OK and return the assignments serving will load.
fn partition(scale: f64) -> (u64, Vec<(Edge, u32)>) {
    let graph = Dataset::Ok.generate_scaled(scale);
    let mut sink = VecSink::new();
    let mut stream = graph.stream();
    JobSpec::stream(&mut stream)
        .two_phase(TwoPhaseConfig::default())
        .params(&PartitionParams::new(K))
        .num_vertices(graph.num_vertices())
        .extra_sink(&mut sink)
        .run()
        .expect("partitioning failed");
    (graph.num_vertices(), sink.into_assignments())
}

/// A connected loopback client over a freshly promoted serving state.
fn client_for(
    assignments: &[(Edge, u32)],
    num_vertices: u64,
) -> (ServeClient, std::thread::JoinHandle<std::io::Result<()>>) {
    let state =
        ServeState::from_assignments(assignments, num_vertices, K, &ServeOptions::default())
            .expect("promoting assignments to serving state");
    let (transport, handle) = spawn_loopback(Arc::new(RwLock::new(state)), ServerConfig::default());
    let client = ServeClient::over(Box::new(transport)).expect("loopback handshake");
    (client, handle)
}

/// A contiguous stream-order run from the middle of the live edge set:
/// the fixed-size delta both graphs replay. A localized burst is the
/// workload model (churn clusters around active vertices), and it keeps
/// cache behavior comparable across graph sizes — a spread-out sample
/// would measure DRAM-miss amplification, not per-edge update cost.
fn pick_delta(assignments: &[(Edge, u32)], delta: usize) -> Vec<Edge> {
    let start = assignments.len() / 2;
    assignments[start..start + delta]
        .iter()
        .map(|&(e, _)| e)
        .collect()
}

/// One timed sample: [`CYCLES_PER_SAMPLE`] remove + re-insert cycles of
/// `delta` (the state is back to its original live set after every cycle),
/// folded together so the sub-millisecond cycle cost isn't swamped by
/// round-trip jitter. Returns seconds per cycle.
fn sample_update_seconds(client: &mut ServeClient, delta: &[Edge]) -> f64 {
    let start = Instant::now();
    for _ in 0..CYCLES_PER_SAMPLE {
        let removed = client.update(&[], delta).expect("remove batch");
        let inserted = client.update(delta, &[]).expect("insert batch");
        assert!(
            removed.removed.iter().all(Option::is_some),
            "delta removal missed a live edge"
        );
        assert!(
            inserted.inserted.iter().all(Option::is_some),
            "delta re-insert was rejected"
        );
    }
    start.elapsed().as_secs_f64() / CYCLES_PER_SAMPLE as f64
}

/// Update-cost measurement for the base and large daemons, sampled
/// *alternately* so machine-state drift (frequency scaling, neighbour
/// load) hits both sides equally instead of inflating whichever was
/// measured last. Returns the best cycle time per side plus the *median
/// of pairwise ratios*: adjacent samples share machine conditions, so
/// their quotient cancels common noise — a quotient of two independent
/// minima does not, and flakes an exact-compare gate.
fn measure_update_pair(
    base: &mut ServeClient,
    base_delta: &[Edge],
    large: &mut ServeClient,
    large_delta: &[Edge],
    repeats: u32,
) -> (f64, f64, f64) {
    let mut ratios = Vec::with_capacity(repeats as usize);
    let (mut best_base, mut best_large) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        let b = sample_update_seconds(base, base_delta);
        let l = sample_update_seconds(large, large_delta);
        best_base = best_base.min(b);
        best_large = best_large.min(l);
        ratios.push((l / (2 * large_delta.len()) as f64) / (b / (2 * base_delta.len()) as f64));
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let mid = ratios.len() / 2;
    let median = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    (best_base, best_large, median)
}

/// Measure the live-metrics recording cost on the lookup hot path.
///
/// Loopback wakeup jitter runs ±5% sample-to-sample while the recording
/// cost itself is a couple of relaxed atomics per request — the signal is
/// far below the noise floor of any two independent timings, so the
/// estimator has to cancel it structurally: many short off/on sample
/// *pairs* (~50 ms per side), the ratio taken within each pair where both
/// sides share machine conditions, the side order flipped every pair so
/// linear drift cancels within the pair, and the gated slowdown is the
/// median ratio (the `measure_update_pair` estimator, at finer grain so a
/// bad scheduler placement spans a few pairs, not half the run). Served
/// answers are asserted bit-identical either way. Returns per-pass
/// (best_off, best_on, slowdown); recording is left enabled — the daemon's
/// default is the instrumented path, and `lookup_qps` above is measured
/// on it.
fn measure_metrics_overhead(
    client: &mut ServeClient,
    batches: &[Vec<Edge>],
    repeats: u32,
) -> (f64, f64, f64) {
    const TARGET_SAMPLE_SECS: f64 = 0.05;
    let pass = |client: &mut ServeClient| -> f64 {
        let start = Instant::now();
        for batch in batches {
            client.lookup_batch(batch).expect("metrics-overhead lookup");
        }
        start.elapsed().as_secs_f64()
    };
    let cal = pass(client);
    let iters = ((TARGET_SAMPLE_SECS / cal.max(1e-9)).ceil() as usize).clamp(1, 500);
    let sample = |client: &mut ServeClient, on: bool| -> f64 {
        tps_obs::set_metrics_enabled(on);
        let mut total = 0.0;
        for _ in 0..iters {
            total += pass(client);
        }
        total
    };
    let pairs = repeats.max(40);
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(pairs as usize);
    for i in 0..pairs {
        let (off, on) = if i % 2 == 0 {
            let off = sample(client, false);
            let on = sample(client, true);
            (off, on)
        } else {
            let on = sample(client, true);
            let off = sample(client, false);
            (off, on)
        };
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        ratios.push(on / off);
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let mid = ratios.len() / 2;
    let slowdown = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    tps_obs::set_metrics_enabled(false);
    let off_answers = client.lookup_batch(&batches[0]).expect("off-path lookup");
    tps_obs::set_metrics_enabled(true);
    let on_answers = client.lookup_batch(&batches[0]).expect("on-path lookup");
    assert_eq!(
        off_answers, on_answers,
        "metrics recording changed served answers"
    );
    // Per-pass seconds, so the caller's qps math is batch-count shaped.
    (best_off / iters as f64, best_on / iters as f64, slowdown)
}

fn main() {
    let args = BenchArgs::from_env();
    let (num_vertices, assignments) = partition(args.scale);
    let delta = DELTA_EDGES.clamp(1, assignments.len() / 4);
    eprintln!(
        "# serve_scaling: |V| = {num_vertices}, |E| = {}, k = {K}, delta = {delta}",
        assignments.len()
    );

    let (mut client, handle) = client_for(&assignments, num_vertices);

    // Untimed verification pass: served answers must be bit-identical to
    // the partitioner's output before any throughput number is believed.
    for chunk in assignments.chunks(LOOKUP_BATCH) {
        let edges: Vec<Edge> = chunk.iter().map(|&(e, _)| e).collect();
        let got = client.lookup_batch(&edges).expect("verification lookup");
        for ((&(e, want), got), edge) in chunk.iter().zip(got).zip(edges) {
            assert_eq!(
                got,
                Some(want),
                "served partition diverged from the partitioner at {edge:?} (edge {e:?})"
            );
        }
    }

    // Timed passes: full sweeps of the live edge set in 1024-edge batches.
    let batches: Vec<Vec<Edge>> = assignments
        .chunks(LOOKUP_BATCH)
        .map(|c| c.iter().map(|&(e, _)| e).collect())
        .collect();
    let mut best_pass = f64::INFINITY;
    for _ in 0..args.repeats.max(3) {
        let start = Instant::now();
        for batch in &batches {
            client.lookup_batch(batch).expect("timed lookup");
        }
        best_pass = best_pass.min(start.elapsed().as_secs_f64());
    }
    let lookup_qps = assignments.len() as f64 / best_pass;

    // Live-metrics cost on the same workload, off vs on, served answers
    // asserted identical.
    let (metrics_off, metrics_on, metrics_slowdown) =
        measure_metrics_overhead(&mut client, &batches, args.repeats);

    // Fixed-delta update cost on the base graph and the *same absolute
    // delta* on a 10× graph, sampled alternately (see `best_update_pair`).
    // Update latency must track the delta, not the graph.
    let delta_edges = pick_delta(&assignments, delta);
    let (large_vertices, large_assignments) = partition(args.scale * 10.0);
    let (mut large_client, large_handle) = client_for(&large_assignments, large_vertices);
    let large_delta = pick_delta(&large_assignments, delta_edges.len());
    let (base_seconds, large_seconds, scale_ratio) = measure_update_pair(
        &mut client,
        &delta_edges,
        &mut large_client,
        &large_delta,
        // A sample pair is ~10ms, so many repeats are cheap — the gated
        // ratio is a median and tightens with every extra pair.
        args.repeats.max(12),
    );
    let base_ms_per_edge = base_seconds * 1e3 / (2 * delta_edges.len()) as f64;
    let large_ms_per_edge = large_seconds * 1e3 / (2 * large_delta.len()) as f64;
    client.shutdown().expect("base daemon shutdown");
    handle.join().expect("server thread").expect("server exit");
    large_client.shutdown().expect("large daemon shutdown");
    large_handle
        .join()
        .expect("server thread")
        .expect("server exit");

    println!("{{");
    println!(
        "  \"graph\": {{\"vertices\": {num_vertices}, \"edges\": {}, \"scale\": {}, \"k\": {K}}},",
        assignments.len(),
        args.scale
    );
    println!(
        "  \"lookup\": {{\"batch_edges\": {LOOKUP_BATCH}, \"batches\": {}, \"seconds\": {:.6}, \"lookup_qps\": {:.1}}},",
        batches.len(),
        best_pass,
        lookup_qps
    );
    println!(
        "  \"metrics_overhead\": {{\"off_qps\": {:.1}, \"on_qps\": {:.1}, \"slowdown\": {:.4}}},",
        assignments.len() as f64 / metrics_off,
        assignments.len() as f64 / metrics_on,
        metrics_slowdown
    );
    println!(
        "  \"update\": {{\"delta_edges\": {}, \"base\": {{\"edges\": {}, \"seconds\": {:.6}}}, \"large\": {{\"edges\": {}, \"seconds\": {:.6}}}, \"update_ms_per_edge\": {:.6}, \"large_ms_per_edge\": {:.6}, \"update_scale_ratio\": {:.4}}}",
        delta_edges.len(),
        assignments.len(),
        base_seconds,
        large_assignments.len(),
        large_seconds,
        base_ms_per_edge,
        large_ms_per_edge,
        scale_ratio
    );
    println!("}}");
}
