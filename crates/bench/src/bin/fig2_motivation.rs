//! Figure 2: the motivating experiment.
//!
//! Replication factor and run-time of 2PS-L vs HDRF (stateful) vs DBH
//! (stateless) on the OK graph at k ∈ {4, 32, 128, 256}. The paper's claims:
//! HDRF's run-time grows linearly with k while 2PS-L's stays flat; 2PS-L's
//! replication factor is the lowest of the three.
//!
//! Run: `cargo run --release -p tps-bench --bin fig2_motivation [--quick]`

use tps_baselines::{DbhPartitioner, HdrfPartitioner};
use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::{PartitionParams, Partitioner};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_metrics::stats::Summary;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();
    let graph = Dataset::Ok.generate_scaled(args.scale);
    eprintln!(
        "# Fig. 2 — OK stand-in: |V| = {}, |E| = {}, scale {}",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );

    let mut table = Table::new(vec![
        "k",
        "algorithm",
        "replication factor",
        "time (s)",
        "alpha",
    ]);
    for &k in &[4u32, 32, 128, 256] {
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(TwoPhasePartitioner::new(TwoPhaseConfig::default())),
            Box::new(HdrfPartitioner::default()),
            Box::new(DbhPartitioner::default()),
        ];
        for mut p in partitioners {
            let mut rf = Summary::new();
            let mut time = Summary::new();
            let mut alpha = Summary::new();
            for _ in 0..args.repeats {
                let mut stream = graph.stream();
                let out = JobSpec::stream(&mut stream)
                    .partitioner(p.as_mut())
                    .params(&PartitionParams::new(k))
                    .num_vertices(graph.num_vertices())
                    .run()
                    .expect("partitioning failed");
                rf.add(out.metrics.replication_factor);
                time.add(out.seconds());
                alpha.add(out.metrics.alpha);
            }
            table.row(vec![
                k.to_string(),
                p.name(),
                rf.display(),
                time.display(),
                format!("{:.3}", alpha.mean()),
            ]);
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig2_motivation", &table);
}
