//! Figure 5: relative run-time of 2PS-L's phases at k = 32.
//!
//! Paper findings to reproduce: degree calculation 7–20 %, clustering
//! 16–22 %, partitioning 58–77 %; web graphs spend relatively less time in
//! the partitioning phase than social graphs because pre-partitioning
//! (cheaper per edge than scoring) dominates there.
//!
//! Run: `cargo run --release -p tps-bench --bin fig5_phase_breakdown`

use tps_bench::harness::BenchArgs;
use tps_core::job::JobSpec;
use tps_core::partitioner::PartitionParams;
use tps_core::two_phase::TwoPhaseConfig;
use tps_graph::datasets::Dataset;
use tps_metrics::table::Table;

#[global_allocator]
static ALLOC: tps_metrics::alloc::CountingAllocator = tps_metrics::alloc::CountingAllocator;

fn main() {
    let args = BenchArgs::from_env();
    let k = 32u32;
    let mut table = Table::new(vec![
        "graph",
        "degree %",
        "clustering %",
        "partitioning %",
        "total (s)",
    ]);
    for ds in Dataset::TABLE3 {
        let graph = ds.generate_scaled(args.scale);
        let mut degree = tps_metrics::stats::Summary::new();
        let mut clustering = tps_metrics::stats::Summary::new();
        let mut partitioning = tps_metrics::stats::Summary::new();
        let mut total = tps_metrics::stats::Summary::new();
        for _ in 0..args.repeats {
            let mut stream = graph.stream();
            let out = JobSpec::stream(&mut stream)
                .two_phase(TwoPhaseConfig::default())
                .params(&PartitionParams::new(k))
                .num_vertices(graph.num_vertices())
                .run()
                .expect("partitioning failed");
            let phases = &out.report.phases;
            // "Partitioning" covers mapping + pre-partitioning + the scoring
            // pass, matching the paper's three-way split.
            let part = phases.fraction("mapping")
                + phases.fraction("prepartition")
                + phases.fraction("partition");
            degree.add(phases.fraction("degree") * 100.0);
            clustering.add(phases.fraction("clustering") * 100.0);
            partitioning.add(part * 100.0);
            total.add(phases.total().as_secs_f64());
        }
        table.row(vec![
            ds.abbrev().to_string(),
            format!("{:.1}", degree.mean()),
            format!("{:.1}", clustering.mean()),
            format!("{:.1}", partitioning.mean()),
            format!("{:.3}", total.mean()),
        ]);
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig5_phase_breakdown", &table);
}
