//! Common command-line plumbing for the experiment binaries.
//!
//! Every `fig*`/`table*` binary accepts:
//!
//! * `--scale <f>`   dataset scale factor (default 1.0; DESIGN.md §2)
//! * `--repeats <n>` measurement repetitions (default 3, as in the paper)
//! * `--quick`       shorthand for `--scale 0.1 --repeats 1`
//! * `--csv <dir>`   also write CSV outputs into `<dir>`
//!
//! Parsing is intentionally hand-rolled (no CLI crate in the offline set).

use std::path::PathBuf;

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Dataset scale factor.
    pub scale: f64,
    /// Repetitions per measurement.
    pub repeats: u32,
    /// Optional CSV output directory.
    pub csv_dir: Option<PathBuf>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            repeats: 3,
            csv_dir: None,
        }
    }
}

impl BenchArgs {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a positive number"));
                }
                "--repeats" => {
                    out.repeats = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--repeats needs a positive integer"));
                }
                "--quick" => {
                    out.scale = 0.1;
                    out.repeats = 1;
                }
                "--csv" => {
                    out.csv_dir = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| die("--csv needs a directory")),
                    ));
                }
                "--help" | "-h" => {
                    eprintln!("options: [--scale f] [--repeats n] [--quick] [--csv dir]");
                    std::process::exit(0);
                }
                other => die(&format!("unknown argument {other:?}")),
            }
        }
        if out.scale <= 0.0 {
            die("--scale must be positive");
        }
        if out.repeats == 0 {
            die("--repeats must be at least 1");
        }
        out
    }

    /// Write `table` as CSV to `<csv_dir>/<name>.csv` if requested.
    pub fn maybe_write_csv(&self, name: &str, table: &tps_metrics::table::Table) {
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            match table.write_csv(&path) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.repeats, 3);
        assert!(a.csv_dir.is_none());
    }

    #[test]
    fn quick_flag() {
        let a = parse(&["--quick"]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.repeats, 1);
    }

    #[test]
    fn explicit_values() {
        let a = parse(&["--scale", "0.5", "--repeats", "5", "--csv", "/tmp/x"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.repeats, 5);
        assert_eq!(a.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }
}
