//! Shared helpers for the benchmark binaries (one per paper table/figure).
//!
//! See the bin targets under `src/bin/` and `benches/` for the experiments.

pub mod gate;
pub mod harness;
