//! The out-of-core degree pass.
//!
//! 2PS-L (paper §III-A2) requires *exact* vertex degrees before clustering so
//! that cluster volumes can be bounded effectively: "The degree of each vertex
//! is computed in a pass through the edge set, keeping a counter for each
//! vertex ID that is seen in an edge, which is a lightweight, linear-time
//! operation." DBH likewise hashes on the lower-degree endpoint.
//!
//! [`DegreeTable`] is that counter array: `O(|V|)` memory, one `u32` per
//! vertex (a real-world maximum degree comfortably fits; we saturate rather
//! than wrap in release builds).

use std::io;

use crate::stream::{for_each_edge, EdgeStream};
use crate::types::VertexId;

/// Exact vertex degrees, computed in one streaming pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeTable {
    degrees: Vec<u32>,
}

impl DegreeTable {
    /// Compute degrees with one pass over `stream`.
    ///
    /// `num_vertices` bounds the id space; edges touching ids outside it
    /// return an error (corrupt input) rather than panicking mid-pass.
    pub fn compute<S: EdgeStream + ?Sized>(stream: &mut S, num_vertices: u64) -> io::Result<Self> {
        let mut degrees = vec![0u32; num_vertices as usize];
        let mut oob: Option<VertexId> = None;
        for_each_edge(stream, |e| {
            for v in e.endpoints() {
                match degrees.get_mut(v as usize) {
                    Some(d) => *d = d.saturating_add(1),
                    None => oob = oob.or(Some(v)),
                }
            }
        })?;
        match oob {
            Some(v) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("edge references vertex {v} >= |V| = {num_vertices}"),
            )),
            None => Ok(DegreeTable { degrees }),
        }
    }

    /// Build from a pre-computed degree array (tests, generators).
    pub fn from_vec(degrees: Vec<u32>) -> Self {
        DegreeTable { degrees }
    }

    /// Degree of `v`. Zero for isolated vertices.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Borrow the raw array.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.degrees
    }

    /// Sum of all degrees — equals `2|E|` for a well-formed undirected edge
    /// list (self-loops contribute 2 as well, since both endpoint slots refer
    /// to the same vertex).
    pub fn total_volume(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Maximum degree over all vertices (0 for empty graphs).
    pub fn max_degree(&self) -> u32 {
        self.degrees.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::InMemoryGraph;
    use crate::types::Edge;

    #[test]
    fn counts_simple_graph() {
        let mut g = InMemoryGraph::from_edges(vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(0, 3),
        ]);
        let d = DegreeTable::compute(&mut g, 4).unwrap();
        assert_eq!(d.degree(0), 3);
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.degree(2), 2);
        assert_eq!(d.degree(3), 1);
        assert_eq!(d.total_volume(), 8);
        assert_eq!(d.max_degree(), 3);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut g = InMemoryGraph::from_edges(vec![Edge::new(0, 0)]);
        let d = DegreeTable::compute(&mut g, 1).unwrap();
        assert_eq!(d.degree(0), 2);
        assert_eq!(d.total_volume(), 2);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut g = InMemoryGraph::with_num_vertices(vec![Edge::new(0, 1)], 5);
        let d = DegreeTable::compute(&mut g, 5).unwrap();
        assert_eq!(d.degree(4), 0);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn rejects_out_of_bounds_edge() {
        let mut g = InMemoryGraph::from_edges(vec![Edge::new(0, 9)]);
        let err = DegreeTable::compute(&mut g, 5).unwrap_err();
        assert!(err.to_string().contains("vertex 9"));
    }

    #[test]
    fn volume_is_twice_edge_count() {
        let edges: Vec<Edge> = (0..50)
            .map(|i| Edge::new(i % 10, (i * 3 + 1) % 10))
            .collect();
        let mut g = InMemoryGraph::from_edges(edges);
        let d = DegreeTable::compute(&mut g, 10).unwrap();
        assert_eq!(d.total_volume(), 100);
    }

    #[test]
    fn empty_graph() {
        let mut g = InMemoryGraph::from_edges(vec![]);
        let d = DegreeTable::compute(&mut g, 0).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.total_volume(), 0);
        assert_eq!(d.max_degree(), 0);
    }
}
