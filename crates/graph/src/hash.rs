//! Deterministic 64-bit hash mixers.
//!
//! The stateless partitioners (DBH, Grid, random hashing) and the balance-cap
//! fallback of 2PS-L need a cheap, well-distributed, *platform-stable* hash of
//! a vertex id. `std::hash` offers no stability guarantee across releases, so
//! we vendor two classic finalizers instead of pulling a crate in:
//!
//! * [`splitmix64`] — the SplitMix64 finalizer (Steele et al.), used to derive
//!   seeds and as the default id hash.
//! * [`mix64`] — Stafford's "Mix13" variant of the MurmurHash3 finalizer,
//!   used where a second independent hash function is required (Grid).
//!
//! Both pass PractRand / SMHasher finalizer tests and are bijective on `u64`,
//! so they introduce no collisions on 32-bit vertex ids.

/// SplitMix64 finalizer: a bijective mix of the input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stafford Mix13: an alternative bijective 64-bit finalizer, statistically
/// independent of [`splitmix64`] for partitioning purposes.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a vertex id into `0..k` using [`splitmix64`].
///
/// `k` must be non-zero. Uses the multiply-shift range reduction (Lemire),
/// which is unbiased enough for partition counts up to millions.
#[inline]
pub fn hash_to_partition(v: u32, k: u32) -> u32 {
    debug_assert!(k > 0, "partition count must be non-zero");
    let h = splitmix64(v as u64);
    (((h >> 32).wrapping_mul(k as u64)) >> 32) as u32
}

/// Hash a vertex id with a caller-chosen seed, into `0..k`.
#[inline]
pub fn seeded_hash_to_partition(v: u32, seed: u64, k: u32) -> u32 {
    debug_assert!(k > 0, "partition count must be non-zero");
    let h = splitmix64(v as u64 ^ splitmix64(seed));
    (((h >> 32).wrapping_mul(k as u64)) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // A handful of consecutive inputs should not collide.
        let hs: Vec<u64> = (0u64..64).map(splitmix64).collect();
        let mut sorted = hs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hs.len());
    }

    #[test]
    fn range_reduction_in_bounds() {
        for k in [1u32, 2, 3, 7, 32, 256, 1000] {
            for v in 0u32..500 {
                assert!(hash_to_partition(v, k) < k);
                assert!(seeded_hash_to_partition(v, 42, k) < k);
            }
        }
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        let k = 16u32;
        let n = 160_000u32;
        let mut counts = vec![0u32; k as usize];
        for v in 0..n {
            counts[hash_to_partition(v, k) as usize] += 1;
        }
        let expected = (n / k) as f64;
        for &c in &counts {
            // Within 5% of uniform for this many samples.
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "count {c} vs {expected}"
            );
        }
    }

    #[test]
    fn seeded_hash_changes_with_seed() {
        let a: Vec<u32> = (0..100)
            .map(|v| seeded_hash_to_partition(v, 1, 64))
            .collect();
        let b: Vec<u32> = (0..100)
            .map(|v| seeded_hash_to_partition(v, 2, 64))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_differs_from_splitmix() {
        // Not a strong independence test, just a regression guard that the two
        // functions are distinct mixers.
        assert_ne!(mix64(12345), splitmix64(12345));
    }

    #[test]
    fn k_equals_one_maps_everything_to_zero() {
        for v in 0..100 {
            assert_eq!(hash_to_partition(v, 1), 0);
        }
    }
}
