//! Compressed-sparse-row adjacency for the *in-memory* baselines.
//!
//! The paper's in-memory comparators (NE, DNE, METIS) and the in-memory half
//! of HEP materialise the graph as a CSR-like structure (§VI: "variants of the
//! compressed sparse row representation"). This module provides that
//! substrate. Each undirected edge `(u, v)` is stored twice (at `u` and at
//! `v`) together with its original *edge index* in the stream, so in-memory
//! partitioners can report assignments keyed by the same edge indices the
//! streaming partitioners use.

use std::io;

use crate::stream::{for_each_edge, EdgeStream};
use crate::types::{Edge, VertexId};

/// One adjacency entry: the neighbour and the index of the connecting edge in
/// the original stream order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Neighbor {
    /// The adjacent vertex.
    pub vertex: VertexId,
    /// Index of the edge in the edge stream (0-based).
    pub edge_index: u64,
}

/// Compressed-sparse-row adjacency with per-entry edge indices.
///
/// Memory: `|V|+1` offsets (`u64`) + `2|E|` entries (12 bytes each) — this is
/// exactly the `≥ O(|E|)` space bound of Table II for in-memory partitioners.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    entries: Vec<Neighbor>,
    num_edges: u64,
}

impl Csr {
    /// Build a CSR from an edge stream in two passes (degree counting, fill).
    pub fn from_stream<S: EdgeStream + ?Sized>(
        stream: &mut S,
        num_vertices: u64,
    ) -> io::Result<Self> {
        let n = num_vertices as usize;
        let mut counts = vec![0u64; n + 1];
        let mut num_edges = 0u64;
        for_each_edge(stream, |e| {
            counts[e.src as usize + 1] += 1;
            counts[e.dst as usize + 1] += 1;
            num_edges += 1;
        })?;
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let total = offsets[n] as usize;
        let mut entries = vec![
            Neighbor {
                vertex: 0,
                edge_index: 0
            };
            total
        ];
        let mut cursor = offsets.clone();
        let mut edge_index = 0u64;
        for_each_edge(stream, |e| {
            let cs = &mut cursor[e.src as usize];
            entries[*cs as usize] = Neighbor {
                vertex: e.dst,
                edge_index,
            };
            *cs += 1;
            let cd = &mut cursor[e.dst as usize];
            entries[*cd as usize] = Neighbor {
                vertex: e.src,
                edge_index,
            };
            *cd += 1;
            edge_index += 1;
        })?;
        Ok(Csr {
            offsets,
            entries,
            num_edges,
        })
    }

    /// Build from an in-memory edge slice (convenience for tests/baselines).
    pub fn from_edges(edges: &[Edge], num_vertices: u64) -> Self {
        let mut g = crate::stream::InMemoryGraph::with_num_vertices(edges.to_vec(), num_vertices);
        Csr::from_stream(&mut g, num_vertices).expect("in-memory stream cannot fail")
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of edges (each undirected edge counted once).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The neighbours of `v` with their edge indices.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Degree of `v` (counting self-loops twice, consistent with
    /// [`crate::degree::DegreeTable`]).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::InMemoryGraph;

    fn path4() -> Csr {
        // 0 - 1 - 2 - 3
        Csr::from_edges(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)], 4)
    }

    #[test]
    fn degrees_and_neighbors() {
        let csr = path4();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.degree(0), 1);
        assert_eq!(csr.degree(1), 2);
        let n1: Vec<VertexId> = csr.neighbors(1).iter().map(|n| n.vertex).collect();
        assert_eq!(n1, vec![0, 2]);
    }

    #[test]
    fn edge_indices_match_stream_order() {
        let csr = path4();
        // Edge (1,2) is the second edge of the stream, index 1 — visible from
        // both endpoints.
        let from1 = csr.neighbors(1).iter().find(|n| n.vertex == 2).unwrap();
        let from2 = csr.neighbors(2).iter().find(|n| n.vertex == 1).unwrap();
        assert_eq!(from1.edge_index, 1);
        assert_eq!(from2.edge_index, 1);
    }

    #[test]
    fn self_loop_appears_twice_at_same_vertex() {
        let csr = Csr::from_edges(&[Edge::new(0, 0)], 1);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.neighbors(0).len(), 2);
        assert!(csr
            .neighbors(0)
            .iter()
            .all(|n| n.vertex == 0 && n.edge_index == 0));
    }

    #[test]
    fn parallel_edges_are_kept_distinct() {
        let csr = Csr::from_edges(&[Edge::new(0, 1), Edge::new(0, 1)], 2);
        assert_eq!(csr.degree(0), 2);
        let idx: Vec<u64> = csr.neighbors(0).iter().map(|n| n.edge_index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn from_stream_equals_from_edges() {
        let edges = vec![Edge::new(0, 2), Edge::new(2, 1), Edge::new(1, 0)];
        let mut g = InMemoryGraph::with_num_vertices(edges.clone(), 3);
        let a = Csr::from_stream(&mut g, 3).unwrap();
        let b = Csr::from_edges(&edges, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..3u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn isolated_vertices_have_empty_adjacency() {
        let csr = Csr::from_edges(&[Edge::new(0, 1)], 4);
        assert_eq!(csr.neighbors(2), &[]);
        assert_eq!(csr.neighbors(3), &[]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(&[], 0);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
