//! Hybrid social-network generator: R-MAT degree tail + planted community
//! overlay.
//!
//! Pure R-MAT reproduces the heavy degree tail of social graphs but almost
//! none of their community structure (real social networks have clustering
//! coefficients of 0.1–0.2; R-MAT with permuted ids is close to a skewed
//! random graph). Real social graphs have both — and 2PS-L's whole premise
//! is that the community structure is there to find. This generator samples
//! a `1 − community_fraction` share of edges from R-MAT and the rest from
//! planted communities over the same vertex universe, then compacts,
//! permutes ids (social dumps have no id locality) and shuffles.
//!
//! The `community_fraction` knob maps onto the paper's dataset spectrum:
//! com-orkut and com-friendster are community-rich; twitter-2010 is the
//! most skewed, least community-structured graph in the evaluation (the one
//! dataset where DBH's replication factor beats 2PS-L).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::rmat::RmatConfig;
use super::{finalize, GenOptions};
use crate::stream::InMemoryGraph;
use crate::types::Edge;

/// Configuration of the hybrid social generator.
#[derive(Clone, Copy, Debug)]
pub struct SocialConfig {
    /// R-MAT parameters (defines the vertex universe `2^scale` and the tail).
    pub rmat: RmatConfig,
    /// Total distinct edges to generate.
    pub edges: u64,
    /// Fraction of edges drawn from the community overlay (0 = pure R-MAT).
    pub community_fraction: f64,
    /// Community size range of the overlay.
    pub min_community: u64,
    /// Largest overlay community.
    pub max_community: u64,
    /// Within-community endpoint skew (see `planted::PlantedConfig`).
    pub hub_skew: f64,
}

impl SocialConfig {
    /// Defaults for an Orkut-like graph: strong tail, strong communities.
    pub fn new(scale: u32, edges: u64, community_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&community_fraction));
        SocialConfig {
            rmat: RmatConfig::social(scale, edges),
            edges,
            community_fraction,
            min_community: 16,
            max_community: 96,
            hub_skew: 1.8,
        }
    }
}

/// Generate the hybrid graph.
pub fn generate(cfg: &SocialConfig, seed: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let universe = 1u64 << cfg.rmat.scale;
    // Draw overlay communities over the whole universe.
    let mut communities: Vec<(u64, u64)> = Vec::new();
    let mut covered = 0u64;
    while covered < universe {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let size = ((cfg.min_community as f64 / u.powf(0.5)) as u64)
            .clamp(cfg.min_community, cfg.max_community)
            .min(universe - covered);
        communities.push((covered, size));
        covered += size;
    }

    let mut seen = std::collections::HashSet::with_capacity(cfg.edges as usize * 2);
    let mut edges: Vec<Edge> = Vec::with_capacity(cfg.edges as usize);
    let max_attempts = cfg.edges.saturating_mul(40).max(1000);
    let mut attempts = 0u64;
    let pick_member = |start: u64, size: u64, skew: f64, rng: &mut SmallRng| -> u32 {
        let u: f64 = rng.gen();
        let idx = ((size as f64) * u.powf(skew)) as u64;
        (start + idx.min(size - 1)) as u32
    };
    'outer: while (edges.len() as u64) < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let from_overlay = rng.gen::<f64>() < cfg.community_fraction;
        for _ in 0..8 {
            let e = if from_overlay {
                let ci = rng.gen_range(0..communities.len());
                let (start, size) = communities[ci];
                if size < 2 {
                    continue;
                }
                Edge::new(
                    pick_member(start, size, cfg.hub_skew, &mut rng),
                    pick_member(start, size, cfg.hub_skew, &mut rng),
                )
            } else {
                super::rmat::sample_one(&cfg.rmat, &mut rng)
            };
            if e.is_self_loop() {
                continue;
            }
            let c = e.canonical();
            let key = ((c.src as u64) << 32) | c.dst as u64;
            if seen.insert(key) {
                edges.push(e);
                continue 'outer;
            }
        }
    }
    let opts = GenOptions {
        permute_ids: true,
        shuffle_edges: true,
        ..Default::default()
    };
    finalize(edges, opts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_near_target() {
        let cfg = SocialConfig::new(13, 30_000, 0.4);
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        assert_eq!(a.edges(), b.edges());
        assert!(a.num_edges() >= 29_000, "got {}", a.num_edges());
    }

    #[test]
    fn keeps_heavy_tail() {
        let cfg = SocialConfig::new(13, 40_000, 0.4);
        let g = generate(&cfg, 9);
        let mut degs = vec![0u32; g.num_vertices() as usize];
        for e in g.edges() {
            degs[e.src as usize] += 1;
            degs[e.dst as usize] += 1;
        }
        let max = *degs.iter().max().unwrap() as f64;
        let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        assert!(max > mean * 8.0, "max {max} mean {mean}");
    }

    #[test]
    fn community_fraction_zero_is_pure_rmat_style() {
        let cfg = SocialConfig::new(12, 10_000, 0.0);
        let g = generate(&cfg, 2);
        assert!(g.num_edges() > 9_000);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fraction() {
        SocialConfig::new(10, 100, 1.5);
    }
}
