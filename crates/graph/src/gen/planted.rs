//! Planted-partition (stochastic-block) generator with power-law community
//! sizes — the stand-in for the paper's web graphs (it-2004, uk-2007-05,
//! gsh-2015, wdc-2014).
//!
//! Web crawls have pronounced community structure (per-host/per-domain link
//! locality) and id locality (crawl order groups pages of a host). This
//! generator reproduces both:
//!
//! * community sizes follow a truncated Pareto distribution,
//! * a `1 - mixing` fraction of edges is intra-community, sampled with a
//!   skewed within-community endpoint distribution (hub pages),
//! * ids are assigned community-by-community (high id locality), mirroring
//!   crawl-ordered web datasets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{finalize, GenOptions};
use crate::stream::InMemoryGraph;
use crate::types::Edge;

/// Planted-partition generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlantedConfig {
    /// Number of vertices before compaction.
    pub vertices: u64,
    /// Number of edges to sample (distinct count after dedup slightly lower;
    /// `generate` oversamples to compensate).
    pub edges: u64,
    /// Fraction of edges whose endpoints are drawn from *different*
    /// communities (the LFR "mixing parameter" µ). Web graphs: 0.05–0.15.
    pub mixing: f64,
    /// Pareto shape for community sizes (smaller = more skewed). ~1.5–2.5.
    pub community_exponent: f64,
    /// Minimum community size.
    pub min_community: u64,
    /// Maximum community size (caps giant communities; also the natural
    /// counterpart of 2PS-L's cluster volume cap).
    pub max_community: u64,
    /// Within-community endpoint skew `γ ≥ 1`: member index is drawn as
    /// `⌊size · u^γ⌋`, so γ = 1 is uniform and larger γ concentrates edges on
    /// few hub members.
    pub hub_skew: f64,
    /// Post-processing options.
    pub opts: GenOptions,
}

impl PlantedConfig {
    /// Web-graph-like defaults: strong communities, strong id locality.
    ///
    /// Community sizes are intentionally independent of `vertices`: real web
    /// communities (hosts/domains) are tiny relative to `|V|`, and the whole
    /// premise of 2PS-L's volume cap (`2|E|/k`, i.e. ~`|V|/k` vertices' worth
    /// of volume) is that communities fit under it for every evaluated `k`.
    /// Two constraints pin the size range:
    ///
    /// * feasibility of intra-density — members must be able to host most of
    ///   their edges inside the community, so `size ≳ 2 × mean degree`
    ///   (datasets built on this config keep mean degree ≈ 16);
    /// * the cap — `size ≤ |V|/k` for every evaluated `k` (≤ 256).
    ///
    /// Sizes in `[32, 128]` satisfy both for all scaled datasets.
    pub fn web(vertices: u64, edges: u64) -> Self {
        PlantedConfig {
            vertices,
            edges,
            mixing: 0.08,
            community_exponent: 2.0,
            min_community: 32,
            max_community: 128,
            hub_skew: 1.5,
            opts: GenOptions {
                permute_ids: false, // keep crawl-order locality
                ..Default::default()
            },
        }
    }
}

/// Draw community sizes until they cover `cfg.vertices`.
fn draw_communities(cfg: &PlantedConfig, rng: &mut SmallRng) -> Vec<(u64, u64)> {
    // Returns (start_id, size) per community.
    let mut communities = Vec::new();
    let mut covered = 0u64;
    while covered < cfg.vertices {
        // Truncated Pareto via inverse transform.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let raw = cfg.min_community as f64 / u.powf(1.0 / cfg.community_exponent);
        let size = (raw as u64)
            .clamp(cfg.min_community, cfg.max_community)
            .min(cfg.vertices - covered);
        communities.push((covered, size));
        covered += size;
    }
    communities
}

/// Pick a member of a community with hub skew.
#[inline]
fn pick_member(start: u64, size: u64, skew: f64, rng: &mut SmallRng) -> u32 {
    let u: f64 = rng.gen();
    let idx = ((size as f64) * u.powf(skew)) as u64;
    (start + idx.min(size - 1)) as u32
}

/// Generate a planted-partition graph with (close to) `cfg.edges` distinct
/// edges. Community sampling is weighted by community size so that the
/// expected degree is roughly uniform across communities before hub skew.
pub fn generate(cfg: &PlantedConfig, seed: u64) -> InMemoryGraph {
    assert!(cfg.vertices >= 2, "need at least two vertices");
    assert!((0.0..=1.0).contains(&cfg.mixing), "mixing must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let communities = draw_communities(cfg, &mut rng);

    // Cumulative sizes for size-weighted community sampling.
    let mut cum: Vec<u64> = Vec::with_capacity(communities.len());
    let mut acc = 0u64;
    for &(_, size) in &communities {
        acc += size;
        cum.push(acc);
    }
    let total = acc;

    let pick_community = |rng: &mut SmallRng| -> usize {
        let t = rng.gen_range(0..total);
        cum.partition_point(|&c| c <= t)
    };

    let mut seen = std::collections::HashSet::with_capacity(cfg.edges as usize * 2);
    let mut edges = Vec::with_capacity(cfg.edges as usize);
    let max_attempts = cfg.edges.saturating_mul(30).max(1000);
    let mut attempts = 0u64;
    // Duplicate samples concentrate on intra-community pairs (small, skewed
    // communities saturate first); if a rejected sample were simply redrawn
    // from scratch the effective mixing would drift far above the nominal µ.
    // Instead we re-draw endpoints *within the same intra/inter decision* a
    // few times before giving the slot up.
    const RETRIES_PER_DECISION: u32 = 8;
    'outer: while (edges.len() as u64) < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let ci = pick_community(&mut rng);
        let (start, size) = communities[ci];
        let inter = rng.gen::<f64>() < cfg.mixing || size < 2;
        for _ in 0..RETRIES_PER_DECISION {
            let (u, v) = if inter {
                // Inter-community edge: second endpoint from another community.
                let mut cj = pick_community(&mut rng);
                if communities.len() > 1 {
                    while cj == ci {
                        cj = pick_community(&mut rng);
                    }
                }
                let (s2, z2) = communities[cj];
                (
                    pick_member(start, size, cfg.hub_skew, &mut rng),
                    pick_member(s2, z2, cfg.hub_skew, &mut rng),
                )
            } else {
                (
                    pick_member(start, size, cfg.hub_skew, &mut rng),
                    pick_member(start, size, cfg.hub_skew, &mut rng),
                )
            };
            let e = Edge::new(u, v);
            if cfg.opts.drop_self_loops && e.is_self_loop() {
                continue;
            }
            let c = e.canonical();
            let key = ((c.src as u64) << 32) | c.dst as u64;
            if !cfg.opts.dedup || seen.insert(key) {
                edges.push(e);
                continue 'outer;
            }
        }
    }
    finalize(edges, cfg.opts, seed)
}

/// The ground-truth community of a vertex id under a given config+seed
/// (before compaction). Used by tests to check the clustering phase recovers
/// planted structure.
pub fn ground_truth_communities(cfg: &PlantedConfig, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    draw_communities(cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = PlantedConfig::web(2_000, 10_000);
        let a = generate(&cfg, 11);
        let b = generate(&cfg, 11);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn respects_edge_target_within_tolerance() {
        let cfg = PlantedConfig::web(4_000, 20_000);
        let g = generate(&cfg, 3);
        assert!(g.num_edges() >= 19_000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 20_000);
    }

    #[test]
    fn most_edges_are_intra_community() {
        let cfg = PlantedConfig {
            opts: GenOptions {
                shuffle_edges: false,
                ..PlantedConfig::web(0, 0).opts
            },
            ..PlantedConfig::web(3_000, 15_000)
        };
        let seed = 17;
        let comms = ground_truth_communities(&cfg, seed);
        // Build a membership lookup over the *uncompacted* id space. With
        // 15k edges on 3k vertices nearly every vertex is covered, so the
        // compaction remap is near-identity; tolerate slack in the assertion.
        let total: u64 = comms.iter().map(|c| c.1).sum();
        let mut member = vec![0u32; total as usize];
        for (i, &(start, size)) in comms.iter().enumerate() {
            for v in start..start + size {
                member[v as usize] = i as u32;
            }
        }
        let g = generate(&cfg, seed);
        let intra = g
            .edges()
            .iter()
            .filter(|e| {
                let a = member.get(e.src as usize);
                let b = member.get(e.dst as usize);
                a.is_some() && a == b
            })
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.75, "intra fraction {frac}");
    }

    #[test]
    fn community_sizes_respect_bounds() {
        let cfg = PlantedConfig::web(10_000, 1_000);
        let comms = ground_truth_communities(&cfg, 5);
        for &(_, size) in &comms {
            assert!(size >= 1 && size <= cfg.max_community);
        }
        let covered: u64 = comms.iter().map(|c| c.1).sum();
        assert_eq!(covered, cfg.vertices);
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn rejects_bad_mixing() {
        let mut cfg = PlantedConfig::web(100, 100);
        cfg.mixing = 1.5;
        generate(&cfg, 1);
    }
}
