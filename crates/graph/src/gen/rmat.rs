//! R-MAT (recursive matrix) graph generator.
//!
//! The Graph500 reference generator: each edge picks one quadrant of the
//! adjacency matrix recursively with probabilities `(a, b, c, d)`. With the
//! standard skewed parameters `(0.57, 0.19, 0.19, 0.05)` the degree
//! distribution is heavy-tailed like the paper's social graphs (com-orkut,
//! twitter-2010, com-friendster). Per-level probability noise decorrelates
//! the quadrant choice across levels, avoiding the exact self-similarity
//! artefacts of naive R-MAT.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{finalize, GenOptions};
use crate::stream::InMemoryGraph;
use crate::types::Edge;

/// R-MAT generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex-id universe (the matrix is `2^scale × 2^scale`).
    pub scale: u32,
    /// Number of edges to *sample* (post-dedup count will be slightly lower;
    /// use [`generate_exact`] to hit an exact distinct-edge target).
    pub edges: u64,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Per-level multiplicative noise applied to `a` (0 = none, 0.1 = ±10 %).
    pub noise: f64,
    /// Post-processing options.
    pub opts: GenOptions,
}

impl RmatConfig {
    /// Graph500-style defaults for a social-network-like graph: skewed
    /// quadrants, permuted ids (social dumps have no id locality).
    pub fn social(scale: u32, edges: u64) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            opts: GenOptions {
                permute_ids: true,
                ..Default::default()
            },
        }
    }
}

/// Sample one R-MAT edge (shared with the hybrid social generator).
pub(crate) fn sample_one(cfg: &RmatConfig, rng: &mut SmallRng) -> Edge {
    sample_edge(cfg, rng)
}

/// Sample one R-MAT edge.
fn sample_edge(cfg: &RmatConfig, rng: &mut SmallRng) -> Edge {
    let mut src = 0u64;
    let mut dst = 0u64;
    for _ in 0..cfg.scale {
        src <<= 1;
        dst <<= 1;
        // Per-level noisy quadrant probabilities.
        let na = cfg.a * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nb = cfg.b * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nc = cfg.c * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let nd = (1.0 - cfg.a - cfg.b - cfg.c) * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5));
        let total = na + nb + nc + nd;
        let r = rng.gen::<f64>() * total;
        if r < na {
            // upper-left: neither bit set
        } else if r < na + nb {
            dst |= 1;
        } else if r < na + nb + nc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    Edge::new(src as u32, dst as u32)
}

/// Generate an R-MAT graph. The number of *distinct* edges after dedup is
/// close to, but below, `cfg.edges`.
pub fn generate(cfg: &RmatConfig, seed: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(cfg.edges as usize);
    for _ in 0..cfg.edges {
        edges.push(sample_edge(cfg, &mut rng));
    }
    finalize(edges, cfg.opts, seed)
}

/// Generate an R-MAT graph with (close to) an exact distinct-edge target by
/// oversampling in rounds until the post-dedup count reaches `cfg.edges` or
/// the sample space saturates (tiny scales).
pub fn generate_exact(cfg: &RmatConfig, seed: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut raw: Vec<Edge> = Vec::with_capacity(cfg.edges as usize + cfg.edges as usize / 4);
    let mut seen = std::collections::HashSet::with_capacity(cfg.edges as usize * 2);
    let mut distinct = 0u64;
    let max_attempts = cfg.edges.saturating_mul(20).max(1000);
    let mut attempts = 0u64;
    while distinct < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let e = sample_edge(cfg, &mut rng);
        if cfg.opts.drop_self_loops && e.is_self_loop() {
            continue;
        }
        let c = e.canonical();
        let key = ((c.src as u64) << 32) | c.dst as u64;
        if !cfg.opts.dedup || seen.insert(key) {
            raw.push(e);
            distinct += 1;
        }
    }
    // `finalize` re-checks dedup/self-loops (cheap; keeps one code path).
    finalize(raw, cfg.opts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RmatConfig::social(10, 2_000);
        let a = generate(&cfg, 99);
        let b = generate(&cfg, 99);
        assert_eq!(a.edges(), b.edges());
        let c = generate(&cfg, 100);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn exact_generator_hits_target() {
        let cfg = RmatConfig::social(12, 5_000);
        let g = generate_exact(&cfg, 7);
        assert_eq!(g.num_edges(), 5_000);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = RmatConfig::social(10, 3_000);
        let g = generate_exact(&cfg, 3);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(!e.is_self_loop());
            let c = e.canonical();
            assert!(seen.insert((c.src, c.dst)), "duplicate {e:?}");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::social(13, 40_000);
        let g = generate_exact(&cfg, 5);
        let mut degs = vec![0u32; g.num_vertices() as usize];
        for e in g.edges() {
            degs[e.src as usize] += 1;
            degs[e.dst as usize] += 1;
        }
        let max = *degs.iter().max().unwrap() as f64;
        let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        // Heavy tail: max degree far above the mean (uniform graphs sit ~3x).
        assert!(max > mean * 10.0, "max {max} mean {mean}");
    }

    #[test]
    fn saturates_gracefully_on_tiny_scale() {
        // 2^2 = 4 vertices can host at most 6 distinct loop-free edges.
        let cfg = RmatConfig {
            scale: 2,
            edges: 100,
            ..RmatConfig::social(2, 100)
        };
        let g = generate_exact(&cfg, 1);
        assert!(g.num_edges() <= 6);
    }
}
