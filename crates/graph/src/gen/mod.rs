//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on seven real-world graphs (Table III) that are not
//! redistributable here (hundreds of GiB, external downloads). Per the
//! reproduction rules we substitute synthetic generators that control the two
//! properties every experiment in the paper depends on:
//!
//! 1. **Degree skew** — drives DBH / HDRF / scoring behaviour. Reproduced by
//!    [`rmat`] (recursive-matrix sampling, the Graph500 generator) whose
//!    output degree distribution is heavy-tailed.
//! 2. **Community structure** — drives the pre-partitioning ratio (Fig. 6)
//!    and the social-vs-web split of the evaluation. Reproduced by
//!    [`planted`] (a planted-partition / stochastic-block generator with
//!    power-law community sizes and skewed within-community degrees).
//!
//! [`gnm`] provides uniform G(n, m) graphs as a no-structure control used in
//! tests and ablations.
//!
//! All generators are deterministic given a seed, emit a dense vertex id
//! space with no isolated vertices (ids are compacted after sampling), and
//! can optionally deduplicate parallel edges and drop self-loops.

pub mod gnm;
pub mod planted;
pub mod rmat;
pub mod social;

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stream::InMemoryGraph;
use crate::types::{Edge, VertexId};

/// Shared post-processing options for all generators.
#[derive(Clone, Copy, Debug)]
pub struct GenOptions {
    /// Remove duplicate (undirected) edges.
    pub dedup: bool,
    /// Remove self-loops.
    pub drop_self_loops: bool,
    /// Shuffle the edge order of the final stream. Streaming partitioners are
    /// order-sensitive; real edge lists arrive in crawl/insert order, which a
    /// plain generator does not mimic — a seeded shuffle is the neutral choice.
    pub shuffle_edges: bool,
    /// Apply a random permutation to the vertex ids. Social-network dumps
    /// carry little id locality (we permute); web crawls carry a lot (we keep
    /// community-grouped ids).
    pub permute_ids: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            dedup: true,
            drop_self_loops: true,
            shuffle_edges: true,
            permute_ids: false,
        }
    }
}

/// Finalise a raw edge sample into an [`InMemoryGraph`]:
/// dedup / loop-removal per `opts`, id compaction (removes isolated vertices
/// so that `|V|` matches the covered vertex set, as in the real datasets),
/// optional id permutation and edge shuffle.
pub(crate) fn finalize(mut edges: Vec<Edge>, opts: GenOptions, seed: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1AA_11CE_5EED_0001);
    if opts.drop_self_loops {
        edges.retain(|e| !e.is_self_loop());
    }
    if opts.dedup {
        let mut seen: HashSet<u64> = HashSet::with_capacity(edges.len() * 2);
        edges.retain(|e| {
            let c = e.canonical();
            seen.insert(((c.src as u64) << 32) | c.dst as u64)
        });
    }
    // Compact ids to 0..n preserving relative order (keeps web-graph locality).
    let max_id = edges
        .iter()
        .map(|e| e.src.max(e.dst))
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut used = vec![false; max_id];
    for e in &edges {
        used[e.src as usize] = true;
        used[e.dst as usize] = true;
    }
    let mut remap: Vec<VertexId> = vec![0; max_id];
    let mut next: VertexId = 0;
    for (i, &u) in used.iter().enumerate() {
        if u {
            remap[i] = next;
            next += 1;
        }
    }
    let n = next;
    let mut perm: Vec<VertexId> = (0..n).collect();
    if opts.permute_ids {
        // Fisher–Yates with the seeded rng.
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
    }
    for e in &mut edges {
        e.src = perm[remap[e.src as usize] as usize];
        e.dst = perm[remap[e.dst as usize] as usize];
    }
    if opts.shuffle_edges {
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
    }
    InMemoryGraph::with_num_vertices(edges, n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_removes_self_loops_and_dups() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 0), // duplicate (undirected)
            Edge::new(2, 2), // self-loop
            Edge::new(1, 3),
        ];
        let opts = GenOptions {
            shuffle_edges: false,
            permute_ids: false,
            ..Default::default()
        };
        let g = finalize(edges, opts, 1);
        assert_eq!(g.num_edges(), 2);
        // Vertex 2 only appeared in a self-loop → compacted away.
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn finalize_keeps_parallel_edges_without_dedup() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 0)];
        let opts = GenOptions {
            dedup: false,
            shuffle_edges: false,
            permute_ids: false,
            drop_self_loops: true,
        };
        let g = finalize(edges, opts, 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn finalize_is_deterministic() {
        let edges: Vec<Edge> = (0..100u32)
            .map(|i| Edge::new(i % 13, (i * 7) % 13))
            .collect();
        let opts = GenOptions::default();
        let a = finalize(edges.clone(), opts, 42);
        let b = finalize(edges, opts, 42);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn permutation_changes_ids_but_not_structure() {
        let edges: Vec<Edge> = (0..200u32)
            .map(|i| Edge::new(i % 20, (i * 3 + 1) % 20))
            .collect();
        let keep = finalize(
            edges.clone(),
            GenOptions {
                permute_ids: false,
                shuffle_edges: false,
                ..Default::default()
            },
            7,
        );
        let perm = finalize(
            edges,
            GenOptions {
                permute_ids: true,
                shuffle_edges: false,
                ..Default::default()
            },
            7,
        );
        assert_eq!(keep.num_vertices(), perm.num_vertices());
        assert_eq!(keep.num_edges(), perm.num_edges());
    }
}
