//! Uniform G(n, m) random graphs — a no-skew, no-community control used in
//! tests and ablations (every partitioner should behave near its worst case
//! here: there is no structure to exploit).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{finalize, GenOptions};
use crate::stream::InMemoryGraph;
use crate::types::Edge;

/// Generate a uniform random graph with `n` vertices and (close to) `m`
/// distinct edges.
///
/// # Panics
/// Panics if `n < 2` or if `m` exceeds the number of distinct loop-free
/// undirected edges `n·(n-1)/2`.
pub fn generate(n: u64, m: u64, seed: u64) -> InMemoryGraph {
    assert!(n >= 2, "need at least two vertices");
    let max_edges = n * (n - 1) / 2;
    assert!(
        m <= max_edges,
        "m = {m} exceeds the {max_edges} possible edges"
    );
    let opts = GenOptions {
        shuffle_edges: true,
        permute_ids: false,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m as usize * 2);
    let mut edges = Vec::with_capacity(m as usize);
    while (edges.len() as u64) < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let e = Edge::new(u, v).canonical();
        if seen.insert(((e.src as u64) << 32) | e.dst as u64) {
            edges.push(Edge::new(u, v));
        }
    }
    finalize(edges, opts, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_edge_count() {
        let g = generate(100, 500, 1);
        assert_eq!(g.num_edges(), 500);
        assert!(g.num_vertices() <= 100);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(50, 100, 9).edges(), generate(50, 100, 9).edges());
    }

    #[test]
    fn no_duplicates_or_loops() {
        let g = generate(40, 300, 2);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert!(!e.is_self_loop());
            let c = e.canonical();
            assert!(seen.insert((c.src, c.dst)));
        }
    }

    #[test]
    fn complete_graph_possible() {
        let g = generate(5, 10, 3);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_impossible_m() {
        generate(4, 7, 1);
    }
}
