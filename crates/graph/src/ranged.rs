//! Range-addressable edge sources — the substrate of chunk-parallel
//! execution.
//!
//! A [`RangedEdgeSource`] can open an independent [`EdgeStream`] over any
//! contiguous sub-range `[start, end)` of the canonical edge order. Worker
//! threads each open their own range stream, so a parallel pass never shares
//! a cursor. Crucially the ranges are expressed in **edge indices**, not
//! storage chunks: a partitioning run that splits `|E|` edges over `t`
//! threads therefore produces the same per-thread work lists for the
//! in-memory, v1 and v2 backends alike, which keeps parallel partitioning
//! results independent of the storage format (see `tps-core::parallel`).
//!
//! File-backed implementations live in `tps-io` (fixed-width record seeking
//! for v1, chunk-index scheduling with intra-chunk skip for v2); the
//! in-memory implementation for [`InMemoryGraph`] lives here.

use std::io;

use crate::stream::{EdgeStream, InMemoryGraph};
use crate::types::{Edge, GraphInfo};

/// A thread-safe factory of edge streams over sub-ranges of the edge order.
///
/// Implementations must be cheap to call concurrently: `open_range` is
/// invoked once per worker thread, and every returned stream must observe
/// the same canonical edge order as a full sequential pass.
pub trait RangedEdgeSource: Sync {
    /// Graph summary (vertex and edge counts of the *full* stream).
    fn info(&self) -> GraphInfo;

    /// Open a stream over edges `[start, end)` of the canonical order.
    ///
    /// `reset` on the returned stream rewinds to `start`, not to the
    /// beginning of the underlying storage. Errors if `start > end` or
    /// `end` exceeds the edge count.
    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>>;
}

/// Validate a requested range against the source's edge count.
pub fn check_range(start: u64, end: u64, num_edges: u64) -> io::Result<()> {
    if start > end || end > num_edges {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("edge range [{start}, {end}) out of bounds for |E| = {num_edges}"),
        ));
    }
    Ok(())
}

/// Split `[0, num_edges)` into `parts` contiguous ranges of near-equal size
/// (every range is within one edge of `num_edges / parts`). Deterministic;
/// trailing ranges may be empty when `parts > num_edges`.
pub fn split_even(num_edges: u64, parts: usize) -> Vec<(u64, u64)> {
    let p = parts.max(1) as u128;
    let e = num_edges as u128;
    (0..p)
        .map(|t| (((e * t) / p) as u64, ((e * (t + 1)) / p) as u64))
        .collect()
}

/// An [`EdgeStream`] over a borrowed edge slice (one range of an in-memory
/// graph).
pub struct EdgeSliceStream<'a> {
    edges: &'a [Edge],
    num_vertices: u64,
    cursor: usize,
}

impl<'a> EdgeSliceStream<'a> {
    /// Stream over `edges`, reporting `num_vertices` for the parent graph.
    pub fn new(edges: &'a [Edge], num_vertices: u64) -> Self {
        EdgeSliceStream {
            edges,
            num_vertices,
            cursor: 0,
        }
    }
}

impl EdgeStream for EdgeSliceStream<'_> {
    fn reset(&mut self) -> io::Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        match self.edges.get(self.cursor) {
            Some(&e) => {
                self.cursor += 1;
                Ok(Some(e))
            }
            None => Ok(None),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

impl RangedEdgeSource for InMemoryGraph {
    fn info(&self) -> GraphInfo {
        InMemoryGraph::info(self)
    }

    fn open_range(&self, start: u64, end: u64) -> io::Result<Box<dyn EdgeStream + '_>> {
        check_range(start, end, self.num_edges())?;
        Ok(Box::new(EdgeSliceStream::new(
            &self.edges()[start as usize..end as usize],
            self.num_vertices(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::for_each_edge;

    fn graph(n: u32) -> InMemoryGraph {
        InMemoryGraph::from_edges((0..n).map(|i| Edge::new(i % 7, (i * 3 + 1) % 11)).collect())
    }

    #[test]
    fn split_even_covers_exactly() {
        for (edges, parts) in [(0u64, 4), (1, 4), (10, 3), (100, 7), (5, 8)] {
            let ranges = split_even(edges, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[parts - 1].1, edges);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges not contiguous: {ranges:?}");
            }
            let sizes: Vec<u64> = ranges.iter().map(|(a, b)| b - a).collect();
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "uneven split: {sizes:?}");
        }
    }

    #[test]
    fn ranges_reassemble_the_full_pass() {
        let g = graph(100);
        let mut full = Vec::new();
        for_each_edge(&mut g.stream(), |e| full.push(e)).unwrap();
        for parts in [1usize, 2, 3, 8, 200] {
            let mut seen = Vec::new();
            for (a, b) in split_even(g.num_edges(), parts) {
                let mut s = g.open_range(a, b).unwrap();
                for_each_edge(&mut s, |e| seen.push(e)).unwrap();
            }
            assert_eq!(seen, full, "parts = {parts}");
        }
    }

    #[test]
    fn range_stream_resets_to_range_start() {
        let g = graph(50);
        let mut s = g.open_range(10, 20).unwrap();
        let mut first = Vec::new();
        for_each_edge(&mut s, |e| first.push(e)).unwrap();
        let mut second = Vec::new();
        for_each_edge(&mut s, |e| second.push(e)).unwrap();
        assert_eq!(first.len(), 10);
        assert_eq!(first, second);
        assert_eq!(first[0], g.edges()[10]);
    }

    #[test]
    fn out_of_bounds_range_rejected() {
        let g = graph(10);
        assert!(g.open_range(0, 11).is_err());
        assert!(g.open_range(5, 4).is_err());
        assert!(g.open_range(10, 10).is_ok(), "empty tail range is valid");
    }

    #[test]
    fn empty_graph_has_one_empty_range() {
        let g = InMemoryGraph::from_edges(vec![]);
        let mut s = g.open_range(0, 0).unwrap();
        assert_eq!(s.next_edge().unwrap(), None);
    }
}
