//! Graph substrate for the `twophase` edge-partitioning workspace.
//!
//! This crate provides everything the partitioners need to *observe* a graph
//! without materialising it in memory:
//!
//! * [`types`] — vertex / edge / partition identifier types shared by the
//!   whole workspace.
//! * [`stream`] — the [`EdgeStream`] abstraction: a
//!   resettable, multi-pass, one-edge-at-a-time view of an edge list. This is
//!   the out-of-core contract from the paper: space consumption of a consumer
//!   must be independent of `|E|`.
//! * [`formats`] — the binary edge-list format from the paper (pairs of
//!   little-endian 32-bit vertex ids) and a whitespace text format, with
//!   streaming readers and writers.
//! * [`degree`] — the linear-time out-of-core degree pass (phase 0 of 2PS-L).
//! * [`csr`] — a compressed-sparse-row adjacency representation for the
//!   *in-memory* baseline partitioners (NE, DNE, HEP, multilevel).
//! * [`gen`] — deterministic synthetic graph generators (R-MAT for skewed
//!   social-network-like graphs, planted partitions for community-heavy web
//!   graphs, G(n,m) for noise).
//! * [`datasets`] — the registry of scaled-down stand-ins for the paper's
//!   seven real-world graphs (Table III) plus the Wikipedia graph of Table IV.
//! * [`hash`] — the deterministic 64-bit mixers used by the stateless
//!   partitioners.
//!
//! # Quick example
//!
//! ```
//! use tps_graph::datasets::Dataset;
//! use tps_graph::stream::EdgeStream;
//!
//! // A tiny deterministic stand-in for the paper's com-orkut graph.
//! let graph = Dataset::Ok.generate_scaled(0.01);
//! let mut stream = graph.stream();
//! let mut edges = 0u64;
//! while let Some(_edge) = stream.next_edge().unwrap() {
//!     edges += 1;
//! }
//! assert_eq!(edges, stream.len_hint().unwrap());
//! ```

pub mod csr;
pub mod datasets;
pub mod degree;
pub mod formats;
pub mod gen;
pub mod hash;
pub mod ranged;
pub mod stream;
pub mod types;

pub use stream::{EdgeStream, InMemoryGraph};
pub use types::{Edge, PartitionId, VertexId};
