//! The binary edge-list format ("`.bel`").
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TPSBEL1\0"
//! 8       8     num_vertices (u64 le)
//! 16      8     num_edges    (u64 le)
//! 24      8*E   edge records: src (u32 le), dst (u32 le)
//! ```
//!
//! The payload matches the paper's "binary edge list with 32-bit vertex IDs";
//! the 24-byte header lets streams report exact hints without a discovery
//! pass. [`BinaryEdgeFile`] reads it with a buffered reader, 8 bytes per edge,
//! and supports `reset` by seeking — this is the faithful out-of-core path.
//!
//! ## Other readers and the v2 format
//!
//! This buffered reader is the *baseline* backend. The `tps-io` crate layers
//! faster paths over the same on-disk bytes, all behind
//! [`EdgeStream`]:
//!
//! * `tps_io::MmapEdgeFile` — zero-copy memory-mapped reads of this v1
//!   format (fastest on a warm page cache).
//! * `tps_io::PrefetchReader` — double-buffered background-thread reads
//!   (overlaps I/O with partitioning CPU work).
//! * `tps_io::v2` — the compressed chunked **TPSBEL2** format: varint-encoded
//!   edges in checksummed chunks with an index footer, typically 50–70 % of
//!   the v1 size on skewed graphs, plus order-preserving v1↔v2 converters.
//!
//! Pick a backend with `tps_io::open_edge_stream(path, ReaderBackend::…)`
//! (auto-detects v1 vs v2 by magic), or from the CLI via
//! `tps partition --reader buffered|mmap|prefetch`.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::stream::EdgeStream;
use crate::types::{Edge, GraphInfo};

/// Magic bytes identifying the format (also versions it).
pub const MAGIC: [u8; 8] = *b"TPSBEL1\0";
/// Header length in bytes.
pub const HEADER_LEN: u64 = 24;
/// Bytes per edge record.
pub const EDGE_RECORD_LEN: u64 = 8;

/// Write `edges` to `path` in the binary format.
pub fn write_binary_edge_list<P: AsRef<Path>>(
    path: P,
    num_vertices: u64,
    edges: impl IntoIterator<Item = Edge>,
) -> io::Result<GraphInfo> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&MAGIC)?;
    w.write_all(&num_vertices.to_le_bytes())?;
    // Placeholder for the edge count; patched after the payload.
    w.write_all(&0u64.to_le_bytes())?;
    let mut n = 0u64;
    for e in edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        n += 1;
    }
    let mut file = w.into_inner()?;
    file.seek(SeekFrom::Start(16))?;
    file.write_all(&n.to_le_bytes())?;
    file.flush()?;
    Ok(GraphInfo {
        num_vertices,
        num_edges: n,
    })
}

/// A streaming reader over a binary edge-list file.
///
/// Memory use is one `BufReader` buffer regardless of the file size: this is
/// the out-of-core ingestion path of every streaming partitioner.
pub struct BinaryEdgeFile {
    path: PathBuf,
    reader: BufReader<File>,
    info: GraphInfo,
    remaining: u64,
}

impl BinaryEdgeFile {
    /// Open `path`, validating the header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let mut reader = BufReader::with_capacity(1 << 16, file);
        let info = read_header(&mut reader)?;
        Ok(BinaryEdgeFile {
            path,
            reader,
            remaining: info.num_edges,
            info,
        })
    }

    /// The graph summary from the header.
    pub fn info(&self) -> GraphInfo {
        self.info
    }

    /// Path this stream reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total payload bytes of one full pass (used by the storage simulator to
    /// charge I/O time per pass).
    pub fn pass_bytes(&self) -> u64 {
        HEADER_LEN + self.info.num_edges * EDGE_RECORD_LEN
    }
}

/// Read and validate a TPSBEL1 header from `r`, leaving the cursor at the
/// first edge record. Shared by every v1 reader backend (buffered here,
/// mmap/prefetch in `tps-io`) so the header layout lives in one place.
pub fn read_header<R: Read>(r: &mut R) -> io::Result<GraphInfo> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a TPSBEL1 binary edge list (bad magic)",
        ));
    }
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    let num_vertices = u64::from_le_bytes(buf);
    r.read_exact(&mut buf)?;
    let num_edges = u64::from_le_bytes(buf);
    Ok(GraphInfo {
        num_vertices,
        num_edges,
    })
}

impl EdgeStream for BinaryEdgeFile {
    fn reset(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(HEADER_LEN))?;
        self.remaining = self.info.num_edges;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut rec = [0u8; 8];
        self.reader.read_exact(&mut rec)?;
        self.remaining -= 1;
        let src = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        let dst = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]);
        Ok(Some(Edge { src, dst }))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.info.num_edges)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.info.num_vertices)
    }
}

/// A buffered writer producing one binary edge-list file per partition —
/// the materialised output of an out-of-core partitioning run.
pub struct PartitionFileWriter {
    writers: Vec<BufWriter<File>>,
    counts: Vec<u64>,
    num_vertices: u64,
    paths: Vec<PathBuf>,
}

impl PartitionFileWriter {
    /// Create `k` files named `<stem>.part<i>.bel` in `dir`.
    pub fn create(dir: &Path, stem: &str, k: u32, num_vertices: u64) -> io::Result<Self> {
        let mut writers = Vec::with_capacity(k as usize);
        let mut paths = Vec::with_capacity(k as usize);
        for i in 0..k {
            let path = dir.join(format!("{stem}.part{i}.bel"));
            let file = File::create(&path)?;
            let mut w = BufWriter::new(file);
            w.write_all(&MAGIC)?;
            w.write_all(&num_vertices.to_le_bytes())?;
            w.write_all(&0u64.to_le_bytes())?;
            writers.push(w);
            paths.push(path);
        }
        Ok(PartitionFileWriter {
            writers,
            counts: vec![0; k as usize],
            num_vertices,
            paths,
        })
    }

    /// Append an edge to partition `p`.
    pub fn write(&mut self, edge: Edge, p: u32) -> io::Result<()> {
        let w = &mut self.writers[p as usize];
        w.write_all(&edge.src.to_le_bytes())?;
        w.write_all(&edge.dst.to_le_bytes())?;
        self.counts[p as usize] += 1;
        Ok(())
    }

    /// Patch edge counts into all headers and close the files.
    /// Returns the per-partition paths and edge counts.
    pub fn finish(self) -> io::Result<Vec<(PathBuf, u64)>> {
        let _ = self.num_vertices;
        let mut out = Vec::with_capacity(self.writers.len());
        for ((w, count), path) in self.writers.into_iter().zip(self.counts).zip(self.paths) {
            let mut file = w.into_inner()?;
            file.seek(SeekFrom::Start(16))?;
            file.write_all(&count.to_le_bytes())?;
            file.flush()?;
            out.push((path, count));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::for_each_edge;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tps-binfmt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("g.bel");
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(4, 0)];
        let info = write_binary_edge_list(&path, 5, edges.clone()).unwrap();
        assert_eq!(info.num_edges, 3);

        let mut f = BinaryEdgeFile::open(&path).unwrap();
        assert_eq!(
            f.info(),
            GraphInfo {
                num_vertices: 5,
                num_edges: 3
            }
        );
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, edges);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_pass_identical() {
        let dir = tmpdir("multipass");
        let path = dir.join("g.bel");
        let edges: Vec<Edge> = (0..100).map(|i| Edge::new(i, (i * 7 + 1) % 128)).collect();
        write_binary_edge_list(&path, 128, edges.clone()).unwrap();
        let mut f = BinaryEdgeFile::open(&path).unwrap();
        let mut p1 = Vec::new();
        for_each_edge(&mut f, |e| p1.push(e)).unwrap();
        let mut p2 = Vec::new();
        for_each_edge(&mut f, |e| p2.push(e)).unwrap();
        assert_eq!(p1, edges);
        assert_eq!(p1, p2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = tmpdir("badmagic");
        let path = dir.join("bad.bel");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        assert!(BinaryEdgeFile::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_round_trip() {
        let dir = tmpdir("empty");
        let path = dir.join("e.bel");
        write_binary_edge_list(&path, 0, std::iter::empty()).unwrap();
        let mut f = BinaryEdgeFile::open(&path).unwrap();
        assert_eq!(f.next_edge().unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pass_bytes_accounts_header_and_records() {
        let dir = tmpdir("bytes");
        let path = dir.join("g.bel");
        write_binary_edge_list(&path, 4, (0..10).map(|i| Edge::new(i % 4, (i + 1) % 4))).unwrap();
        let f = BinaryEdgeFile::open(&path).unwrap();
        assert_eq!(f.pass_bytes(), 24 + 10 * 8);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), f.pass_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partition_writer_splits_edges() {
        let dir = tmpdir("pwriter");
        let mut w = PartitionFileWriter::create(&dir, "g", 2, 6).unwrap();
        w.write(Edge::new(0, 1), 0).unwrap();
        w.write(Edge::new(2, 3), 1).unwrap();
        w.write(Edge::new(4, 5), 1).unwrap();
        let parts = w.finish().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, 1);
        assert_eq!(parts[1].1, 2);
        let mut f = BinaryEdgeFile::open(&parts[1].0).unwrap();
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, vec![Edge::new(2, 3), Edge::new(4, 5)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
