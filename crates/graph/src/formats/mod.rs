//! On-disk edge-list formats.
//!
//! * [`binary`] — the paper's native format: a flat sequence of
//!   `(u32 le, u32 le)` edge records with a small header carrying `|V|` and
//!   `|E|`. Table III sizes its datasets in exactly this representation
//!   ("binary edge list with 32-bit vertex IDs").
//! * [`text`] — whitespace-separated `src dst` lines with `#`/`%` comments,
//!   the common interchange format of SNAP / KONECT dumps.

pub mod binary;
pub mod text;
