//! Whitespace text edge lists (SNAP / KONECT style).
//!
//! One edge per line as `src dst`, with blank lines and lines starting with
//! `#` or `%` ignored. Vertex ids must fit in `u32`. Ids are taken verbatim
//! (no remapping): real dumps are usually dense already, and remapping would
//! change the stream order the algorithms see. A separate [`compact_ids`]
//! helper densifies sparse id spaces when needed.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;

use crate::stream::EdgeStream;
use crate::types::{Edge, VertexId};

/// A streaming reader over a text edge list. Performs no allocation per edge
/// beyond the reused line buffer.
pub struct TextEdgeFile {
    reader: BufReader<File>,
    line: String,
    line_no: u64,
}

impl TextEdgeFile {
    /// Open a text edge list at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::open(path)?;
        Ok(TextEdgeFile {
            reader: BufReader::with_capacity(1 << 16, file),
            line: String::new(),
            line_no: 0,
        })
    }
}

fn parse_line(line: &str, line_no: u64) -> io::Result<Option<Edge>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut it = trimmed.split_whitespace();
    let bad = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {line_no}: {what}: {trimmed:?}"),
        )
    };
    let src: VertexId = it
        .next()
        .ok_or_else(|| bad("missing src"))?
        .parse()
        .map_err(|_| bad("unparsable src"))?;
    let dst: VertexId = it
        .next()
        .ok_or_else(|| bad("missing dst"))?
        .parse()
        .map_err(|_| bad("unparsable dst"))?;
    Ok(Some(Edge { src, dst }))
}

impl EdgeStream for TextEdgeFile {
    fn reset(&mut self) -> io::Result<()> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.line_no = 0;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if let Some(edge) = parse_line(&self.line, self.line_no)? {
                return Ok(Some(edge));
            }
        }
    }
}

/// Write edges as a text edge list (one `src dst` line per edge).
pub fn write_text_edge_list<P: AsRef<Path>>(
    path: P,
    edges: impl IntoIterator<Item = Edge>,
) -> io::Result<u64> {
    let mut w = io::BufWriter::new(File::create(path)?);
    let mut n = 0u64;
    for e in edges {
        writeln!(w, "{} {}", e.src, e.dst)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Remap arbitrary (possibly sparse) vertex ids to a dense `0..n` range,
/// preserving first-appearance order. Returns the remapped edges and the
/// number of distinct vertices.
pub fn compact_ids(edges: &[Edge]) -> (Vec<Edge>, u64) {
    let mut map: HashMap<VertexId, VertexId> = HashMap::new();
    let mut next: VertexId = 0;
    let mut remap = |v: VertexId, map: &mut HashMap<VertexId, VertexId>| -> VertexId {
        *map.entry(v).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    let out = edges
        .iter()
        .map(|e| Edge::new(remap(e.src, &mut map), remap(e.dst, &mut map)))
        .collect();
    (out, next as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::for_each_edge;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tps-textfmt-{tag}-{}.txt", std::process::id()))
    }

    #[test]
    fn parses_basic_file_with_comments() {
        let path = tmpfile("basic");
        std::fs::write(&path, "# comment\n0 1\n\n% other comment\n1 2\n 2   0 \n").unwrap();
        let mut f = TextEdgeFile::open(&path).unwrap();
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(
            seen,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_restarts_pass() {
        let path = tmpfile("reset");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let mut f = TextEdgeFile::open(&path).unwrap();
        let mut a = Vec::new();
        for_each_edge(&mut f, |e| a.push(e)).unwrap();
        let mut b = Vec::new();
        for_each_edge(&mut f, |e| b.push(e)).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let path = tmpfile("badline");
        std::fs::write(&path, "0 1\nnot an edge\n").unwrap();
        let mut f = TextEdgeFile::open(&path).unwrap();
        assert!(f.next_edge().unwrap().is_some());
        let err = f.next_edge().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_dst_is_error() {
        let path = tmpfile("missingdst");
        std::fs::write(&path, "42\n").unwrap();
        let mut f = TextEdgeFile::open(&path).unwrap();
        assert!(f.next_edge().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_round_trip() {
        let path = tmpfile("rt");
        let edges = vec![Edge::new(3, 4), Edge::new(4, 5)];
        write_text_edge_list(&path, edges.clone()).unwrap();
        let mut f = TextEdgeFile::open(&path).unwrap();
        let mut seen = Vec::new();
        for_each_edge(&mut f, |e| seen.push(e)).unwrap();
        assert_eq!(seen, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_ids_densifies() {
        let edges = vec![Edge::new(100, 7), Edge::new(7, 100), Edge::new(9999, 100)];
        let (out, n) = compact_ids(&edges);
        assert_eq!(n, 3);
        assert_eq!(out, vec![Edge::new(0, 1), Edge::new(1, 0), Edge::new(2, 0)]);
    }
}
