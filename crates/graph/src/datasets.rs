//! Scaled-down deterministic stand-ins for the paper's datasets (Table III).
//!
//! The paper evaluates on seven real-world graphs (com-orkut, it-2004,
//! twitter-2010, com-friendster, uk-2007-05, gsh-2015, wdc-2014) plus a
//! Wikipedia graph in Table IV. We cannot ship those (up to 478 GiB), so each
//! dataset maps to a generator configuration that preserves the properties the
//! experiments depend on:
//!
//! * **social graphs** (OK, TW, FR, WI) → R-MAT with skewed quadrants: heavy
//!   degree tail, weak community structure, no id locality. TW gets extra
//!   skew — it is the one graph in the paper where DBH beats 2PS-L on
//!   replication factor.
//! * **web graphs** (IT, UK, GSH, WDC) → planted partitions: strong
//!   communities, id locality, hub skew. GSH/WDC get the lowest mixing — GSH
//!   is where the paper reports the largest 2PS-L advantage over DBH (6.4×).
//!
//! Sizes are ~1000× below the paper (minutes of laptop time instead of a
//! 528 GB server), with |E|/|V| ratios kept close to Table III. Every dataset
//! has a fixed seed: two runs of any experiment see identical graphs.

use crate::gen::planted::{self, PlantedConfig};
use crate::gen::social::{self, SocialConfig};
use crate::stream::InMemoryGraph;

/// Whether a dataset stands in for a social network or a web crawl.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Heavy-tailed, weak community structure (R-MAT).
    Social,
    /// Strong community structure and id locality (planted partition).
    Web,
}

/// The generator behind a dataset.
#[derive(Clone, Debug)]
pub enum DatasetConfig {
    /// Hybrid R-MAT + community overlay (social graphs).
    Social(SocialConfig),
    /// Planted-partition configuration (web graphs).
    Planted(PlantedConfig),
}

/// The paper's datasets (Table III plus the Wikipedia graph of Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// com-orkut: 3.1 M vertices, 117 M edges, social.
    Ok,
    /// it-2004: 41 M vertices, 1.2 B edges, web.
    It,
    /// twitter-2010: 42 M vertices, 1.5 B edges, social (most skewed).
    Tw,
    /// com-friendster: 66 M vertices, 1.8 B edges, social.
    Fr,
    /// uk-2007-05: 106 M vertices, 3.7 B edges, web.
    Uk,
    /// gsh-2015: 988 M vertices, 34 B edges, web.
    Gsh,
    /// wdc-2014: 1.7 B vertices, 64 B edges, web.
    Wdc,
    /// Wikipedia (Table IV): 14 M vertices, 437 M edges.
    Wi,
}

/// Paper-reported statistics for a dataset (Table III / §V-E).
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Vertices in the real dataset.
    pub vertices: u64,
    /// Edges in the real dataset.
    pub edges: u64,
    /// Size of the binary edge list, bytes (Table III's "Size").
    pub binary_size_bytes: u64,
}

impl Dataset {
    /// All seven Table III graphs in the paper's order.
    pub const TABLE3: [Dataset; 7] = [
        Dataset::Ok,
        Dataset::It,
        Dataset::Tw,
        Dataset::Fr,
        Dataset::Uk,
        Dataset::Gsh,
        Dataset::Wdc,
    ];

    /// All datasets including Wikipedia.
    pub const ALL: [Dataset; 8] = [
        Dataset::Ok,
        Dataset::It,
        Dataset::Tw,
        Dataset::Fr,
        Dataset::Uk,
        Dataset::Gsh,
        Dataset::Wdc,
        Dataset::Wi,
    ];

    /// The paper's abbreviation (OK, IT, ...).
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::Ok => "OK",
            Dataset::It => "IT",
            Dataset::Tw => "TW",
            Dataset::Fr => "FR",
            Dataset::Uk => "UK",
            Dataset::Gsh => "GSH",
            Dataset::Wdc => "WDC",
            Dataset::Wi => "WI",
        }
    }

    /// The full dataset name from Table III.
    pub fn full_name(self) -> &'static str {
        match self {
            Dataset::Ok => "com-orkut",
            Dataset::It => "it-2004",
            Dataset::Tw => "twitter-2010",
            Dataset::Fr => "com-friendster",
            Dataset::Uk => "uk-2007-05",
            Dataset::Gsh => "gsh-2015",
            Dataset::Wdc => "wdc-2014",
            Dataset::Wi => "wikipedia",
        }
    }

    /// Social or web.
    pub fn kind(self) -> GraphKind {
        match self {
            Dataset::Ok | Dataset::Tw | Dataset::Fr => GraphKind::Social,
            Dataset::It | Dataset::Uk | Dataset::Gsh | Dataset::Wdc | Dataset::Wi => GraphKind::Web,
        }
    }

    /// Statistics of the real dataset as reported in the paper.
    pub fn paper_stats(self) -> PaperStats {
        let (v, e, sz) = match self {
            Dataset::Ok => (3_100_000, 117_000_000, 895 << 20),
            Dataset::It => (41_000_000, 1_200_000_000, 9u64 << 30),
            Dataset::Tw => (42_000_000, 1_500_000_000, 11u64 << 30),
            Dataset::Fr => (66_000_000, 1_800_000_000, 14u64 << 30),
            Dataset::Uk => (106_000_000, 3_700_000_000, 28u64 << 30),
            Dataset::Gsh => (988_000_000, 34_000_000_000, 248u64 << 30),
            Dataset::Wdc => (1_700_000_000, 64_000_000_000, 478u64 << 30),
            Dataset::Wi => (14_000_000, 437_000_000, 3_400 << 20),
        };
        PaperStats {
            vertices: v,
            edges: e,
            binary_size_bytes: sz,
        }
    }

    /// Deterministic per-dataset seed.
    pub fn seed(self) -> u64 {
        0x2B5C_0DE0_0000_0000
            + match self {
                Dataset::Ok => 1,
                Dataset::It => 2,
                Dataset::Tw => 3,
                Dataset::Fr => 4,
                Dataset::Uk => 5,
                Dataset::Gsh => 6,
                Dataset::Wdc => 7,
                Dataset::Wi => 8,
            }
    }

    /// Generator configuration at reproduction scale (`scale = 1.0`).
    pub fn config(self) -> DatasetConfig {
        self.config_scaled(1.0)
    }

    /// Generator configuration with edge counts multiplied by `scale`
    /// (vertex counts scale along to keep the |E|/|V| ratio).
    pub fn config_scaled(self, scale: f64) -> DatasetConfig {
        assert!(scale > 0.0, "scale must be positive");
        // (edges at scale 1.0, vertices at scale 1.0).
        //
        // Social graphs keep the paper's |E|/|V| ratios (the R-MAT tail is
        // what matters for them). Web graphs use mean degree ≈ 16 instead of
        // the paper's 58–68: scaling |V| down 1000× while keeping the mean
        // degree would make planted communities infeasible relative to the
        // volume cap (see PlantedConfig::web); the preserved property is
        // community volume ≪ 2|E|/k for every evaluated k, which is what the
        // paper's experiments actually exercise.
        let (e1, v1) = match self {
            Dataset::Ok => (400_000u64, 12_000u64),
            Dataset::It => (600_000, 75_000),
            Dataset::Tw => (800_000, 24_000),
            Dataset::Fr => (1_000_000, 36_000),
            Dataset::Uk => (1_200_000, 150_000),
            Dataset::Gsh => (1_600_000, 200_000),
            Dataset::Wdc => (2_000_000, 250_000),
            Dataset::Wi => (400_000, 50_000),
        };
        let edges = ((e1 as f64 * scale) as u64).max(16);
        let vertices = ((v1 as f64 * scale) as u64).max(16);
        match self.kind() {
            GraphKind::Social => {
                // Pick the R-MAT scale so the id universe is ~1.3× the vertex
                // target (compaction then lands near the target).
                let rmat_scale = (((vertices as f64) * 1.3).log2().ceil() as u32).max(3);
                // Community share per dataset: Orkut/Friendster are
                // community-rich; twitter-2010 is the most skewed,
                // least-clustered graph in the paper — the one where DBH's
                // replication factor beats 2PS-L.
                let community_fraction = match self {
                    Dataset::Tw => 0.10,
                    Dataset::Fr => 0.50,
                    _ => 0.55, // OK
                };
                let mut cfg = SocialConfig::new(rmat_scale, edges, community_fraction);
                if self == Dataset::Tw {
                    cfg.rmat.a = 0.65;
                    cfg.rmat.b = 0.15;
                    cfg.rmat.c = 0.15;
                }
                DatasetConfig::Social(cfg)
            }
            GraphKind::Web => {
                let mut cfg = PlantedConfig::web(vertices, edges);
                match self {
                    Dataset::Gsh => cfg.mixing = 0.04,
                    Dataset::Wdc => cfg.mixing = 0.05,
                    Dataset::It => cfg.mixing = 0.08,
                    Dataset::Uk => cfg.mixing = 0.06,
                    // Wikipedia links cross topic boundaries far more often
                    // than host-local web links.
                    Dataset::Wi => cfg.mixing = 0.25,
                    _ => {}
                }
                DatasetConfig::Planted(cfg)
            }
        }
    }

    /// Generate the dataset at reproduction scale.
    pub fn generate(self) -> InMemoryGraph {
        self.generate_scaled(1.0)
    }

    /// Generate at `scale` × the reproduction size (e.g. `0.1` for smoke
    /// tests, `4.0` for longer benchmark runs).
    pub fn generate_scaled(self, scale: f64) -> InMemoryGraph {
        match self.config_scaled(scale) {
            DatasetConfig::Social(cfg) => social::generate(&cfg, self.seed()),
            DatasetConfig::Planted(cfg) => planted::generate(&cfg, self.seed()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for ds in Dataset::ALL {
            let g = ds.generate_scaled(0.01);
            assert!(g.num_edges() > 0, "{} produced no edges", ds.abbrev());
            assert!(g.num_vertices() > 1, "{} produced <2 vertices", ds.abbrev());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Ok.generate_scaled(0.02);
        let b = Dataset::Ok.generate_scaled(0.02);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn datasets_differ_from_each_other() {
        let a = Dataset::Ok.generate_scaled(0.02);
        let b = Dataset::Tw.generate_scaled(0.02);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn table3_order_matches_paper() {
        let abbrevs: Vec<&str> = Dataset::TABLE3.iter().map(|d| d.abbrev()).collect();
        assert_eq!(abbrevs, vec!["OK", "IT", "TW", "FR", "UK", "GSH", "WDC"]);
    }

    #[test]
    fn paper_stats_sanity() {
        // Spot-check the hard-coded Table III numbers.
        assert_eq!(Dataset::Ok.paper_stats().edges, 117_000_000);
        assert_eq!(Dataset::Wdc.paper_stats().vertices, 1_700_000_000);
    }

    #[test]
    fn kinds_match_paper() {
        assert_eq!(Dataset::Ok.kind(), GraphKind::Social);
        assert_eq!(Dataset::Gsh.kind(), GraphKind::Web);
    }

    #[test]
    fn scaled_edges_track_scale() {
        let small = Dataset::It.generate_scaled(0.01);
        let big = Dataset::It.generate_scaled(0.05);
        assert!(big.num_edges() > small.num_edges() * 3);
    }
}
