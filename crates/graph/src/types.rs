//! Core identifier and edge types shared across the workspace.
//!
//! The paper (and its reference implementation) use dense 32-bit vertex ids;
//! we follow that choice: it halves the memory of every per-vertex array and
//! matches the binary edge-list format of Table III.

use std::fmt;

/// A vertex identifier. Dense, 0-based, 32-bit (the paper's format).
pub type VertexId = u32;

/// A partition identifier in `0..k`. `k` never exceeds a few thousand in any
/// realistic deployment, but we keep the full 32-bit range for safety.
pub type PartitionId = u32;

/// A cluster identifier produced by the phase-1 streaming clustering.
/// There can be at most one cluster per vertex, so 32 bits suffice.
pub type ClusterId = u32;

/// An undirected edge between two vertices.
///
/// Streaming edge partitioning treats the graph as undirected: an edge
/// `(u, v)` covers both endpoints regardless of direction. We nevertheless
/// preserve the order in which endpoints appear in the input because the
/// algorithms in the paper are sensitive to it (e.g. tie-breaking in the
/// two-choice scoring favours the first endpoint's cluster partition).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// First endpoint as it appeared in the stream.
    pub src: VertexId,
    /// Second endpoint as it appeared in the stream.
    pub dst: VertexId,
}

impl Edge {
    /// Create an edge. No normalisation is applied; see [`Edge::canonical`].
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// The edge with endpoints ordered `(min, max)`. Useful for deduplication
    /// and for treating the graph as undirected in tests and generators.
    #[inline]
    pub fn canonical(self) -> Self {
        if self.src <= self.dst {
            self
        } else {
            Edge {
                src: self.dst,
                dst: self.src,
            }
        }
    }

    /// Whether this edge is a self-loop. Self-loops carry no information for
    /// edge partitioning (a single vertex is replicated wherever the edge
    /// goes) but must still be assigned exactly once.
    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }

    /// Iterate over the two endpoints in stream order.
    #[inline]
    pub fn endpoints(self) -> [VertexId; 2] {
        [self.src, self.dst]
    }

    /// Given one endpoint, return the other one.
    ///
    /// # Panics
    /// Panics in debug builds if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: VertexId) -> VertexId {
        debug_assert!(v == self.src || v == self.dst);
        if v == self.src {
            self.dst
        } else {
            self.src
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src, self.dst)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

/// Summary statistics of a graph, as carried by streams that know them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphInfo {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: u64,
    /// Number of edges in the stream (including duplicates/self-loops if any).
    pub num_edges: u64,
}

impl GraphInfo {
    /// Mean degree `2|E| / |V|` (0 for an empty vertex set).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 3).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(3, 5).canonical(), Edge::new(3, 5));
        assert_eq!(Edge::new(4, 4).canonical(), Edge::new(4, 4));
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(7, 7).is_self_loop());
        assert!(!Edge::new(7, 8).is_self_loop());
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 2);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
    }

    #[test]
    fn endpoints_in_stream_order() {
        assert_eq!(Edge::new(9, 4).endpoints(), [9, 4]);
    }

    #[test]
    fn mean_degree() {
        let info = GraphInfo {
            num_vertices: 4,
            num_edges: 6,
        };
        assert!((info.mean_degree() - 3.0).abs() < 1e-12);
        let empty = GraphInfo::default();
        assert_eq!(empty.mean_degree(), 0.0);
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (1u32, 2u32).into();
        assert_eq!(e, Edge::new(1, 2));
    }
}
