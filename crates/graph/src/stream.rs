//! The out-of-core edge-stream abstraction.
//!
//! Streaming edge partitioning (paper §II-B) ingests the graph *one edge at a
//! time* and may perform several complete passes (degree pass, clustering
//! pass(es), pre-partitioning pass, partitioning pass). [`EdgeStream`] is that
//! contract: `reset` rewinds to the beginning, `next_edge` yields edges in the
//! stream's fixed order. A conforming consumer never stores the edge set, so
//! its memory use is `O(|V|·k)` at most — exactly the paper's Table II bound.
//!
//! Implementations in this workspace:
//!
//! * [`InMemoryGraph`] — a `Vec<Edge>` backed stream. Used by tests, the
//!   generators and the benchmark harness (the paper itself evaluates with the
//!   page cache hot, which this models faithfully).
//! * [`formats::binary::BinaryEdgeFile`](crate::formats::binary) — the
//!   on-disk binary edge list, streamed with a buffered reader.
//! * `tps_storage::DeviceStream` — a throttled, virtual-clock device model.

use std::io;

use crate::types::{Edge, GraphInfo, VertexId};

/// A resettable, multi-pass stream of edges — the out-of-core view of a graph.
///
/// The same instance is reused for all passes of a partitioning run, so the
/// order of edges is identical across passes (the paper's algorithms rely on
/// pre-partitioning and partitioning passes observing the same stream).
pub trait EdgeStream {
    /// Rewind to the beginning of the stream, starting a fresh pass.
    fn reset(&mut self) -> io::Result<()>;

    /// The next edge of the current pass, or `None` when the pass is done.
    fn next_edge(&mut self) -> io::Result<Option<Edge>>;

    /// Number of edges per pass, if known ahead of time.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Number of vertices (`max id + 1`), if known ahead of time.
    ///
    /// All streams in this workspace know their vertex count: the binary file
    /// format stores it in a header and generators know it by construction.
    /// A stream that does not know it forces consumers to discover the bound
    /// with an extra pass (see [`discover_info`]).
    fn num_vertices_hint(&self) -> Option<u64> {
        None
    }
}

/// Blanket impl so `&mut S` can be passed where an `EdgeStream` is expected.
impl<S: EdgeStream + ?Sized> EdgeStream for &mut S {
    fn reset(&mut self) -> io::Result<()> {
        (**self).reset()
    }
    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        (**self).next_edge()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn num_vertices_hint(&self) -> Option<u64> {
        (**self).num_vertices_hint()
    }
}

impl<S: EdgeStream + ?Sized> EdgeStream for Box<S> {
    fn reset(&mut self) -> io::Result<()> {
        (**self).reset()
    }
    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        (**self).next_edge()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn num_vertices_hint(&self) -> Option<u64> {
        (**self).num_vertices_hint()
    }
}

/// Run one complete pass over the stream, calling `f` per edge.
///
/// Resets the stream first, so each call is an independent pass.
pub fn for_each_edge<S, F>(stream: &mut S, mut f: F) -> io::Result<()>
where
    S: EdgeStream + ?Sized,
    F: FnMut(Edge),
{
    stream.reset()?;
    while let Some(e) = stream.next_edge()? {
        f(e);
    }
    Ok(())
}

/// Discover `(num_vertices, num_edges)` with a single pass, for streams that
/// lack hints. Returns the hints without a pass when both are present.
pub fn discover_info<S: EdgeStream + ?Sized>(stream: &mut S) -> io::Result<GraphInfo> {
    if let (Some(v), Some(e)) = (stream.num_vertices_hint(), stream.len_hint()) {
        return Ok(GraphInfo {
            num_vertices: v,
            num_edges: e,
        });
    }
    let mut max_v: Option<VertexId> = None;
    let mut edges = 0u64;
    for_each_edge(stream, |e| {
        edges += 1;
        let m = e.src.max(e.dst);
        max_v = Some(max_v.map_or(m, |cur| cur.max(m)));
    })?;
    Ok(GraphInfo {
        num_vertices: max_v.map_or(0, |m| m as u64 + 1),
        num_edges: edges,
    })
}

/// An in-memory edge list exposing the streaming interface.
///
/// This is the workhorse for tests, generators and page-cache-hot benchmarks.
/// It is *not* a violation of the out-of-core model from the consumer's point
/// of view: consumers only see the `EdgeStream` trait.
#[derive(Clone, Debug)]
pub struct InMemoryGraph {
    edges: Vec<Edge>,
    num_vertices: u64,
    cursor: usize,
}

impl InMemoryGraph {
    /// Build from an edge list, computing the vertex count as `max id + 1`.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let num_vertices = edges
            .iter()
            .map(|e| e.src.max(e.dst) as u64 + 1)
            .max()
            .unwrap_or(0);
        InMemoryGraph {
            edges,
            num_vertices,
            cursor: 0,
        }
    }

    /// Build from an edge list with an explicit vertex-count (allows trailing
    /// isolated vertices, which do exist in real datasets).
    ///
    /// # Panics
    /// Panics if an edge references a vertex `>= num_vertices`.
    pub fn with_num_vertices(edges: Vec<Edge>, num_vertices: u64) -> Self {
        for e in &edges {
            assert!(
                (e.src as u64) < num_vertices && (e.dst as u64) < num_vertices,
                "edge {e:?} out of bounds for |V| = {num_vertices}"
            );
        }
        InMemoryGraph {
            edges,
            num_vertices,
            cursor: 0,
        }
    }

    /// Borrow the underlying edge slice (tests and in-memory baselines).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// A fresh stream positioned at the start (clones the handle, shares no
    /// cursor with `self`).
    pub fn stream(&self) -> InMemoryGraph {
        InMemoryGraph {
            edges: self.edges.clone(),
            num_vertices: self.num_vertices,
            cursor: 0,
        }
    }

    /// Graph summary.
    pub fn info(&self) -> GraphInfo {
        GraphInfo {
            num_vertices: self.num_vertices,
            num_edges: self.edges.len() as u64,
        }
    }
}

impl EdgeStream for InMemoryGraph {
    fn reset(&mut self) -> io::Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_edge(&mut self) -> io::Result<Option<Edge>> {
        match self.edges.get(self.cursor) {
            Some(&e) => {
                self.cursor += 1;
                Ok(Some(e))
            }
            None => Ok(None),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.edges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> InMemoryGraph {
        InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)])
    }

    #[test]
    fn in_memory_single_pass() {
        let mut g = tri();
        let mut seen = Vec::new();
        while let Some(e) = g.next_edge().unwrap() {
            seen.push(e);
        }
        assert_eq!(
            seen,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)]
        );
        assert_eq!(g.next_edge().unwrap(), None);
    }

    #[test]
    fn reset_allows_identical_second_pass() {
        let mut g = tri();
        let mut first = Vec::new();
        for_each_edge(&mut g, |e| first.push(e)).unwrap();
        let mut second = Vec::new();
        for_each_edge(&mut g, |e| second.push(e)).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn hints_are_exact() {
        let g = tri();
        assert_eq!(g.len_hint(), Some(3));
        assert_eq!(g.num_vertices_hint(), Some(3));
    }

    #[test]
    fn empty_graph() {
        let mut g = InMemoryGraph::from_edges(vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.next_edge().unwrap(), None);
        let info = discover_info(&mut g).unwrap();
        assert_eq!(
            info,
            GraphInfo {
                num_vertices: 0,
                num_edges: 0
            }
        );
    }

    #[test]
    fn with_num_vertices_allows_isolated_tail() {
        let g = InMemoryGraph::with_num_vertices(vec![Edge::new(0, 1)], 10);
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn with_num_vertices_rejects_oob() {
        InMemoryGraph::with_num_vertices(vec![Edge::new(0, 10)], 5);
    }

    #[test]
    fn discover_info_counts_without_hints() {
        // Wrap to erase hints.
        struct NoHints(InMemoryGraph);
        impl EdgeStream for NoHints {
            fn reset(&mut self) -> io::Result<()> {
                self.0.reset()
            }
            fn next_edge(&mut self) -> io::Result<Option<Edge>> {
                self.0.next_edge()
            }
        }
        let mut s = NoHints(tri());
        let info = discover_info(&mut s).unwrap();
        assert_eq!(
            info,
            GraphInfo {
                num_vertices: 3,
                num_edges: 3
            }
        );
    }

    #[test]
    fn stream_through_dyn_reference() {
        let mut g = tri();
        let dyn_stream: &mut dyn EdgeStream = &mut g;
        let mut n = 0;
        for_each_edge(dyn_stream, |_| n += 1).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn boxed_stream_works() {
        let mut b: Box<dyn EdgeStream> = Box::new(tri());
        let mut n = 0;
        for_each_edge(&mut b, |_| n += 1).unwrap();
        assert_eq!(n, 3);
    }
}
