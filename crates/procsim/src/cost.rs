//! Cluster cost model: counted work → simulated wall-clock.
//!
//! Calibrated against the paper's Table IV setup (4 compute nodes / 32 Spark
//! executors, 10 GbE, static PageRank with 100 iterations): per-edge gather
//! cost, per-replica apply/sync cost, message bytes over shared bandwidth
//! and a per-round barrier latency, all multiplied by a Spark overhead
//! factor. Absolute values are documented in EXPERIMENTS.md; the experiment
//! cares about *which partitioning makes processing faster*, which depends
//! only on the counted quantities.
//!
//! The model also reproduces Table IV's failure mode: GraphX spills shuffle
//! data to the workers' disks, and a partitioning with a high replication
//! factor overflows the per-worker disk budget (DBH on WI: "ran out of disk
//! space (35 GB per worker), as too much shuffling occurred").

use std::time::Duration;

use crate::layout::DistributedGraph;
use crate::pagerank::{run_distributed, PageRankConfig, PageRankResult};

/// Cost parameters of the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterCostModel {
    /// Seconds per edge-scan operation (one direction of one edge).
    pub per_edge_op: f64,
    /// Seconds per hosted replica per iteration (apply + (de)serialise).
    pub per_replica: f64,
    /// Bytes per mirror message (vertex id + accumulator/rank).
    pub message_bytes: f64,
    /// Cluster bisection bandwidth in bytes/second.
    pub network_bandwidth: f64,
    /// Barrier latency per synchronisation round (two rounds per iteration).
    pub round_latency: f64,
    /// Multiplier for framework overhead (task scheduling, JVM, ...).
    pub framework_overhead: f64,
    /// Per-worker shuffle-disk budget in bytes; exceeded ⇒ the job FAILs.
    pub worker_disk_budget: f64,
}

impl ClusterCostModel {
    /// A Spark/GraphX-like cluster in the spirit of the paper's testbed,
    /// scaled to repo-sized graphs (~1000× smaller than the paper's):
    /// the disk budget shrinks with the same factor so the DBH-on-WI
    /// failure regime is preserved.
    pub fn spark_like() -> Self {
        ClusterCostModel {
            // Calibrated against Table IV: GraphX needs ≈2.4 s/iteration for
            // 117 M edges on 32 executors ⇒ ~300 ns per directed edge-op
            // including JVM/serde overhead (the framework factor below
            // brings the effective figure to ~480 ns).
            per_edge_op: 300e-9,
            per_replica: 200e-9,
            message_bytes: 16.0,
            network_bandwidth: 1.25e9, // 10 GbE
            // Scaled with the ~1000× smaller graphs: a 20 ms Spark barrier
            // would dwarf every other term at repo scale and hide the
            // replication-factor signal the experiment is about.
            round_latency: 1e-3,
            framework_overhead: 1.6,
            // The paper's workers had 35 GB of shuffle disk for ~40× larger
            // per-worker graphs; 30 MB sits between DBH's shuffle demand on
            // WI (which must FAIL, as in Table IV) and every other
            // partitioner's (which must pass).
            worker_disk_budget: 30e6,
        }
    }

    /// Simulated time for one iteration given the counted quantities.
    fn iteration_seconds(&self, max_edge_ops: u64, max_replicas: u64, messages: u64) -> f64 {
        let compute =
            max_edge_ops as f64 * self.per_edge_op + max_replicas as f64 * self.per_replica;
        let network = messages as f64 * self.message_bytes / self.network_bandwidth;
        (compute + network + 2.0 * self.round_latency) * self.framework_overhead
    }

    /// Accumulated shuffle bytes per (max) worker over the whole job.
    fn shuffle_bytes_per_worker(&self, graph: &DistributedGraph, iterations: u32) -> f64 {
        // Mirror traffic is distributed across workers; the max-loaded worker
        // hosts `max replicas` of them. Each mirror moves 2 messages/iter.
        let max_worker_mirrors = (0..graph.k())
            .map(|p| graph.replicas_on(p))
            .max()
            .unwrap_or(0);
        max_worker_mirrors as f64 * 2.0 * self.message_bytes * iterations as f64
    }
}

/// The job failed by overflowing a worker's shuffle-disk budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpillError {
    /// Bytes the fullest worker would have spilled.
    pub needed_bytes: f64,
    /// The configured budget.
    pub budget_bytes: f64,
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker ran out of shuffle disk: needs {:.1} MB, budget {:.1} MB",
            self.needed_bytes / 1e6,
            self.budget_bytes / 1e6
        )
    }
}

impl std::error::Error for SpillError {}

/// Outcome of a simulated distributed processing job.
#[derive(Clone, Debug)]
pub struct ProcessingOutcome {
    /// Simulated job wall-clock.
    pub simulated_time: Duration,
    /// The executed PageRank (real values, validated in tests).
    pub result: PageRankResult,
    /// Replication factor of the layout (the quantity driving sync cost).
    pub replication_factor: f64,
}

/// Run PageRank on the layout and convert the counted work to simulated
/// time; fails with [`SpillError`] when the shuffle volume overflows the
/// per-worker disk budget (the Table IV "FAIL" regime).
pub fn simulate_pagerank(
    graph: &DistributedGraph,
    pr: &PageRankConfig,
    cost: &ClusterCostModel,
) -> Result<ProcessingOutcome, SpillError> {
    let shuffle = cost.shuffle_bytes_per_worker(graph, pr.iterations);
    if shuffle > cost.worker_disk_budget {
        return Err(SpillError {
            needed_bytes: shuffle,
            budget_bytes: cost.worker_disk_budget,
        });
    }
    let result = run_distributed(graph, pr);
    let per_iter = cost.iteration_seconds(
        result.counts.max_worker_edge_ops,
        result.counts.max_worker_replicas,
        result.counts.messages_per_iteration,
    );
    Ok(ProcessingOutcome {
        simulated_time: Duration::from_secs_f64(per_iter * pr.iterations as f64),
        result,
        replication_factor: graph.replication_factor(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DistributedGraph;
    use tps_graph::types::Edge;

    fn tiny_layout(k: u32) -> DistributedGraph {
        let edges: Vec<Edge> = (0..40).map(|i| Edge::new(i, (i + 1) % 40)).collect();
        let assignments: Vec<(Edge, u32)> = edges.iter().map(|&e| (e, e.src % k)).collect();
        DistributedGraph::from_assignments(&assignments, 40, k)
    }

    #[test]
    fn lower_replication_is_faster() {
        // Same cycle graph, contiguous split (few mirrors) vs round-robin
        // (every vertex mirrored).
        let edges: Vec<Edge> = (0..40).map(|i| Edge::new(i, (i + 1) % 40)).collect();
        let contiguous: Vec<(Edge, u32)> = edges
            .iter()
            .map(|&e| (e, if e.src < 20 { 0 } else { 1 }))
            .collect();
        let scattered: Vec<(Edge, u32)> = edges.iter().map(|&e| (e, e.src % 2)).collect();
        let g_good = DistributedGraph::from_assignments(&contiguous, 40, 2);
        let g_bad = DistributedGraph::from_assignments(&scattered, 40, 2);
        let cost = ClusterCostModel::spark_like();
        let pr = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let good = simulate_pagerank(&g_good, &pr, &cost).unwrap();
        let bad = simulate_pagerank(&g_bad, &pr, &cost).unwrap();
        assert!(good.replication_factor < bad.replication_factor);
        assert!(good.simulated_time < bad.simulated_time);
    }

    #[test]
    fn disk_budget_failure() {
        let g = tiny_layout(4);
        let mut cost = ClusterCostModel::spark_like();
        cost.worker_disk_budget = 1.0; // 1 byte: everything fails
        let err = simulate_pagerank(&g, &PageRankConfig::default(), &cost).unwrap_err();
        assert!(err.needed_bytes > err.budget_bytes);
        assert!(err.to_string().contains("shuffle disk"));
    }

    #[test]
    fn simulated_time_scales_with_iterations() {
        let g = tiny_layout(2);
        let cost = ClusterCostModel::spark_like();
        let t10 = simulate_pagerank(
            &g,
            &PageRankConfig {
                iterations: 10,
                ..Default::default()
            },
            &cost,
        )
        .unwrap()
        .simulated_time;
        let t20 = simulate_pagerank(
            &g,
            &PageRankConfig {
                iterations: 20,
                ..Default::default()
            },
            &cost,
        )
        .unwrap()
        .simulated_time;
        let ratio = t20.as_secs_f64() / t10.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn more_workers_reduce_compute_term() {
        let cost = ClusterCostModel::spark_like();
        let pr = PageRankConfig {
            iterations: 5,
            ..Default::default()
        };
        let t2 = simulate_pagerank(&tiny_layout(2), &pr, &cost).unwrap();
        let t4 = simulate_pagerank(&tiny_layout(4), &pr, &cost).unwrap();
        // The max-worker edge ops halve; latency terms are equal.
        assert!(t4.result.counts.max_worker_edge_ops < t2.result.counts.max_worker_edge_ops);
    }
}
