//! Distributed Connected Components — the second classic workload the paper
//! names ("classical graph processing algorithms like PageRank or Connected
//! Components", §I). Label-propagation style: every vertex repeatedly adopts
//! the minimum label in its neighbourhood; synchronisation follows the same
//! master/mirror schedule as PageRank, so the cost model applies unchanged.

use tps_graph::types::{Edge, VertexId};

use crate::layout::DistributedGraph;
use crate::pagerank::ExecutionCounts;

/// Result of a distributed connected-components run.
#[derive(Clone, Debug)]
pub struct ComponentsResult {
    /// Component label per vertex (the minimum vertex id in its component);
    /// isolated vertices keep their own id.
    pub labels: Vec<VertexId>,
    /// Rounds until fixpoint.
    pub rounds: u32,
    /// Counted work/traffic (per-iteration figures as in PageRank).
    pub counts: ExecutionCounts,
}

/// Execute min-label propagation until fixpoint (or `max_rounds`).
pub fn run_components(graph: &DistributedGraph, max_rounds: u32) -> ComponentsResult {
    let n = graph.num_vertices() as usize;
    let mut labels: Vec<VertexId> = (0..n as u32).collect();
    let max_worker_edge_ops = (0..graph.k())
        .map(|p| graph.local_edges(p).len() as u64 * 2)
        .max()
        .unwrap_or(0);
    let max_worker_replicas = (0..graph.k())
        .map(|p| graph.replicas_on(p))
        .max()
        .unwrap_or(0);
    let messages_per_iteration = graph.total_mirrors() * 2;

    let mut rounds = 0;
    for _ in 0..max_rounds {
        rounds += 1;
        let mut changed = false;
        // Gather-apply over each worker's local edges; masters merge (min is
        // associative/commutative, so the distributed schedule is exact).
        for p in 0..graph.k() {
            for &Edge { src, dst } in graph.local_edges(p) {
                let m = labels[src as usize].min(labels[dst as usize]);
                if labels[src as usize] != m {
                    labels[src as usize] = m;
                    changed = true;
                }
                if labels[dst as usize] != m {
                    labels[dst as usize] = m;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    ComponentsResult {
        labels,
        rounds,
        counts: ExecutionCounts {
            iterations: rounds,
            max_worker_edge_ops,
            max_worker_replicas,
            messages_per_iteration,
        },
    }
}

/// Single-machine reference (union-find) for validation.
pub fn reference_components(edges: &[Edge], num_vertices: u64) -> Vec<VertexId> {
    let n = num_vertices as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for e in edges {
        let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if a != b {
            // Union by labelling with the smaller root (matches min-label).
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DistributedGraph;

    #[test]
    fn two_components_found() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(3, 4)];
        let layout = DistributedGraph::from_assignments(
            &[(edges[0], 0), (edges[1], 1), (edges[2], 0)],
            5,
            2,
        );
        let res = run_components(&layout, 100);
        assert_eq!(res.labels, vec![0, 0, 0, 3, 3]);
        assert!(res.rounds < 100, "fixpoint reached early");
    }

    #[test]
    fn matches_reference_on_generated_graph() {
        use tps_graph::datasets::Dataset;
        let g = Dataset::Uk.generate_scaled(0.01);
        let assignments: Vec<(Edge, u32)> = g.edges().iter().map(|&e| (e, e.src % 4)).collect();
        let layout = DistributedGraph::from_assignments(&assignments, g.num_vertices(), 4);
        let dist = run_components(&layout, 10_000);
        let reference = reference_components(g.edges(), g.num_vertices());
        assert_eq!(dist.labels, reference);
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let layout = DistributedGraph::from_assignments(&[(Edge::new(0, 1), 0)], 4, 2);
        let res = run_components(&layout, 10);
        assert_eq!(res.labels[2], 2);
        assert_eq!(res.labels[3], 3);
    }

    #[test]
    fn counts_mirror_pagerank_schedule() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2)];
        let layout = DistributedGraph::from_assignments(&[(edges[0], 0), (edges[1], 1)], 3, 2);
        let res = run_components(&layout, 10);
        assert_eq!(res.counts.messages_per_iteration, 2); // one mirror
    }
}
