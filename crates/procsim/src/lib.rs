//! Distributed graph-processing simulator — the substitute for the paper's
//! Spark/GraphX cluster in the end-to-end experiment (Table IV).
//!
//! The paper measures "partitioning time + static PageRank (100 iterations)
//! on 32 executors" and shows that neither the fastest partitioner (DBH) nor
//! the best-quality one (SNE/HEP-1) minimises the *total*; 2PS-L does,
//! because processing time grows with the replication factor while
//! partitioning time grows with the partitioner. This crate reproduces that
//! coupling mechanically:
//!
//! * [`layout`] — turns an edge partitioning into a PowerGraph-style
//!   master/mirror layout (masters on the lowest-id hosting partition).
//! * [`pagerank`] — *actually executes* PageRank over the partitioned graph
//!   with gather–apply–scatter synchronisation, counting real per-worker
//!   work and real mirror messages; results are validated against a
//!   single-machine reference.
//! * [`cost`] — converts the counted work into simulated wall-clock using a
//!   cluster cost model calibrated to the paper's setup (per-edge compute,
//!   per-replica sync, 10 GbE bandwidth, per-round latency), including the
//!   shuffle-disk budget that makes high-replication runs FAIL like DBH on
//!   WI in Table IV.
//!
//! The simulated times are *not* meant to match the paper's absolute seconds
//! (our graphs are ~1000× smaller); the preserved structure is the ordering
//! and the trade-off — see EXPERIMENTS.md.

pub mod components;
pub mod cost;
pub mod layout;
pub mod pagerank;

pub use components::{reference_components, run_components};
pub use cost::{ClusterCostModel, ProcessingOutcome, SpillError};
pub use layout::DistributedGraph;
pub use pagerank::{reference_pagerank, PageRankConfig};
