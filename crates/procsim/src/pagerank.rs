//! Distributed static PageRank over a master/mirror layout.
//!
//! The workload of the paper's Table IV: GraphX `staticPageRank` with 100
//! iterations. Execution follows the gather–apply–scatter (GAS) schedule of
//! PowerGraph/GraphX on an edge-partitioned graph:
//!
//! 1. **gather** — each worker scans its local edges and accumulates
//!    `rank(u)/deg(u)` contributions into its local replicas (undirected
//!    edges contribute in both directions, as GraphX does for symmetrised
//!    graphs);
//! 2. **sync up** — every mirror sends its partial accumulator to the
//!    master (one message per mirror);
//! 3. **apply** — masters compute `rank' = 0.15 + 0.85 · acc`;
//! 4. **scatter / sync down** — masters broadcast the new rank to their
//!    mirrors (one message per mirror).
//!
//! The numerical result is identical (up to float associativity) to a
//! single-machine PageRank — verified in tests against
//! [`reference_pagerank`]. The per-iteration work/message counts feed the
//! cost model in [`crate::cost`].

use tps_graph::types::Edge;

use crate::layout::DistributedGraph;

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (0.85 everywhere in the literature).
    pub damping: f64,
    /// Fixed iteration count (the paper runs 100).
    pub iterations: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 100,
        }
    }
}

/// Work and traffic counted during a distributed execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionCounts {
    /// Iterations executed.
    pub iterations: u32,
    /// Max per-worker (edge-scan) operations per iteration — the straggler
    /// bound; an undirected edge counts two operations.
    pub max_worker_edge_ops: u64,
    /// Max per-worker hosted replicas (vertex-apply work bound).
    pub max_worker_replicas: u64,
    /// Mirror messages per iteration (gather up + scatter down).
    pub messages_per_iteration: u64,
}

/// Result of a distributed PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Final ranks indexed by vertex id (uncovered vertices keep the base
    /// rank `1 − damping`... see note in `run_distributed`).
    pub ranks: Vec<f64>,
    /// Counted work/traffic.
    pub counts: ExecutionCounts,
}

/// Execute PageRank on the distributed layout.
pub fn run_distributed(graph: &DistributedGraph, config: &PageRankConfig) -> PageRankResult {
    let n = graph.num_vertices() as usize;
    let base = 1.0 - config.damping;
    let mut ranks = vec![1.0f64; n];
    let mut acc = vec![0.0f64; n];

    // Static per-iteration counts (the layout does not change).
    let max_worker_edge_ops = (0..graph.k())
        .map(|p| graph.local_edges(p).len() as u64 * 2)
        .max()
        .unwrap_or(0);
    let max_worker_replicas = (0..graph.k())
        .map(|p| graph.replicas_on(p))
        .max()
        .unwrap_or(0);
    let messages_per_iteration = graph.total_mirrors() * 2;

    for _ in 0..config.iterations {
        acc.iter_mut().for_each(|a| *a = 0.0);
        // Gather: worker by worker (the deterministic schedule).
        for p in 0..graph.k() {
            for &Edge { src, dst } in graph.local_edges(p) {
                let ds = graph.degree(src) as f64;
                let dd = graph.degree(dst) as f64;
                // Both directions; degrees are ≥ 1 for covered vertices.
                acc[dst as usize] += ranks[src as usize] / ds;
                acc[src as usize] += ranks[dst as usize] / dd;
            }
        }
        // Apply on masters (mirrors receive the same value; we store one copy
        // per vertex since mirror values are exact copies after scatter).
        for v in 0..n {
            if graph.degree(v as u32) > 0 {
                ranks[v] = base + config.damping * acc[v];
            }
        }
    }
    PageRankResult {
        ranks,
        counts: ExecutionCounts {
            iterations: config.iterations,
            max_worker_edge_ops,
            max_worker_replicas,
            messages_per_iteration,
        },
    }
}

/// Single-machine reference PageRank over a raw edge list (same semantics as
/// [`run_distributed`]; used to validate the simulator).
pub fn reference_pagerank(edges: &[Edge], num_vertices: u64, config: &PageRankConfig) -> Vec<f64> {
    let n = num_vertices as usize;
    let mut degree = vec![0u32; n];
    for e in edges {
        degree[e.src as usize] += 1;
        degree[e.dst as usize] += 1;
    }
    let base = 1.0 - config.damping;
    let mut ranks = vec![1.0f64; n];
    let mut acc = vec![0.0f64; n];
    for _ in 0..config.iterations {
        acc.iter_mut().for_each(|a| *a = 0.0);
        for &Edge { src, dst } in edges {
            acc[dst as usize] += ranks[src as usize] / degree[src as usize] as f64;
            acc[src as usize] += ranks[dst as usize] / degree[dst as usize] as f64;
        }
        for v in 0..n {
            if degree[v] > 0 {
                ranks[v] = base + config.damping * acc[v];
            }
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DistributedGraph;
    use tps_graph::datasets::Dataset;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                let scale = x.abs().max(y.abs()).max(1.0);
                (x - y).abs() / scale < 1e-9
            })
    }

    #[test]
    fn distributed_matches_reference_on_small_graph() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(2, 3),
        ];
        let layout = DistributedGraph::from_assignments(
            &[(edges[0], 0), (edges[1], 1), (edges[2], 0), (edges[3], 1)],
            4,
            2,
        );
        let cfg = PageRankConfig {
            iterations: 20,
            ..Default::default()
        };
        let dist = run_distributed(&layout, &cfg);
        let reference = reference_pagerank(&edges, 4, &cfg);
        assert!(
            close(&dist.ranks, &reference),
            "{:?} vs {reference:?}",
            dist.ranks
        );
    }

    #[test]
    fn distributed_matches_reference_on_real_partitioning() {
        use tps_core::partitioner::{PartitionParams, Partitioner};
        use tps_core::sink::VecSink;
        use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
        let g = Dataset::Ok.generate_scaled(0.005);
        let mut sink = VecSink::new();
        TwoPhasePartitioner::new(TwoPhaseConfig::default())
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        let layout = DistributedGraph::from_assignments(sink.assignments(), g.num_vertices(), 8);
        let cfg = PageRankConfig {
            iterations: 10,
            ..Default::default()
        };
        let dist = run_distributed(&layout, &cfg);
        let reference = reference_pagerank(g.edges(), g.num_vertices(), &cfg);
        assert!(close(&dist.ranks, &reference));
    }

    #[test]
    fn ranks_sum_is_preserved_on_regular_graph() {
        // On a cycle every vertex has equal rank 1.0 at any iteration.
        let edges: Vec<Edge> = (0..10).map(|i| Edge::new(i, (i + 1) % 10)).collect();
        let layout = DistributedGraph::from_assignments(
            &edges.iter().map(|&e| (e, e.src % 2)).collect::<Vec<_>>(),
            10,
            2,
        );
        let res = run_distributed(&layout, &PageRankConfig::default());
        for r in &res.ranks {
            assert!((r - 1.0).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn message_counts_reflect_mirrors() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2)];
        let layout = DistributedGraph::from_assignments(&[(edges[0], 0), (edges[1], 1)], 3, 2);
        // Vertex 1 has one mirror → 2 messages per iteration.
        let res = run_distributed(
            &layout,
            &PageRankConfig {
                iterations: 1,
                ..Default::default()
            },
        );
        assert_eq!(res.counts.messages_per_iteration, 2);
        assert_eq!(res.counts.max_worker_edge_ops, 2);
    }

    #[test]
    fn zero_iterations_returns_initial_ranks() {
        let layout = DistributedGraph::from_assignments(&[(Edge::new(0, 1), 0)], 2, 1);
        let res = run_distributed(
            &layout,
            &PageRankConfig {
                iterations: 0,
                ..Default::default()
            },
        );
        assert_eq!(res.ranks, vec![1.0, 1.0]);
    }

    #[test]
    fn high_degree_vertex_gets_high_rank() {
        // Star: centre should accumulate the largest rank.
        let edges: Vec<Edge> = (1..20).map(|i| Edge::new(0, i)).collect();
        let ranks = reference_pagerank(&edges, 20, &PageRankConfig::default());
        let centre = ranks[0];
        for &r in &ranks[1..] {
            assert!(centre > r);
        }
    }
}
