//! Master/mirror layout of an edge-partitioned graph.
//!
//! Edge partitioning induces vertex replication: a vertex adjacent to edges
//! of several partitions has one **master** replica (here: on the lowest-id
//! hosting partition, deterministic) and **mirrors** on the others. All
//! synchronisation cost of vertex-centric processing is proportional to the
//! mirror count — which is exactly `Σ|V(p)| − |covered V|`, the quantity the
//! replication factor measures. This is the mechanical link between
//! partitioning quality and processing speed that Table IV demonstrates.

use tps_graph::types::{Edge, PartitionId, VertexId};
use tps_metrics::bitmatrix::ReplicationMatrix;

/// A partitioned graph laid out across `k` workers.
#[derive(Clone, Debug)]
pub struct DistributedGraph {
    k: u32,
    num_vertices: u64,
    /// Per-worker local edge lists.
    local_edges: Vec<Vec<Edge>>,
    /// Vertex → partitions hosting a replica.
    replication: ReplicationMatrix,
    /// Vertex → master partition (`u32::MAX` for uncovered vertices).
    master: Vec<PartitionId>,
    /// Global degree (counting both endpoints, self-loops twice).
    degree: Vec<u32>,
}

impl DistributedGraph {
    /// Build the layout from `(edge, partition)` assignments.
    ///
    /// # Panics
    /// Panics if an assignment references a partition `>= k` or a vertex
    /// `>= num_vertices`.
    pub fn from_assignments(
        assignments: &[(Edge, PartitionId)],
        num_vertices: u64,
        k: u32,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        let mut local_edges = vec![Vec::new(); k as usize];
        let mut replication = ReplicationMatrix::new(num_vertices, k);
        let mut degree = vec![0u32; num_vertices as usize];
        for &(e, p) in assignments {
            assert!(p < k, "partition {p} out of range");
            local_edges[p as usize].push(e);
            replication.set(e.src, p);
            replication.set(e.dst, p);
            degree[e.src as usize] += 1;
            degree[e.dst as usize] += 1;
        }
        let mut master = vec![PartitionId::MAX; num_vertices as usize];
        for (v, slot) in master.iter_mut().enumerate() {
            if let Some(p) = replication.partitions_of(v as u32).next() {
                *slot = p; // lowest-id hosting partition
            }
        }
        DistributedGraph {
            k,
            num_vertices,
            local_edges,
            replication,
            master,
            degree,
        }
    }

    /// Number of workers.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of vertices in the global id space.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// The local edges of worker `p`.
    pub fn local_edges(&self, p: PartitionId) -> &[Edge] {
        &self.local_edges[p as usize]
    }

    /// Total edges.
    pub fn num_edges(&self) -> u64 {
        self.local_edges.iter().map(|v| v.len() as u64).sum()
    }

    /// Global degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degree[v as usize]
    }

    /// Master partition of `v` (`None` for uncovered vertices).
    pub fn master_of(&self, v: VertexId) -> Option<PartitionId> {
        match self.master[v as usize] {
            PartitionId::MAX => None,
            p => Some(p),
        }
    }

    /// Replica count of `v` (0 for uncovered).
    pub fn replicas_of(&self, v: VertexId) -> u32 {
        self.replication.replica_count(v)
    }

    /// `|V(p)|`: replicas hosted on worker `p`.
    pub fn replicas_on(&self, p: PartitionId) -> u64 {
        self.replication.cover_count(p)
    }

    /// Total mirrors = Σ (replicas − 1) over covered vertices. Every GAS
    /// iteration sends two messages per mirror (partial gather up, new value
    /// down).
    pub fn total_mirrors(&self) -> u64 {
        let covered = (0..self.num_vertices as u32)
            .filter(|&v| self.replication.replica_count(v) > 0)
            .count() as u64;
        self.replication.total_replicas() - covered
    }

    /// Replication factor implied by the layout.
    pub fn replication_factor(&self) -> f64 {
        let covered = (0..self.num_vertices as u32)
            .filter(|&v| self.replication.replica_count(v) > 0)
            .count() as u64;
        if covered == 0 {
            0.0
        } else {
            self.replication.total_replicas() as f64 / covered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> DistributedGraph {
        // Path 0-1-2-3 split over 2 workers at vertex 1: replicas of 1 on
        // both.
        DistributedGraph::from_assignments(
            &[
                (Edge::new(0, 1), 0),
                (Edge::new(1, 2), 1),
                (Edge::new(2, 3), 1),
            ],
            4,
            2,
        )
    }

    #[test]
    fn masters_on_lowest_partition() {
        let g = layout();
        assert_eq!(g.master_of(0), Some(0));
        assert_eq!(g.master_of(1), Some(0)); // replicated on {0,1} → master 0
        assert_eq!(g.master_of(2), Some(1));
        assert_eq!(g.master_of(3), Some(1));
    }

    #[test]
    fn mirror_count_matches_replication() {
        let g = layout();
        assert_eq!(g.replicas_of(1), 2);
        assert_eq!(g.total_mirrors(), 1);
        assert!((g.replication_factor() - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn local_edges_split() {
        let g = layout();
        assert_eq!(g.local_edges(0).len(), 1);
        assert_eq!(g.local_edges(1).len(), 2);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn degrees_are_global() {
        let g = layout();
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn uncovered_vertex_has_no_master() {
        let g = DistributedGraph::from_assignments(&[(Edge::new(0, 1), 0)], 5, 2);
        assert_eq!(g.master_of(4), None);
        assert_eq!(g.replicas_of(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_partition() {
        DistributedGraph::from_assignments(&[(Edge::new(0, 1), 5)], 2, 2);
    }
}
