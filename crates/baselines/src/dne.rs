//! DNE — Distributed Neighborhood Expansion (Hanai et al., VLDB 2019),
//! reproduced as a *thread-parallel* NE.
//!
//! The original runs one expansion process per partition across a cluster,
//! claiming edges through distributed ownership exchanges. The property the
//! paper's evaluation uses is: **parallel expansions racing for edges** give
//! near-NE quality at much lower wall-clock, with higher memory, and
//! non-deterministic assignment. We reproduce exactly that on shared memory:
//! each worker thread grows a subset of the `k` partitions concurrently,
//! claiming edges via compare-and-swap on a shared atomic assignment array.
//! Leftover edges are swept to the least-loaded partitions at the end.
//!
//! The expansion-ratio parameter of the original (paper appendix: 0.1)
//! controls how many boundary vertices expand per round; here it bounds the
//! per-round core growth so partitions interleave instead of one racing
//! ahead.

use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::csr::Csr;
use tps_graph::stream::{discover_info, for_each_edge, EdgeStream};
use tps_graph::types::{Edge, PartitionId, VertexId};

/// The parallel-NE partitioner.
#[derive(Clone, Copy, Debug)]
pub struct DnePartitioner {
    /// Worker threads (0 = one per available core, capped at 8).
    pub threads: usize,
    /// Fraction of the boundary expanded per round (paper setting 0.1).
    pub expansion_ratio: f64,
}

impl Default for DnePartitioner {
    fn default() -> Self {
        DnePartitioner {
            threads: 0,
            expansion_ratio: 0.1,
        }
    }
}

/// One worker's expansion over its slice of partitions.
struct Worker<'g> {
    csr: &'g Csr,
    assignment: &'g [AtomicU32],
    loads: &'g [AtomicU64],
    in_sc: Vec<u32>,
    epoch: u32,
    seed_cursor: usize,
    out: Vec<(Edge, PartitionId)>,
    edges: &'g [Edge],
}

impl Worker<'_> {
    /// Try to claim `edge_index` for `p`; true on success.
    #[inline]
    fn claim(&mut self, edge_index: u64, p: PartitionId) -> bool {
        if self.assignment[edge_index as usize]
            .compare_exchange(0, p + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.loads[p as usize].fetch_add(1, Ordering::Relaxed);
            self.out.push((self.edges[edge_index as usize], p));
            true
        } else {
            false
        }
    }

    fn unassigned_degree(&self, v: VertexId) -> u32 {
        self.csr
            .neighbors(v)
            .iter()
            .filter(|n| self.assignment[n.edge_index as usize].load(Ordering::Acquire) == 0)
            .count() as u32
    }

    fn external_score(&self, v: VertexId) -> u32 {
        self.csr
            .neighbors(v)
            .iter()
            .filter(|n| {
                self.assignment[n.edge_index as usize].load(Ordering::Acquire) == 0
                    && self.in_sc[n.vertex as usize] != self.epoch
            })
            .count() as u32
    }

    /// Pull `v` into C ∪ S of `p`: claim edges into the current set.
    fn add_to_boundary(
        &mut self,
        v: VertexId,
        p: PartitionId,
        cap: u64,
        boundary: &mut Vec<VertexId>,
    ) -> bool {
        if self.in_sc[v as usize] == self.epoch {
            return true;
        }
        self.in_sc[v as usize] = self.epoch;
        let len = self.csr.neighbors(v).len();
        for i in 0..len {
            let n = self.csr.neighbors(v)[i];
            if self.in_sc[n.vertex as usize] == self.epoch {
                self.claim(n.edge_index, p);
                if self.loads[p as usize].load(Ordering::Relaxed) >= cap {
                    return false;
                }
            }
        }
        if self.unassigned_degree(v) > 0 {
            boundary.push(v);
        }
        true
    }

    fn next_seed(&mut self) -> Option<VertexId> {
        while self.seed_cursor < self.csr.num_vertices() as usize {
            let v = self.seed_cursor as VertexId;
            if self.unassigned_degree(v) > 0 {
                return Some(v);
            }
            self.seed_cursor += 1;
        }
        None
    }

    /// Grow partition `p` to `cap` claimed edges (best effort under races).
    fn expand(&mut self, p: PartitionId, cap: u64, expansion_ratio: f64) {
        self.epoch += 1;
        let mut boundary: Vec<VertexId> = Vec::new();
        loop {
            if self.loads[p as usize].load(Ordering::Relaxed) >= cap {
                return;
            }
            if boundary.is_empty() {
                match self.next_seed() {
                    Some(seed) => {
                        if !self.add_to_boundary(seed, p, cap, &mut boundary) {
                            return;
                        }
                        if boundary.is_empty() {
                            // Seed had no free edges left by the time we got
                            // to it; advance past it.
                            self.seed_cursor += 1;
                            continue;
                        }
                    }
                    None => return,
                }
            }
            // Expand a bounded batch of the lowest-external-score boundary
            // vertices per round (the expansion-ratio knob). Scores read
            // the shared assignment bits, which other workers mutate
            // concurrently — snapshot them once, or the comparator is not
            // a total order (std's sort detects that and panics).
            let mut scored: Vec<(u32, VertexId)> = boundary
                .drain(..)
                .map(|v| (self.external_score(v), v))
                .collect();
            // Stable, score-only key: equal scores keep insertion order,
            // exactly as the pre-snapshot sort behaved.
            scored.sort_by_key(|&(score, _)| score);
            boundary.extend(scored.into_iter().map(|(_, v)| v));
            let batch = ((boundary.len() as f64 * expansion_ratio).ceil() as usize).max(1);
            let round: Vec<VertexId> = boundary.drain(..batch.min(boundary.len())).collect();
            for x in round {
                let len = self.csr.neighbors(x).len();
                for i in 0..len {
                    let n = self.csr.neighbors(x)[i];
                    if self.assignment[n.edge_index as usize].load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    if !self.add_to_boundary(n.vertex, p, cap, &mut boundary) {
                        return;
                    }
                    if self.loads[p as usize].load(Ordering::Relaxed) >= cap {
                        return;
                    }
                }
            }
        }
    }
}

impl Partitioner for DnePartitioner {
    fn name(&self) -> String {
        "DNE".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }

        let t0 = tps_obs::span("build");
        let mut edges = Vec::with_capacity(info.num_edges as usize);
        for_each_edge(stream, |e| edges.push(e))?;
        let csr = Csr::from_stream(stream, info.num_vertices)?;
        report.phases.record("build", t0.end());

        let t1 = tps_obs::span("expand");
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .min(8)
        } else {
            self.threads
        }
        .min(params.k as usize)
        .max(1);
        let cap = (params.alpha * info.num_edges as f64 / params.k as f64)
            .floor()
            .max(1.0) as u64;

        let assignment: Vec<AtomicU32> = (0..edges.len()).map(|_| AtomicU32::new(0)).collect();
        let loads: Vec<AtomicU64> = (0..params.k).map(|_| AtomicU64::new(0)).collect();

        let ratio = self.expansion_ratio;
        let outputs: Vec<Vec<(Edge, PartitionId)>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let csr = &csr;
                let edges = &edges;
                let assignment = &assignment;
                let loads = &loads;
                let k = params.k;
                handles.push(scope.spawn(move || {
                    let mut w = Worker {
                        csr,
                        assignment,
                        loads,
                        in_sc: vec![0; csr.num_vertices() as usize],
                        epoch: 0,
                        seed_cursor: 0,
                        out: Vec::new(),
                        edges,
                    };
                    let mut p = t as u32;
                    while p < k {
                        w.expand(p, cap, ratio);
                        p += threads as u32;
                    }
                    w.out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        report.phases.record("expand", t1.end());

        // Emit claimed edges, then sweep leftovers to least-loaded parts.
        let t2 = tps_obs::span("sweep");
        for out in outputs {
            for (e, p) in out {
                sink.assign(e, p)?;
            }
        }
        let mut final_loads: Vec<u64> = loads.iter().map(|l| l.load(Ordering::Relaxed)).collect();
        let mut swept = 0u64;
        for (idx, slot) in assignment.iter().enumerate() {
            if slot.load(Ordering::Relaxed) == 0 {
                let p = final_loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i)
                    .expect("k >= 1");
                final_loads[p] += 1;
                swept += 1;
                sink.assign(edges[idx], p as u32)?;
            }
        }
        report.phases.record("sweep", t2.end());
        report.count("threads", threads as u64);
        report.count("leftover_sweep", swept);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    #[test]
    fn assigns_every_edge_exactly_once() {
        let g = Dataset::It.generate_scaled(0.01);
        let mut sink = VecSink::new();
        DnePartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        let mut got: Vec<Edge> = sink.assignments().iter().map(|(e, _)| *e).collect();
        let mut want = g.edges().to_vec();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn quality_beats_random_on_clustered_graph() {
        let g = Dataset::Gsh.generate_scaled(0.01);
        let k = 8;
        let mut sink = QualitySink::new(g.num_vertices(), k);
        DnePartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        let m = sink.finish();
        // Random would be ~7+ on this graph at k=8.
        assert!(m.replication_factor < 4.0, "rf {}", m.replication_factor);
    }

    #[test]
    fn single_thread_matches_invariants() {
        let g = gnm::generate(200, 1000, 4);
        let mut p = DnePartitioner {
            threads: 1,
            ..Default::default()
        };
        let mut sink = QualitySink::new(g.num_vertices(), 4);
        p.partition(&mut g.stream(), &PartitionParams::new(4), &mut sink)
            .unwrap();
        let m = sink.finish();
        assert_eq!(m.num_edges, 1000);
        assert!(m.min_load > 0);
    }

    #[test]
    fn more_threads_than_partitions() {
        let g = gnm::generate(100, 400, 5);
        let mut p = DnePartitioner {
            threads: 8,
            ..Default::default()
        };
        let mut sink = QualitySink::new(g.num_vertices(), 2);
        p.partition(&mut g.stream(), &PartitionParams::new(2), &mut sink)
            .unwrap();
        assert_eq!(sink.finish().num_edges, 400);
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        let mut sink = VecSink::new();
        DnePartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(4), &mut sink)
            .unwrap();
        assert!(sink.assignments().is_empty());
    }
}
