//! NE — Neighborhood Expansion (Zhang et al., KDD 2017).
//!
//! The in-memory partitioner with the best replication factors in the
//! paper's evaluation (together with METIS). NE grows partitions one at a
//! time: a *core set* `C` expands into its *boundary* `S` (vertices adjacent
//! to the core), always moving the boundary vertex with the fewest external
//! neighbours into the core; every edge whose endpoints both lie in
//! `C ∪ S` is allocated to the current partition. When the partition reaches
//! its capacity `α·|E|/k`, the next one starts.
//!
//! This implementation follows the published algorithm with the usual
//! engineering choices of the reference code:
//!
//! * min-heap with lazy re-validation for the boundary (external degrees
//!   only ever decrease);
//! * deterministic seeding: the first vertex (by id) that still has
//!   unassigned edges;
//! * the final partition absorbs leftover edges, then a least-loaded sweep
//!   places anything still unassigned (mirrors the reference
//!   implementation; observed α can exceed the cap slightly, as in the
//!   paper's NE rows).
//!
//! [`NeCore`] exposes the expansion machinery for reuse by SNE, DNE and HEP.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::csr::Csr;
use tps_graph::stream::{discover_info, for_each_edge, EdgeStream};
use tps_graph::types::{Edge, PartitionId, VertexId};

/// Reusable neighborhood-expansion state over a CSR graph.
///
/// Tracks which edges are assigned and how many unassigned edges each vertex
/// still has; partitions are grown one after another via [`NeCore::expand`].
pub struct NeCore<'g> {
    csr: &'g Csr,
    edges: &'g [Edge],
    /// Edge index → assigned partition + 1 (0 = unassigned).
    assignment: Vec<u32>,
    /// Unassigned incident edges per vertex.
    remaining: Vec<u32>,
    /// Epoch stamps: vertex ∈ C ∪ S for the current expansion when equal to
    /// the current epoch.
    in_sc: Vec<u32>,
    epoch: u32,
    /// Edges assigned per partition.
    loads: Vec<u64>,
    seed_cursor: usize,
}

impl<'g> NeCore<'g> {
    /// New expansion state for `k` partitions over `csr`/`edges`.
    pub fn new(csr: &'g Csr, edges: &'g [Edge], k: u32) -> Self {
        let n = csr.num_vertices() as usize;
        let mut remaining = vec![0u32; n];
        for (v, slot) in remaining.iter_mut().enumerate() {
            *slot = csr.degree(v as u32);
        }
        NeCore {
            csr,
            edges,
            assignment: vec![0; edges.len()],
            remaining,
            in_sc: vec![0; n],
            epoch: 0,
            loads: vec![0; k as usize],
            seed_cursor: 0,
        }
    }

    /// Current per-partition loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Number of edges still unassigned.
    pub fn unassigned(&self) -> u64 {
        self.assignment.iter().filter(|&&a| a == 0).count() as u64
    }

    /// External score of `v`: unassigned incident edges leading outside
    /// `C ∪ S`. The NE selection criterion (lower = expand first).
    fn external_score(&self, v: VertexId) -> u32 {
        let mut ext = 0;
        for n in self.csr.neighbors(v) {
            if self.assignment[n.edge_index as usize] == 0
                && self.in_sc[n.vertex as usize] != self.epoch
            {
                ext += 1;
            }
        }
        ext
    }

    /// Assign one edge to `p`. Returns `false` if it was already assigned.
    #[inline]
    fn assign_edge(
        &mut self,
        edge_index: u64,
        p: PartitionId,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<bool> {
        let slot = &mut self.assignment[edge_index as usize];
        if *slot != 0 {
            return Ok(false);
        }
        *slot = p + 1;
        let e = self.edges[edge_index as usize];
        self.remaining[e.src as usize] -= 1;
        self.remaining[e.dst as usize] -= 1;
        self.loads[p as usize] += 1;
        sink.assign(e, p)?;
        Ok(true)
    }

    /// Bring `v` into `C ∪ S`: allocate all its unassigned edges whose other
    /// endpoint is already inside, then push it onto the boundary heap.
    /// Returns `false` when the partition filled up mid-way.
    fn add_to_boundary(
        &mut self,
        v: VertexId,
        p: PartitionId,
        cap: u64,
        heap: &mut BinaryHeap<Reverse<(u32, VertexId)>>,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<bool> {
        if self.in_sc[v as usize] == self.epoch {
            return Ok(true);
        }
        self.in_sc[v as usize] = self.epoch;
        // Allocate edges from v into the current C ∪ S.
        let neighbors_len = self.csr.neighbors(v).len();
        for i in 0..neighbors_len {
            let n = self.csr.neighbors(v)[i];
            if self.assignment[n.edge_index as usize] == 0
                && self.in_sc[n.vertex as usize] == self.epoch
            {
                self.assign_edge(n.edge_index, p, sink)?;
                if self.loads[p as usize] >= cap {
                    return Ok(false);
                }
            }
        }
        if self.remaining[v as usize] > 0 {
            heap.push(Reverse((self.external_score(v), v)));
        }
        Ok(true)
    }

    /// Next seed vertex: lowest id with unassigned incident edges.
    fn next_seed(&mut self) -> Option<VertexId> {
        while self.seed_cursor < self.remaining.len() {
            if self.remaining[self.seed_cursor] > 0 {
                return Some(self.seed_cursor as VertexId);
            }
            self.seed_cursor += 1;
        }
        None
    }

    /// Grow partition `p` until it holds `cap` edges (or edges run out).
    pub fn expand(
        &mut self,
        p: PartitionId,
        cap: u64,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<()> {
        self.epoch += 1;
        // Rewind the seed cursor lazily: earlier vertices may have regained
        // no edges (they cannot), so the cursor is monotone and stays valid.
        let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        while self.loads[p as usize] < cap {
            // Pop the boundary vertex with the fewest external neighbours,
            // lazily re-validating stale entries (scores only decrease).
            let next = loop {
                match heap.pop() {
                    None => break None,
                    Some(Reverse((score, v))) => {
                        if self.remaining[v as usize] == 0 {
                            continue; // fully consumed while waiting
                        }
                        let fresh = self.external_score(v);
                        if fresh < score {
                            if let Some(&Reverse((top, _))) = heap.peek() {
                                if top < fresh {
                                    heap.push(Reverse((fresh, v)));
                                    continue;
                                }
                            }
                        }
                        break Some(v);
                    }
                }
            };
            let x = match next {
                Some(v) => v,
                None => match self.next_seed() {
                    Some(seed) => {
                        if !self.add_to_boundary(seed, p, cap, &mut heap, sink)? {
                            return Ok(()); // filled up
                        }
                        continue;
                    }
                    None => return Ok(()), // no edges left anywhere
                },
            };
            // Move x into the core: pull all its outside neighbours into the
            // boundary (each pull allocates the connecting edge and any edges
            // into the existing C ∪ S).
            let neighbors_len = self.csr.neighbors(x).len();
            for i in 0..neighbors_len {
                let n = self.csr.neighbors(x)[i];
                if self.assignment[n.edge_index as usize] != 0 {
                    continue;
                }
                if !self.add_to_boundary(n.vertex, p, cap, &mut heap, sink)? {
                    return Ok(());
                }
                if self.loads[p as usize] >= cap {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Assign every remaining edge to the currently least-loaded partition.
    pub fn sweep_leftovers(&mut self, sink: &mut dyn AssignmentSink) -> io::Result<u64> {
        self.sweep_leftovers_by(sink, |loads| {
            loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i as u32)
                .expect("k >= 1")
        })
    }

    /// Assign every remaining edge to the partition chosen by `pick`
    /// (receives the *chunk-local* loads; callers with global state pick on
    /// their own counters).
    pub fn sweep_leftovers_by(
        &mut self,
        sink: &mut dyn AssignmentSink,
        mut pick: impl FnMut(&[u64]) -> PartitionId,
    ) -> io::Result<u64> {
        let mut swept = 0;
        for idx in 0..self.assignment.len() {
            if self.assignment[idx] == 0 {
                let p = pick(&self.loads);
                self.assign_edge(idx as u64, p, sink)?;
                swept += 1;
            }
        }
        Ok(swept)
    }
}

/// The NE in-memory partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct NePartitioner;

impl Partitioner for NePartitioner {
    fn name(&self) -> String {
        "NE".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }

        // Materialise the graph (this is the in-memory ≥ O(|E|) footprint of
        // Table II).
        let t0 = tps_obs::span("build");
        let mut edges = Vec::with_capacity(info.num_edges as usize);
        for_each_edge(stream, |e| edges.push(e))?;
        let csr = Csr::from_stream(stream, info.num_vertices)?;
        report.phases.record("build", t0.end());

        let t1 = tps_obs::span("partition");
        let cap = (params.alpha * info.num_edges as f64 / params.k as f64)
            .floor()
            .max(1.0) as u64;
        let mut core = NeCore::new(&csr, &edges, params.k);
        for p in 0..params.k {
            core.expand(p, cap, sink)?;
        }
        let swept = core.sweep_leftovers(sink)?;
        report.phases.record("partition", t1.end());
        report.count("leftover_sweep", swept);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateless::RandomPartitioner;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(g: &InMemoryGraph, k: u32) -> tps_metrics::quality::PartitionMetrics {
        let mut p = NePartitioner;
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_all_edges_once() {
        let g = Dataset::It.generate_scaled(0.01);
        let mut sink = VecSink::new();
        NePartitioner
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
        let mut got: Vec<Edge> = sink.assignments().iter().map(|(e, _)| *e).collect();
        let mut want = g.edges().to_vec();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn loads_are_balanced_within_cap_plus_sweep() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let m = quality(&g, 16);
        // NE respects the cap during expansion; the leftover sweep fills the
        // least-loaded partitions, so observed α stays close to the target.
        assert!(m.alpha <= 1.20, "alpha {}", m.alpha);
        assert!(m.min_load > 0);
    }

    #[test]
    fn ne_has_best_in_class_quality_on_clustered_graph() {
        let g = Dataset::It.generate_scaled(0.02);
        let ne = quality(&g, 16);
        let mut rnd = RandomPartitioner::default();
        let mut sink = QualitySink::new(g.num_vertices(), 16);
        rnd.partition(&mut g.stream(), &PartitionParams::new(16), &mut sink)
            .unwrap();
        let rm = sink.finish();
        assert!(
            ne.replication_factor < rm.replication_factor / 2.0,
            "ne {} vs random {}",
            ne.replication_factor,
            rm.replication_factor
        );
        assert!(
            ne.replication_factor < 2.5,
            "ne rf {}",
            ne.replication_factor
        );
    }

    #[test]
    fn single_partition_takes_all() {
        let g = gnm::generate(50, 200, 3);
        let m = quality(&g, 1);
        assert_eq!(m.loads, vec![200]);
    }

    #[test]
    fn handles_disconnected_components() {
        // Two disjoint triangles; expansion must reseed after exhausting the
        // first component.
        let g = InMemoryGraph::from_edges(vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 4),
            Edge::new(4, 5),
            Edge::new(5, 3),
        ]);
        let m = quality(&g, 2);
        assert_eq!(m.num_edges, 6);
        // Perfect split: each triangle on its own partition → RF = 1.
        assert!(
            (m.replication_factor - 1.0).abs() < 1e-9,
            "rf {}",
            m.replication_factor
        );
    }

    #[test]
    fn deterministic() {
        let g = gnm::generate(120, 600, 6);
        let params = PartitionParams::new(4);
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        NePartitioner
            .partition(&mut g.stream(), &params, &mut a)
            .unwrap();
        NePartitioner
            .partition(&mut g.stream(), &params, &mut b)
            .unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        assert_eq!(quality(&g, 4).num_edges, 0);
    }

    #[test]
    fn parallel_edges_each_assigned() {
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(0, 1), Edge::new(1, 2)]);
        let m = quality(&g, 2);
        assert_eq!(m.num_edges, 3);
    }
}
