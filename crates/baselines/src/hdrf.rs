//! HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM 2015).
//!
//! The canonical stateful streaming edge partitioner and the paper's main
//! streaming comparison point. For every edge, a score
//! `C_HDRF(u,v,p) = C_REP(u,v,p) + λ·C_BAL(p)` is evaluated for **all k**
//! partitions — the `O(|E|·k)` cost the paper's Fig. 2 makes vivid. Degrees
//! are *partial*: counted as the stream is consumed, exactly as in the
//! original (single pass, no preprocessing).

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::scoring::HdrfParams;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::{Edge, PartitionId, VertexId};
use tps_metrics::bitmatrix::ReplicationMatrix;

/// The HDRF per-edge decision kernel: scoring state plus the commit path,
/// shared by the serial [`HdrfPartitioner`] and the chunk-parallel runner
/// (`crate::parallel`) so both take identical decisions for identical
/// degree inputs.
pub(crate) struct HdrfScorer {
    v2p: ReplicationMatrix,
    loads: Vec<u64>,
    max_load: u64,
    min_load: u64,
    params: HdrfParams,
}

impl HdrfScorer {
    pub(crate) fn new(num_vertices: u64, k: u32, params: HdrfParams) -> Self {
        HdrfScorer {
            v2p: ReplicationMatrix::new(num_vertices, k),
            loads: vec![0u64; k as usize],
            max_load: 0,
            min_load: 0,
            params,
        }
    }

    /// Score all `k` partitions for `(u, v)` with degrees `(du, dv)`,
    /// commit the edge to the best one, and return it.
    pub(crate) fn place(&mut self, e: Edge, du: u64, dv: u64) -> PartitionId {
        let k = self.loads.len() as u32;
        let d_sum = (du + dv) as f64;
        let theta_u = du as f64 / d_sum;
        let theta_v = dv as f64 / d_sum;
        let bal_denom = self.params.epsilon + (self.max_load - self.min_load) as f64;

        // O(k) scoring loop — the cost 2PS-L eliminates.
        let mut best_p = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            let mut c_rep = 0.0;
            if self.v2p.get(e.src as VertexId, p) {
                c_rep += 1.0 + (1.0 - theta_u);
            }
            if self.v2p.get(e.dst as VertexId, p) {
                c_rep += 1.0 + (1.0 - theta_v);
            }
            let c_bal = (self.max_load - self.loads[p as usize]) as f64 / bal_denom;
            let score = c_rep + self.params.lambda * c_bal;
            if score > best_score {
                best_score = score;
                best_p = p;
            }
        }

        self.v2p.set(e.src, best_p);
        self.v2p.set(e.dst, best_p);
        let l = &mut self.loads[best_p as usize];
        *l += 1;
        if *l > self.max_load {
            self.max_load = *l;
        }
        if self.loads[best_p as usize] - 1 == self.min_load {
            // The minimum may have moved; recompute lazily only when the
            // partition that held it grew. O(k), amortised rarely.
            self.min_load = self.loads.iter().copied().min().unwrap_or(0);
        }
        best_p
    }
}

/// The HDRF streaming partitioner.
#[derive(Clone, Copy, Debug)]
pub struct HdrfPartitioner {
    /// Scoring parameters (λ = 1.1 per the paper's appendix, ε = 1.0).
    pub params: HdrfParams,
    /// Use partial degrees (the original algorithm). Switched off, HDRF runs
    /// an exact degree pass first — used by ablations.
    pub partial_degrees: bool,
}

impl Default for HdrfPartitioner {
    fn default() -> Self {
        HdrfPartitioner {
            params: HdrfParams::default(),
            partial_degrees: true,
        }
    }
}

impl Partitioner for HdrfPartitioner {
    fn name(&self) -> String {
        "HDRF".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        let k = params.k;

        let mut degrees = vec![0u64; info.num_vertices as usize];
        if !self.partial_degrees {
            let t = tps_obs::span("degree");
            let exact = tps_graph::degree::DegreeTable::compute(stream, info.num_vertices)?;
            for (d, &e) in degrees.iter_mut().zip(exact.as_slice()) {
                *d = e as u64;
            }
            report.phases.record("degree", t.end());
        }

        let t = tps_obs::span("partition");
        let mut scorer = HdrfScorer::new(info.num_vertices, k, self.params);
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if self.partial_degrees {
                degrees[e.src as usize] += 1;
                degrees[e.dst as usize] += 1;
            }
            let du = degrees[e.src as usize];
            let dv = degrees[e.dst as usize];
            let p = scorer.place(e, du, dv);
            sink.assign(e, p)?;
        }
        report.phases.record("partition", t.end());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(g: &InMemoryGraph, k: u32) -> tps_metrics::quality::PartitionMetrics {
        let mut p = HdrfPartitioner::default();
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_all_edges() {
        let g = gnm::generate(300, 2000, 1);
        let m = quality(&g, 8);
        assert_eq!(m.num_edges, 2000);
    }

    #[test]
    fn balance_term_keeps_loads_reasonable() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let m = quality(&g, 16);
        // HDRF has no hard cap but λ=1.1 keeps imbalance small in practice;
        // the paper reports α ≈ 1.05–1.48.
        assert!(m.alpha < 1.6, "alpha {}", m.alpha);
        assert!(m.min_load > 0);
    }

    #[test]
    fn beats_random_hashing_on_quality() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let hdrf = quality(&g, 32);
        let mut rnd = crate::stateless::RandomPartitioner::default();
        let mut sink = QualitySink::new(g.num_vertices(), 32);
        rnd.partition(&mut g.stream(), &PartitionParams::new(32), &mut sink)
            .unwrap();
        let rand_m = sink.finish();
        assert!(
            hdrf.replication_factor < rand_m.replication_factor,
            "hdrf {} vs random {}",
            hdrf.replication_factor,
            rand_m.replication_factor
        );
    }

    #[test]
    fn colocates_a_clique() {
        // A small clique fits one partition; HDRF should not shatter it.
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push(tps_graph::types::Edge::new(i, j));
            }
        }
        let g = InMemoryGraph::from_edges(edges);
        let m = quality(&g, 4);
        // 6 vertices, 15 edges: balance pushes some spread, but RF must stay
        // well below random (~min(5, 4) per vertex).
        assert!(m.replication_factor < 3.0, "rf {}", m.replication_factor);
    }

    #[test]
    fn deterministic() {
        let g = gnm::generate(100, 500, 9);
        let params = PartitionParams::new(8);
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        HdrfPartitioner::default()
            .partition(&mut g.stream(), &params, &mut a)
            .unwrap();
        HdrfPartitioner::default()
            .partition(&mut g.stream(), &params, &mut b)
            .unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn exact_degree_mode_runs() {
        let g = gnm::generate(100, 500, 2);
        let mut p = HdrfPartitioner {
            partial_degrees: false,
            ..Default::default()
        };
        let mut sink = QualitySink::new(g.num_vertices(), 4);
        let report = p
            .partition(&mut g.stream(), &PartitionParams::new(4), &mut sink)
            .unwrap();
        assert_eq!(sink.finish().num_edges, 500);
        assert_eq!(report.phases.phases()[0].0, "degree");
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        assert_eq!(quality(&g, 4).num_edges, 0);
    }
}
