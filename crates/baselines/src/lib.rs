//! Baseline edge partitioners from the paper's evaluation (§V, Table I/II).
//!
//! Every algorithm the paper compares 2PS-L against, re-implemented from its
//! original publication on top of the shared [`tps_core::Partitioner`]
//! framework:
//!
//! | Module | Algorithm | Class | Complexity |
//! |---|---|---|---|
//! | [`stateless`] | Random hash, DBH, Grid | stateless streaming | `O(\|E\|)` |
//! | [`hdrf`] | HDRF (Petroni et al.) | stateful streaming | `O(\|E\|·k)` |
//! | [`greedy`] | Greedy (PowerGraph) | stateful streaming | `O(\|E\|·k)` |
//! | [`adwise`] | ADWISE-style buffered greedy | stateful streaming | `O(\|E\|·w·k)` |
//! | [`ne`] | NE — neighborhood expansion | in-memory | superlinear |
//! | [`sne`] | SNE — streaming NE | out-of-core | superlinear |
//! | [`dne`] | DNE — parallel NE | in-memory, parallel | superlinear |
//! | [`hep`] | HEP(τ) — hybrid | hybrid | mixed |
//! | [`multilevel`] | Multilevel (METIS-class) | in-memory | `O((\|V\|+\|E\|)·log k)` |
//!
//! The in-memory partitioners intentionally violate the out-of-core space
//! bound (they materialise a CSR) — that is the paper's comparison axis in
//! Fig. 4's memory column.

pub mod adwise;
pub mod dne;
pub mod greedy;
pub mod hdrf;
pub mod hep;
pub mod multilevel;
pub mod ne;
pub mod parallel;
pub mod sne;
pub mod stateless;

pub use adwise::AdwisePartitioner;
pub use dne::DnePartitioner;
pub use greedy::GreedyPartitioner;
pub use hdrf::HdrfPartitioner;
pub use hep::HepPartitioner;
pub use multilevel::MultilevelPartitioner;
pub use ne::NePartitioner;
pub use parallel::{ParallelBaselineRunner, StreamingBaseline};
pub use sne::SnePartitioner;
pub use stateless::{DbhPartitioner, GridPartitioner, RandomPartitioner};

use tps_core::partitioner::Partitioner;

/// Construct every baseline with its default configuration, in the order the
/// paper's plots list them. `include_slow` adds ADWISE and the multilevel
/// partitioner (the two the paper itself could not always run to completion).
pub fn all_baselines(include_slow: bool) -> Vec<Box<dyn Partitioner>> {
    let mut v: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HdrfPartitioner::default()),
        Box::new(DbhPartitioner::default()),
        Box::new(SnePartitioner::default()),
        Box::new(HepPartitioner::with_tau(1.0)),
        Box::new(HepPartitioner::with_tau(10.0)),
        Box::new(HepPartitioner::with_tau(100.0)),
        Box::new(NePartitioner),
        Box::new(DnePartitioner::default()),
    ];
    if include_slow {
        v.push(Box::new(AdwisePartitioner::default()));
        v.push(Box::new(MultilevelPartitioner::default()));
    }
    v
}
