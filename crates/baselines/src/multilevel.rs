//! Multilevel graph partitioner (METIS-class), built from scratch.
//!
//! The paper compares against METIS as the classic in-memory multilevel
//! *vertex* partitioner (Karypis & Kumar 1998): coarsen by heavy-edge
//! matching, partition the coarsest graph, then uncoarsen with boundary
//! refinement at every level. Edge partitions are derived from the vertex
//! partition at the end (an edge goes to its endpoints' common part, or to
//! the less-loaded of the two parts when they differ) — the standard way
//! METIS results are used for edge-partitioning comparisons.
//!
//! Faithfully reproduced behaviours from the paper's evaluation:
//! run-time far above any streaming partitioner (Fig. 4, "2500× slower than
//! 2PS-L"), memory `≥ O(|E|)`, good replication factors, and balance
//! violations at higher `k` (METIS balances *vertices*, not edges — the
//! paper reports α up to 1.48 for it).

use std::collections::HashMap;
use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::stream::{discover_info, for_each_edge, EdgeStream};
use tps_graph::types::{Edge, PartitionId};

/// One level of the multilevel hierarchy: a weighted undirected graph.
struct Level {
    offsets: Vec<usize>,
    /// (neighbor, edge weight); parallel edges merged, self-loops dropped.
    adj: Vec<(u32, u64)>,
    vweight: Vec<u64>,
    /// Fine vertex → coarse vertex (filled when this level gets coarsened).
    to_coarse: Vec<u32>,
}

impl Level {
    fn num_vertices(&self) -> usize {
        self.vweight.len()
    }

    fn neighbors(&self, v: u32) -> &[(u32, u64)] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    fn from_pairs(n: usize, pairs: &mut [(u32, u32, u64)], vweight: Vec<u64>) -> Level {
        // Merge parallel edges: sort by (min-endpoint normalised) pair.
        for p in pairs.iter_mut() {
            if p.0 > p.1 {
                std::mem::swap(&mut p.0, &mut p.1);
            }
        }
        pairs.sort_unstable();
        let mut merged: Vec<(u32, u32, u64)> = Vec::with_capacity(pairs.len());
        for &(a, b, w) in pairs.iter() {
            if a == b {
                continue; // self-loop: irrelevant to the cut
            }
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 += w,
                _ => merged.push((a, b, w)),
            }
        }
        // Degree counting for CSR.
        let mut counts = vec![0usize; n + 1];
        for &(a, b, _) in &merged {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut adj = vec![(0u32, 0u64); offsets[n]];
        for &(a, b, w) in &merged {
            adj[cursor[a as usize]] = (b, w);
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = (a, w);
            cursor[b as usize] += 1;
        }
        Level {
            offsets,
            adj,
            vweight,
            to_coarse: Vec::new(),
        }
    }

    /// Heavy-edge matching coarsening. Returns the coarse level.
    fn coarsen(&mut self) -> Level {
        let n = self.num_vertices();
        let mut match_of: Vec<u32> = vec![u32::MAX; n];
        // Visit in id order (deterministic); match with the unmatched
        // neighbour of maximum edge weight.
        for v in 0..n as u32 {
            if match_of[v as usize] != u32::MAX {
                continue;
            }
            let mut best: Option<(u64, u32)> = None;
            for &(u, w) in self.neighbors(v) {
                if match_of[u as usize] == u32::MAX
                    && u != v
                    && best.is_none_or(|(bw, bu)| w > bw || (w == bw && u < bu))
                {
                    best = Some((w, u));
                }
            }
            if match_of[v as usize] == u32::MAX {
                match (best, v) {
                    (Some((_, u)), v) => {
                        match_of[v as usize] = u;
                        match_of[u as usize] = v;
                    }
                    (None, v) => match_of[v as usize] = v,
                }
            }
        }
        // Coarse ids.
        let mut to_coarse = vec![u32::MAX; n];
        let mut next = 0u32;
        for v in 0..n as u32 {
            if to_coarse[v as usize] == u32::MAX {
                to_coarse[v as usize] = next;
                let m = match_of[v as usize];
                to_coarse[m as usize] = next;
                next += 1;
            }
        }
        // Coarse vertex weights + edges.
        let cn = next as usize;
        let mut vweight = vec![0u64; cn];
        for v in 0..n {
            vweight[to_coarse[v] as usize] += self.vweight[v];
        }
        let mut pairs: Vec<(u32, u32, u64)> = Vec::with_capacity(self.adj.len() / 2);
        for v in 0..n as u32 {
            for &(u, w) in self.neighbors(v) {
                if v < u {
                    let (cv, cu) = (to_coarse[v as usize], to_coarse[u as usize]);
                    if cv != cu {
                        pairs.push((cv, cu, w));
                    }
                }
            }
        }
        self.to_coarse = to_coarse;
        Level::from_pairs(cn, &mut pairs, vweight)
    }

    /// Greedy balanced BFS initial partitioning into `k` parts by vertex
    /// weight.
    fn initial_partition(&self, k: u32) -> Vec<PartitionId> {
        let n = self.num_vertices();
        let total: u64 = self.vweight.iter().sum();
        let target = total.div_ceil(k as u64).max(1);
        let mut part = vec![u32::MAX; n];
        let mut current = 0u32;
        let mut weight = 0u64;
        let mut queue = std::collections::VecDeque::new();
        let mut cursor = 0usize;
        loop {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    while cursor < n && part[cursor] != u32::MAX {
                        cursor += 1;
                    }
                    if cursor >= n {
                        break;
                    }
                    cursor as u32
                }
            };
            if part[v as usize] != u32::MAX {
                continue;
            }
            part[v as usize] = current;
            weight += self.vweight[v as usize];
            if weight >= target && current + 1 < k {
                current += 1;
                weight = 0;
                queue.clear();
            } else {
                for &(u, _) in self.neighbors(v) {
                    if part[u as usize] == u32::MAX {
                        queue.push_back(u);
                    }
                }
            }
        }
        part
    }

    /// Boundary refinement: greedy gain moves keeping vertex-weight balance.
    fn refine(&self, part: &mut [PartitionId], k: u32, passes: u32, balance: f64) {
        let n = self.num_vertices();
        let total: u64 = self.vweight.iter().sum();
        let max_weight = ((total as f64 / k as f64) * balance).ceil() as u64;
        let mut pweights = vec![0u64; k as usize];
        for v in 0..n {
            pweights[part[v] as usize] += self.vweight[v];
        }
        let mut conn: HashMap<u32, u64> = HashMap::new();
        for _ in 0..passes {
            let mut moved = 0u64;
            for v in 0..n as u32 {
                let cur = part[v as usize];
                conn.clear();
                for &(u, w) in self.neighbors(v) {
                    *conn.entry(part[u as usize]).or_insert(0) += w;
                }
                if conn.len() <= 1 && conn.contains_key(&cur) {
                    continue; // interior vertex
                }
                let internal = conn.get(&cur).copied().unwrap_or(0);
                let vw = self.vweight[v as usize];
                let mut best: Option<(i64, u32)> = None;
                for (&p, &w) in &conn {
                    if p == cur || pweights[p as usize] + vw > max_weight {
                        continue;
                    }
                    let gain = w as i64 - internal as i64;
                    if gain > 0 && best.is_none_or(|(bg, bp)| gain > bg || (gain == bg && p < bp)) {
                        best = Some((gain, p));
                    }
                }
                if let Some((_, p)) = best {
                    pweights[cur as usize] -= vw;
                    pweights[p as usize] += vw;
                    part[v as usize] = p;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
    }
}

/// The multilevel partitioner.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelPartitioner {
    /// Stop coarsening at this many vertices (scaled by `k`).
    pub coarsen_target_per_part: usize,
    /// Refinement passes per level.
    pub refine_passes: u32,
    /// Vertex-weight balance slack during refinement.
    pub balance: f64,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner {
            coarsen_target_per_part: 32,
            refine_passes: 4,
            balance: 1.1,
        }
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> String {
        "Multilevel".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }
        let k = params.k;

        // Materialise level 0.
        let t0 = tps_obs::span("build");
        let mut edges: Vec<Edge> = Vec::with_capacity(info.num_edges as usize);
        for_each_edge(stream, |e| edges.push(e))?;
        let n0 = info.num_vertices as usize;
        let mut pairs: Vec<(u32, u32, u64)> = edges.iter().map(|e| (e.src, e.dst, 1u64)).collect();
        let mut levels = vec![Level::from_pairs(n0, &mut pairs, vec![1u64; n0])];
        report.phases.record("build", t0.end());

        // Coarsening.
        let t1 = tps_obs::span("coarsen");
        let target = (self.coarsen_target_per_part * k as usize).max(128);
        loop {
            let last = levels.last_mut().expect("at least level 0");
            let before = last.num_vertices();
            if before <= target {
                break;
            }
            let coarse = last.coarsen();
            let after = coarse.num_vertices();
            levels.push(coarse);
            if after as f64 > before as f64 * 0.95 {
                break; // diminishing returns (e.g. star graphs)
            }
        }
        report.phases.record("coarsen", t1.end());

        // Initial partition on the coarsest level, then project + refine.
        let t2 = tps_obs::span("refine");
        let coarsest = levels.last().expect("non-empty");
        let mut part = coarsest.initial_partition(k);
        coarsest.refine(&mut part, k, self.refine_passes, self.balance);
        for li in (0..levels.len() - 1).rev() {
            let finer = &levels[li];
            let mut fine_part = vec![0u32; finer.num_vertices()];
            for v in 0..finer.num_vertices() {
                fine_part[v] = part[finer.to_coarse[v] as usize];
            }
            part = fine_part;
            levels[li].refine(&mut part, k, self.refine_passes, self.balance);
        }
        report.phases.record("refine", t2.end());

        // Derive the edge partition: common part, else the less edge-loaded
        // of the two endpoint parts.
        let t3 = tps_obs::span("derive");
        let mut loads = vec![0u64; k as usize];
        for &e in &edges {
            let (pu, pv) = (part[e.src as usize], part[e.dst as usize]);
            let p = if pu == pv || loads[pu as usize] <= loads[pv as usize] {
                pu
            } else {
                pv
            };
            loads[p as usize] += 1;
            sink.assign(e, p)?;
        }
        report.phases.record("derive", t3.end());
        report.count("levels", levels.len() as u64);
        report.count(
            "coarsest_vertices",
            levels.last().unwrap().num_vertices() as u64,
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(g: &InMemoryGraph, k: u32) -> tps_metrics::quality::PartitionMetrics {
        let mut p = MultilevelPartitioner::default();
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_every_edge() {
        let g = Dataset::It.generate_scaled(0.01);
        let mut sink = VecSink::new();
        MultilevelPartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
    }

    #[test]
    fn splits_two_cliques_cleanly() {
        // Two 8-cliques joined by one edge → a perfect 2-way vertex split.
        let mut edges = Vec::new();
        for base in [0u32, 8] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push(Edge::new(base + i, base + j));
                }
            }
        }
        edges.push(Edge::new(0, 8));
        let g = InMemoryGraph::from_edges(edges);
        let m = quality(&g, 2);
        // Only the bridge edge replicates one vertex: RF ≤ 17/16.
        assert!(
            m.replication_factor <= 17.0 / 16.0 + 1e-9,
            "rf {}",
            m.replication_factor
        );
    }

    #[test]
    fn good_quality_on_clustered_graph() {
        let g = Dataset::Gsh.generate_scaled(0.01);
        let m = quality(&g, 8);
        assert!(m.replication_factor < 2.5, "rf {}", m.replication_factor);
    }

    #[test]
    fn coarsening_reduces_vertex_count() {
        let g = gnm::generate(2000, 10000, 7);
        let mut p = MultilevelPartitioner::default();
        let mut sink = VecSink::new();
        let report = p
            .partition(&mut g.stream(), &PartitionParams::new(4), &mut sink)
            .unwrap();
        assert!(report.counter("levels") > 1);
        assert!(report.counter("coarsest_vertices") < 2000);
    }

    #[test]
    fn deterministic() {
        let g = gnm::generate(300, 1500, 2);
        let params = PartitionParams::new(4);
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        MultilevelPartitioner::default()
            .partition(&mut g.stream(), &params, &mut a)
            .unwrap();
        MultilevelPartitioner::default()
            .partition(&mut g.stream(), &params, &mut b)
            .unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        assert_eq!(quality(&g, 4).num_edges, 0);
    }

    #[test]
    fn handles_star_graph() {
        // Matching collapses poorly on stars; the shrink-factor exit must
        // prevent an infinite loop.
        let edges: Vec<Edge> = (1..500).map(|i| Edge::new(0, i)).collect();
        let g = InMemoryGraph::from_edges(edges);
        let m = quality(&g, 4);
        assert_eq!(m.num_edges, 499);
    }
}
