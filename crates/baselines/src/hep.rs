//! HEP — Hybrid Edge Partitioner (Mayer & Jacobsen, SIGMOD 2021).
//!
//! HEP splits the graph by vertex degree using the parameter **τ**: edges
//! whose endpoints both have degree `≤ τ · mean_degree` form the *low-degree
//! subgraph*, which is materialised in memory and partitioned with NE++
//! (neighborhood expansion); all remaining edges are streamed with HDRF
//! scoring on top of the shared replication state. τ interpolates between
//! the two worlds (paper §V: τ = 100 ≈ in-memory, τ = 1 ≈ streaming), and
//! HEP's memory footprint is the in-memory subgraph — the reason the paper
//! uses HEP-1 as the memory-frugal quality baseline in Table IV.
//!
//! Reproduction notes: NE++'s cache-degree optimisations are not modelled
//! (they change constants, not behaviour); the in-memory phase gives each
//! partition a fair share of the low-degree subgraph so the streaming phase
//! can still respect the global `α` cap.

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::scoring::HdrfParams;
use tps_graph::csr::Csr;
use tps_graph::degree::DegreeTable;
use tps_graph::stream::{discover_info, for_each_edge, EdgeStream};
use tps_graph::types::{Edge, PartitionId};
use tps_metrics::bitmatrix::ReplicationMatrix;

use crate::ne::NeCore;

/// The HEP(τ) partitioner.
#[derive(Clone, Copy, Debug)]
pub struct HepPartitioner {
    /// Degree threshold factor τ (vertices with degree ≤ τ·mean are
    /// "low-degree"). Paper settings: 1, 10, 100.
    pub tau: f64,
    /// HDRF parameters for the streaming phase.
    pub hdrf: HdrfParams,
}

impl HepPartitioner {
    /// HEP with threshold factor `tau`.
    pub fn with_tau(tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        HepPartitioner {
            tau,
            hdrf: HdrfParams::default(),
        }
    }
}

impl Default for HepPartitioner {
    fn default() -> Self {
        HepPartitioner::with_tau(10.0)
    }
}

/// Sink adapter that updates the shared replication matrix + loads before
/// forwarding, so the streaming phase sees the in-memory phase's state.
struct StateTrackingSink<'a> {
    v2p: &'a mut ReplicationMatrix,
    loads: &'a mut [u64],
    inner: &'a mut dyn AssignmentSink,
}

impl AssignmentSink for StateTrackingSink<'_> {
    #[inline]
    fn assign(&mut self, edge: Edge, p: PartitionId) -> io::Result<()> {
        self.v2p.set(edge.src, p);
        self.v2p.set(edge.dst, p);
        self.loads[p as usize] += 1;
        self.inner.assign(edge, p)
    }
}

impl Partitioner for HepPartitioner {
    fn name(&self) -> String {
        // Paper naming: HEP-1, HEP-10, HEP-100.
        if (self.tau - self.tau.round()).abs() < 1e-9 {
            format!("HEP-{}", self.tau.round() as u64)
        } else {
            format!("HEP-{:.1}", self.tau)
        }
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }
        let k = params.k;

        // Degree pass.
        let t0 = tps_obs::span("degree");
        let degrees = DegreeTable::compute(stream, info.num_vertices)?;
        report.phases.record("degree", t0.end());

        let threshold = (self.tau * info.mean_degree()).max(1.0) as u32;

        // Split pass: materialise the low-degree subgraph.
        let t1 = tps_obs::span("split");
        let mut low_edges: Vec<Edge> = Vec::new();
        for_each_edge(stream, |e| {
            if degrees.degree(e.src) <= threshold && degrees.degree(e.dst) <= threshold {
                low_edges.push(e);
            }
        })?;
        let low_count = low_edges.len() as u64;
        report.phases.record("split", t1.end());

        let mut v2p = ReplicationMatrix::new(info.num_vertices, k);
        let mut loads = vec![0u64; k as usize];
        let cap = (params.alpha * info.num_edges as f64 / k as f64)
            .floor()
            .max(1.0) as u64;

        // In-memory phase: NE over the low-degree subgraph. Each partition
        // gets a fair share of the subgraph so the streaming phase has room.
        let t2 = tps_obs::span("memory_phase");
        if !low_edges.is_empty() {
            let csr = Csr::from_edges(&low_edges, info.num_vertices);
            let mut core = NeCore::new(&csr, &low_edges, k);
            let mem_share = (low_count.div_ceil(k as u64)).min(cap);
            {
                let mut tracking = StateTrackingSink {
                    v2p: &mut v2p,
                    loads: &mut loads,
                    inner: sink,
                };
                for p in 0..k {
                    core.expand(p, mem_share, &mut tracking)?;
                }
                core.sweep_leftovers_by(&mut tracking, |local| {
                    local
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .map(|(i, _)| i as u32)
                        .expect("k >= 1")
                })?;
            }
        }
        report.phases.record("memory_phase", t2.end());

        // Streaming phase: HDRF over the remaining (high-degree) edges with
        // the shared state and a hard cap.
        let t3 = tps_obs::span("stream_phase");
        let lambda = self.hdrf.lambda;
        let epsilon = self.hdrf.epsilon;
        let mut streamed = 0u64;
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            if degrees.degree(e.src) <= threshold && degrees.degree(e.dst) <= threshold {
                continue; // handled by the in-memory phase
            }
            streamed += 1;
            let du = degrees.degree(e.src) as f64;
            let dv = degrees.degree(e.dst) as f64;
            let d_sum = du + dv;
            let max_load = loads.iter().copied().max().unwrap_or(0);
            let min_load = loads.iter().copied().min().unwrap_or(0);
            let bal_denom = epsilon + (max_load - min_load) as f64;
            let mut best: Option<(f64, PartitionId)> = None;
            for p in 0..k {
                if loads[p as usize] >= cap {
                    continue;
                }
                let mut c_rep = 0.0;
                if v2p.get(e.src, p) {
                    c_rep += 1.0 + (1.0 - du / d_sum);
                }
                if v2p.get(e.dst, p) {
                    c_rep += 1.0 + (1.0 - dv / d_sum);
                }
                let c_bal = (max_load - loads[p as usize]) as f64 / bal_denom;
                let score = c_rep + lambda * c_bal;
                if best.is_none_or(|(bs, _)| score > bs) {
                    best = Some((score, p));
                }
            }
            let p = match best {
                Some((_, p)) => p,
                // All partitions at cap (can only happen via in-memory
                // overshoot): least loaded absorbs.
                None => loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i as u32)
                    .expect("k >= 1"),
            };
            v2p.set(e.src, p);
            v2p.set(e.dst, p);
            loads[p as usize] += 1;
            sink.assign(e, p)?;
        }
        report.phases.record("stream_phase", t3.end());
        report.count("low_degree_edges", low_count);
        report.count("streamed_edges", streamed);
        report.count("degree_threshold", threshold as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(
        tau: f64,
        g: &InMemoryGraph,
        k: u32,
    ) -> (tps_metrics::quality::PartitionMetrics, RunReport) {
        let mut p = HepPartitioner::with_tau(tau);
        let mut sink = QualitySink::new(g.num_vertices(), k);
        let report = p
            .partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        (sink.finish(), report)
    }

    #[test]
    fn assigns_every_edge_exactly_once() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let mut sink = VecSink::new();
        HepPartitioner::with_tau(10.0)
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        let mut got: Vec<Edge> = sink.assignments().iter().map(|(e, _)| *e).collect();
        let mut want = g.edges().to_vec();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn tau_controls_memory_phase_share() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let (_, r1) = quality(1.0, &g, 8);
        let (_, r100) = quality(100.0, &g, 8);
        assert!(
            r100.counter("low_degree_edges") > r1.counter("low_degree_edges"),
            "τ=100 must pull more edges in memory: {} vs {}",
            r100.counter("low_degree_edges"),
            r1.counter("low_degree_edges")
        );
    }

    #[test]
    fn split_is_exhaustive() {
        let g = Dataset::It.generate_scaled(0.01);
        let (m, r) = quality(10.0, &g, 8);
        assert_eq!(
            r.counter("low_degree_edges") + r.counter("streamed_edges"),
            g.num_edges()
        );
        assert_eq!(m.num_edges, g.num_edges());
    }

    #[test]
    fn quality_between_streaming_and_in_memory() {
        let g = Dataset::Gsh.generate_scaled(0.01);
        let k = 8;
        let (hep100, _) = quality(100.0, &g, k);
        let mut hdrf = crate::hdrf::HdrfPartitioner::default();
        let mut sink = QualitySink::new(g.num_vertices(), k);
        hdrf.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        let hdrf_m = sink.finish();
        assert!(
            hep100.replication_factor <= hdrf_m.replication_factor * 1.05,
            "hep-100 {} vs hdrf {}",
            hep100.replication_factor,
            hdrf_m.replication_factor
        );
    }

    #[test]
    fn respects_alpha_loosely() {
        let g = gnm::generate(500, 3000, 3);
        let (m, _) = quality(10.0, &g, 8);
        assert!(m.alpha <= 1.35, "alpha {}", m.alpha);
        assert!(m.min_load > 0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(HepPartitioner::with_tau(1.0).name(), "HEP-1");
        assert_eq!(HepPartitioner::with_tau(100.0).name(), "HEP-100");
        assert_eq!(HepPartitioner::with_tau(1.5).name(), "HEP-1.5");
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        let (m, _) = quality(10.0, &g, 4);
        assert_eq!(m.num_edges, 0);
    }
}
