//! ADWISE-style buffered (window-based) streaming edge partitioning
//! (Mayer et al., ICDCS 2018).
//!
//! ADWISE keeps a buffer of `w` unassigned edges and, instead of assigning
//! the stream head, repeatedly assigns the *best-scoring* (edge, partition)
//! pair from the buffer — "looking into the future" of the stream. The paper
//! uses it as the representative of buffered approaches and shows that (a)
//! it can beat HDRF on small graphs, (b) the buffer covers too little of a
//! very large graph to help, and (c) its run-time is far higher.
//!
//! ## Fidelity note (see DESIGN.md §2)
//!
//! The original scores the whole window per assignment with an adaptive
//! window size, amortising via score caching. We reproduce the behavioural
//! envelope with a bounded **probe cohort**: each step scores `probe`
//! round-robin window slots against all `k` partitions and assigns the
//! winner. Cost `O(|E|·probe·k)` — an order of magnitude above HDRF, like
//! the original; quality sits between HDRF and NE on buffer-sized graphs and
//! degrades toward HDRF when the graph vastly exceeds the buffer.

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::scoring::HdrfParams;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::Edge;
use tps_metrics::bitmatrix::ReplicationMatrix;

/// The buffered greedy partitioner.
#[derive(Clone, Copy, Debug)]
pub struct AdwisePartitioner {
    /// Window (buffer) size in edges.
    pub window: usize,
    /// Number of window slots scored per assignment step.
    pub probe: usize,
    /// HDRF-style scoring parameters used inside the window.
    pub params: HdrfParams,
}

impl Default for AdwisePartitioner {
    fn default() -> Self {
        AdwisePartitioner {
            window: 1024,
            probe: 16,
            params: HdrfParams::default(),
        }
    }
}

impl AdwisePartitioner {
    /// Score `edge` against all partitions; returns `(best_score, best_p)`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn best_partition(
        &self,
        edge: Edge,
        degrees: &[u64],
        v2p: &ReplicationMatrix,
        loads: &[u64],
        max_load: u64,
        min_load: u64,
        k: u32,
    ) -> (f64, u32) {
        let du = degrees[edge.src as usize].max(1);
        let dv = degrees[edge.dst as usize].max(1);
        let d_sum = (du + dv) as f64;
        let bal_denom = self.params.epsilon + (max_load - min_load) as f64;
        let mut best = (f64::NEG_INFINITY, 0u32);
        for p in 0..k {
            let mut c_rep = 0.0;
            if v2p.get(edge.src, p) {
                c_rep += 1.0 + (1.0 - du as f64 / d_sum);
            }
            if v2p.get(edge.dst, p) {
                c_rep += 1.0 + (1.0 - dv as f64 / d_sum);
            }
            let c_bal = (max_load - loads[p as usize]) as f64 / bal_denom;
            let score = c_rep + self.params.lambda * c_bal;
            if score > best.0 {
                best = (score, p);
            }
        }
        best
    }
}

impl Partitioner for AdwisePartitioner {
    fn name(&self) -> String {
        "ADWISE".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        let k = params.k;

        let t = tps_obs::span("partition");
        // Degrees are discovered on ingestion into the window (partial, as in
        // the original single-pass setting).
        let mut degrees = vec![0u64; info.num_vertices as usize];
        let mut v2p = ReplicationMatrix::new(info.num_vertices, k);
        let mut loads = vec![0u64; k as usize];
        let mut max_load = 0u64;

        let mut window: Vec<Edge> = Vec::with_capacity(self.window);
        let mut cursor = 0usize; // round-robin probe start
        stream.reset()?;
        let mut exhausted = false;

        loop {
            // Refill the window from the stream.
            while window.len() < self.window && !exhausted {
                match stream.next_edge()? {
                    Some(e) => {
                        degrees[e.src as usize] += 1;
                        degrees[e.dst as usize] += 1;
                        window.push(e);
                    }
                    None => exhausted = true,
                }
            }
            if window.is_empty() {
                break;
            }
            // Probe a bounded cohort of window slots; assign the best pair.
            let min_load = loads.iter().copied().min().unwrap_or(0);
            let probes = self.probe.min(window.len());
            let mut best: Option<(f64, usize, u32)> = None;
            for i in 0..probes {
                let idx = (cursor + i) % window.len();
                let (score, p) =
                    self.best_partition(window[idx], &degrees, &v2p, &loads, max_load, min_load, k);
                if best.is_none_or(|(bs, _, _)| score > bs) {
                    best = Some((score, idx, p));
                }
            }
            let (_, idx, p) = best.expect("window non-empty");
            let edge = window.swap_remove(idx);
            cursor = if window.is_empty() {
                0
            } else {
                (idx + 1) % window.len()
            };

            v2p.set(edge.src, p);
            v2p.set(edge.dst, p);
            loads[p as usize] += 1;
            max_load = max_load.max(loads[p as usize]);
            sink.assign(edge, p)?;
        }
        report.phases.record("partition", t.end());
        report.count("window", self.window as u64);
        report.count("probe", self.probe as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdrf::HdrfPartitioner;
    use tps_core::sink::QualitySink;
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(
        p: &mut dyn Partitioner,
        g: &InMemoryGraph,
        k: u32,
    ) -> tps_metrics::quality::PartitionMetrics {
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_all_edges() {
        let g = gnm::generate(100, 700, 3);
        let m = quality(&mut AdwisePartitioner::default(), &g, 8);
        assert_eq!(m.num_edges, 700);
    }

    #[test]
    fn window_helps_on_buffer_sized_graph() {
        // Graph small enough to fit mostly inside the window: ADWISE should
        // beat plain HDRF (the paper observed this on OK/IT).
        let g = Dataset::It.generate_scaled(0.002);
        let adwise = quality(&mut AdwisePartitioner::default(), &g, 8);
        let hdrf = quality(&mut HdrfPartitioner::default(), &g, 8);
        assert!(
            adwise.replication_factor <= hdrf.replication_factor * 1.05,
            "adwise {} vs hdrf {}",
            adwise.replication_factor,
            hdrf.replication_factor
        );
    }

    #[test]
    fn tiny_window_still_correct() {
        let g = gnm::generate(50, 200, 8);
        let mut p = AdwisePartitioner {
            window: 2,
            probe: 2,
            ..Default::default()
        };
        let m = quality(&mut p, &g, 4);
        assert_eq!(m.num_edges, 200);
    }

    #[test]
    fn window_larger_than_graph() {
        let g = gnm::generate(30, 60, 5);
        let mut p = AdwisePartitioner {
            window: 10_000,
            probe: 32,
            ..Default::default()
        };
        let m = quality(&mut p, &g, 4);
        assert_eq!(m.num_edges, 60);
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        let m = quality(&mut AdwisePartitioner::default(), &g, 4);
        assert_eq!(m.num_edges, 0);
    }
}
