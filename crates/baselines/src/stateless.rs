//! Stateless streaming partitioners: Random hashing, DBH and Grid.
//!
//! Stateless partitioning (paper §II-B) assigns each edge independently of
//! all previous assignments, via hashing:
//!
//! * [`RandomPartitioner`] — hash of the (canonicalised) edge. The
//!   no-information floor: replication ≈ `min(degree, k)` per vertex.
//! * [`DbhPartitioner`] — degree-based hashing (Xie et al., NeurIPS'14):
//!   hash the **lower-degree** endpoint, so high-degree vertices absorb the
//!   replication. One exact degree pass + one assignment pass; `O(|E|)`,
//!   `O(|V|)` state. The fastest meaningful baseline in the paper.
//! * [`GridPartitioner`] — constrained 2D hashing (GraphBuilder, Jain et
//!   al.): partitions form a `√k × √k` grid, the edge goes to cell
//!   `(h(u) mod r, h(v) mod r)`, bounding each vertex's replicas by `2√k`.
//!   `O(1)` state.

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::degree::DegreeTable;
use tps_graph::hash::{mix64, seeded_hash_to_partition};
use tps_graph::stream::{discover_info, EdgeStream};

/// Uniform random (hash-based) edge assignment.
#[derive(Clone, Copy, Debug)]
pub struct RandomPartitioner {
    /// Hash seed (fixed default → deterministic).
    pub seed: u64,
}

impl Default for RandomPartitioner {
    fn default() -> Self {
        RandomPartitioner { seed: 0x5EED_0001 }
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let t = tps_obs::span("partition");
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            let c = e.canonical();
            let key = ((c.src as u64) << 32) | c.dst as u64;
            let p = seeded_hash_to_partition((key ^ key >> 32) as u32, self.seed, params.k);
            sink.assign(e, p)?;
        }
        report.phases.record("partition", t.end());
        Ok(report)
    }
}

/// Degree-based hashing (DBH).
#[derive(Clone, Copy, Debug)]
pub struct DbhPartitioner {
    /// Hash seed.
    pub seed: u64,
}

impl Default for DbhPartitioner {
    fn default() -> Self {
        DbhPartitioner { seed: 0x5EED_0002 }
    }
}

impl Partitioner for DbhPartitioner {
    fn name(&self) -> String {
        "DBH".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;

        let t0 = tps_obs::span("degree");
        let degrees = DegreeTable::compute(stream, info.num_vertices)?;
        report.phases.record("degree", t0.end());

        let t1 = tps_obs::span("partition");
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            // Hash the lower-degree endpoint; ties keep the first endpoint,
            // so the choice is deterministic for a given stream.
            let v = if degrees.degree(e.src) <= degrees.degree(e.dst) {
                e.src
            } else {
                e.dst
            };
            let p = seeded_hash_to_partition(v, self.seed, params.k);
            sink.assign(e, p)?;
        }
        report.phases.record("partition", t1.end());
        Ok(report)
    }
}

/// Grid (constrained 2D) hashing.
#[derive(Clone, Copy, Debug)]
pub struct GridPartitioner {
    /// Hash seed.
    pub seed: u64,
}

impl Default for GridPartitioner {
    fn default() -> Self {
        GridPartitioner { seed: 0x5EED_0003 }
    }
}

impl GridPartitioner {
    /// Grid side length for `k` partitions: the largest `r` with `r² ≤ k`.
    /// Only `r²` partitions are used — the classic Grid constraint (the
    /// original requires a perfect square).
    pub fn side(k: u32) -> u32 {
        ((k as f64).sqrt().floor() as u32).max(1)
    }
}

impl Partitioner for GridPartitioner {
    fn name(&self) -> String {
        "Grid".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let r = Self::side(params.k);
        let t = tps_obs::span("partition");
        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            let row = (mix64(e.src as u64 ^ self.seed) % r as u64) as u32;
            let col = (mix64(e.dst as u64 ^ self.seed.rotate_left(17)) % r as u64) as u32;
            sink.assign(e, row * r + col)?;
        }
        report.phases.record("partition", t.end());
        report.count("grid_side", r as u64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    fn run_quality(
        p: &mut dyn Partitioner,
        g: &InMemoryGraph,
        k: u32,
    ) -> tps_metrics::quality::PartitionMetrics {
        let mut sink = QualitySink::new(g.num_vertices(), k);
        let mut s = g.stream();
        p.partition(&mut s, &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn all_stateless_assign_every_edge() {
        let g = gnm::generate(200, 1000, 7);
        for p in [
            &mut RandomPartitioner::default() as &mut dyn Partitioner,
            &mut DbhPartitioner::default(),
            &mut GridPartitioner::default(),
        ] {
            let m = run_quality(p, &g, 8);
            assert_eq!(m.num_edges, 1000, "{}", p.name());
        }
    }

    #[test]
    fn dbh_replicates_high_degree_vertices() {
        // A star: centre 0 has degree 200, leaves degree 1. DBH hashes the
        // leaves (lower degree), spreading the star across partitions but
        // keeping each leaf on exactly one partition.
        let edges: Vec<Edge> = (1..=200).map(|i| Edge::new(0, i)).collect();
        let g = InMemoryGraph::from_edges(edges);
        let m = run_quality(&mut DbhPartitioner::default(), &g, 8);
        // Leaves never replicated → total replicas = 200 + replicas(centre).
        assert!(m.total_replicas <= 200 + 8);
        // Loads should be roughly uniform (hashing 200 leaves over 8 parts).
        assert!(m.min_load > 0);
    }

    #[test]
    fn dbh_beats_random_on_skewed_graph() {
        let g = Dataset::Tw.generate_scaled(0.02);
        let dbh = run_quality(&mut DbhPartitioner::default(), &g, 32);
        let rnd = run_quality(&mut RandomPartitioner::default(), &g, 32);
        assert!(
            dbh.replication_factor < rnd.replication_factor,
            "dbh {} vs random {}",
            dbh.replication_factor,
            rnd.replication_factor
        );
    }

    #[test]
    fn grid_uses_only_square_partitions() {
        let g = gnm::generate(100, 500, 3);
        let mut sink = VecSink::new();
        let mut s = g.stream();
        GridPartitioner::default()
            .partition(&mut s, &PartitionParams::new(10), &mut sink)
            .unwrap();
        // side = 3 → only partitions 0..9 used; with k=10, partition 9 stays
        // empty.
        assert!(sink.assignments().iter().all(|&(_, p)| p < 9));
    }

    #[test]
    fn grid_bounds_vertex_replicas_by_two_rows() {
        let g = gnm::generate(60, 600, 11);
        let k = 16u32; // side 4
        let mut sink = QualitySink::new(g.num_vertices(), k);
        let mut s = g.stream();
        GridPartitioner::default()
            .partition(&mut s, &PartitionParams::new(k), &mut sink)
            .unwrap();
        let matrix = sink.tracker().matrix();
        for v in 0..g.num_vertices() as u32 {
            // A vertex appears in one fixed row (as src) and one fixed column
            // (as dst): ≤ 2·side − 1 replicas.
            assert!(matrix.replica_count(v) < 2 * 4);
        }
    }

    #[test]
    fn deterministic() {
        let g = gnm::generate(100, 400, 5);
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        let params = PartitionParams::new(8);
        DbhPartitioner::default()
            .partition(&mut g.stream(), &params, &mut a)
            .unwrap();
        DbhPartitioner::default()
            .partition(&mut g.stream(), &params, &mut b)
            .unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        let m = run_quality(&mut RandomPartitioner::default(), &g, 4);
        assert_eq!(m.num_edges, 0);
    }

    #[test]
    fn grid_side() {
        assert_eq!(GridPartitioner::side(1), 1);
        assert_eq!(GridPartitioner::side(4), 2);
        assert_eq!(GridPartitioner::side(10), 3);
        assert_eq!(GridPartitioner::side(256), 16);
    }
}
