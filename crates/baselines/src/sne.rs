//! SNE — streaming NE: the out-of-core variant of neighborhood expansion
//! used as a baseline in the paper ("a streaming version of the in-memory
//! partitioning algorithm NE", §V).
//!
//! The stream is consumed in bounded **chunks**. Each chunk is materialised
//! as a small CSR and partitioned with the NE expansion machinery
//! ([`crate::ne::NeCore`]); partition loads and the balance cap are global
//! across chunks, and each expansion targets the currently least-loaded
//! partition so chunks spread over all `k` parts.
//!
//! Behavioural envelope relative to the paper (§V-A): better replication
//! factor than HDRF (it sees neighbourhood structure within a chunk), far
//! slower than 2PS-L / DBH (expansion cost per chunk), memory bounded by the
//! chunk size rather than `|E|` — and, like the original implementation, it
//! *fails* (returns an error) when `k` exceeds the number of chunks' worth
//! of capacity it can manage; the paper shows SNE FAIL rows at k = 128/256
//! on several graphs. We reproduce the failure condition as: chunk capacity
//! cannot host `k` seeds (`chunk_edges < 4·k`).

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::csr::Csr;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::Edge;

use crate::ne::NeCore;

/// The streaming-NE partitioner.
#[derive(Clone, Copy, Debug)]
pub struct SnePartitioner {
    /// Maximum edges materialised per chunk. The paper's SNE uses a vertex
    /// cache of `2|V|`; an edge-count bound is the equivalent control knob
    /// for synthetic streams.
    pub chunk_edges: usize,
}

impl Default for SnePartitioner {
    fn default() -> Self {
        // The paper's SNE keeps a vertex cache of 2|V|, which for its
        // datasets corresponds to a large fraction of the edge set staying
        // addressable per round; 256 k edges plays that role at repo scale.
        SnePartitioner {
            chunk_edges: 1 << 18,
        }
    }
}

impl Partitioner for SnePartitioner {
    fn name(&self) -> String {
        "SNE".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        if info.num_edges == 0 {
            return Ok(report);
        }
        if self.chunk_edges < 4 * params.k as usize {
            // The failure regime the paper reports as "SNE FAIL" at high k.
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "SNE: chunk capacity {} cannot sustain k = {} partitions",
                    self.chunk_edges, params.k
                ),
            ));
        }

        let t = tps_obs::span("partition");
        let cap = (params.alpha * info.num_edges as f64 / params.k as f64)
            .floor()
            .max(1.0) as u64;
        let mut global_loads = vec![0u64; params.k as usize];
        let mut chunks = 0u64;

        stream.reset()?;
        let mut exhausted = false;
        let mut chunk: Vec<Edge> = Vec::with_capacity(self.chunk_edges);
        while !exhausted {
            chunk.clear();
            while chunk.len() < self.chunk_edges {
                match stream.next_edge()? {
                    Some(e) => chunk.push(e),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            if chunk.is_empty() {
                break;
            }
            chunks += 1;
            // Chunk-local CSR over the *global* id space (vertex state is
            // O(|V|), the out-of-core budget SNE also pays).
            let csr = Csr::from_edges(&chunk, info.num_vertices);
            let mut core = NeCore::new(&csr, &chunk, params.k);
            // Expand into the least-loaded partition until the chunk drains.
            loop {
                let p = global_loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i as u32)
                    .expect("k >= 1");
                if global_loads[p as usize] >= cap {
                    break; // all partitions at cap; sweep handles the rest
                }
                let before = core.loads()[p as usize];
                // Give this expansion a budget: fill towards the global cap
                // but stop after a chunk-fair share so other partitions get
                // chunk locality too.
                let budget = (self.chunk_edges as u64 / params.k as u64).max(16);
                let target = (before + budget).min(before + (cap - global_loads[p as usize]));
                core.expand(p, target, sink)?;
                let grown = core.loads()[p as usize] - before;
                global_loads[p as usize] += grown;
                if grown == 0 {
                    break; // chunk exhausted
                }
            }
            // Leftovers inside the chunk go to the *globally* least-loaded
            // partition at each step.
            core.sweep_leftovers_by(sink, |_| {
                let p = global_loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &l)| (l, i))
                    .map(|(i, _)| i as u32)
                    .expect("k >= 1");
                global_loads[p as usize] += 1;
                p
            })?;
        }
        report.phases.record("partition", t.end());
        report.count("chunks", chunks);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdrf::HdrfPartitioner;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;

    fn quality(
        p: &mut dyn Partitioner,
        g: &InMemoryGraph,
        k: u32,
    ) -> tps_metrics::quality::PartitionMetrics {
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_all_edges() {
        let g = Dataset::It.generate_scaled(0.01);
        let mut sink = VecSink::new();
        SnePartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert_eq!(sink.assignments().len() as u64, g.num_edges());
    }

    #[test]
    fn multiple_chunks_still_complete() {
        let g = Dataset::It.generate_scaled(0.02);
        let mut p = SnePartitioner { chunk_edges: 1024 };
        let mut sink = QualitySink::new(g.num_vertices(), 8);
        let report = p
            .partition(&mut g.stream(), &PartitionParams::new(8), &mut sink)
            .unwrap();
        assert!(report.counter("chunks") > 1);
        assert_eq!(sink.finish().num_edges, g.num_edges());
    }

    #[test]
    fn beats_hdrf_on_clustered_graph() {
        let g = Dataset::Gsh.generate_scaled(0.01);
        let sne = quality(&mut SnePartitioner::default(), &g, 8);
        let hdrf = quality(&mut HdrfPartitioner::default(), &g, 8);
        assert!(
            sne.replication_factor < hdrf.replication_factor,
            "sne {} vs hdrf {}",
            sne.replication_factor,
            hdrf.replication_factor
        );
    }

    #[test]
    fn fails_when_k_exceeds_chunk_capacity() {
        let g = gnm::generate(100, 400, 2);
        let mut p = SnePartitioner { chunk_edges: 64 };
        let mut sink = VecSink::new();
        let err = p
            .partition(&mut g.stream(), &PartitionParams::new(32), &mut sink)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn balanced_loads() {
        let g = Dataset::Ok.generate_scaled(0.01);
        let m = quality(&mut SnePartitioner::default(), &g, 8);
        assert!(m.min_load > 0);
        assert!(m.alpha < 1.35, "alpha {}", m.alpha);
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        let m = quality(&mut SnePartitioner::default(), &g, 4);
        assert_eq!(m.num_edges, 0);
    }
}
