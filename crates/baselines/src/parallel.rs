//! Chunk-parallel execution of the per-edge streaming baselines (HDRF, DBH)
//! over the same [`RangedEdgeSource`] substrate as the 2PS runners — the
//! paper's Fig. 4 comparison extended with a threads axis.
//!
//! Both baselines stream once over the edges after an exact degree pass, so
//! they parallelise over contiguous edge-index ranges exactly like phase 2
//! of 2PS-L:
//!
//! * **DBH** is stateless given the (merged, exact) degree table — each
//!   worker hashes its range independently, and because the per-edge
//!   decision is a pure function of the edge and the global degrees, the
//!   output is **identical to the serial DBH run at every thread count**
//!   (worker-order replay of contiguous ranges reproduces the input order).
//! * **HDRF** is stateful (replica matrix + load vector): each worker keeps
//!   its own scoring state over its range. One worker reproduces the serial
//!   exact-degree HDRF bit for bit; at higher thread counts the replication
//!   factor degrades *more steeply* than parallel 2PS-L's (roughly 1.5×
//!   serial at 2 threads, 2× at 4 on the R-MAT stand-ins), because HDRF has
//!   no pre-partitioning barrier at which replica state could be merged —
//!   every placement depends on all previous ones. That contrast is itself
//!   a Fig. 4 data point: 2PS-L's two-phase structure is what makes it
//!   parallelise without that loss.
//!
//! Every commit is also recorded in the shared [`AtomicLoads`] ledger, which
//! is where the merged per-partition loads in the report come from — the
//! same lock-free accounting the 2PS parallel runner uses (the baselines
//! enforce no hard cap, so the ledger's cap is only a reporting reference).

use std::io;

use tps_core::balance::AtomicLoads;
use tps_core::parallel::{merge_degree_tables, run_workers, shard_degrees};
use tps_core::partitioner::{PartitionParams, RunReport};
use tps_core::sink::AssignmentSink;
use tps_core::two_phase::scoring::HdrfParams;
use tps_graph::degree::DegreeTable;
use tps_graph::hash::seeded_hash_to_partition;
use tps_graph::ranged::{split_even, RangedEdgeSource};
use tps_graph::types::{Edge, PartitionId};

use crate::hdrf::HdrfScorer;
use crate::stateless::DbhPartitioner;

/// Which per-edge streaming baseline to run.
#[derive(Clone, Copy, Debug)]
pub enum StreamingBaseline {
    /// Degree-based hashing with the given seed (exact degrees).
    Dbh {
        /// Hash seed (defaults to [`DbhPartitioner`]'s).
        seed: u64,
    },
    /// HDRF with exact degrees (the `partial_degrees: false` ablation —
    /// partial degree counting is inherently sequential).
    Hdrf(HdrfParams),
}

impl StreamingBaseline {
    /// DBH with the default seed.
    pub fn dbh() -> Self {
        StreamingBaseline::Dbh {
            seed: DbhPartitioner::default().seed,
        }
    }

    /// HDRF with default parameters.
    pub fn hdrf() -> Self {
        StreamingBaseline::Hdrf(HdrfParams::default())
    }
}

/// Chunk-parallel runner for the streaming baselines.
#[derive(Clone, Copy, Debug)]
pub struct ParallelBaselineRunner {
    algo: StreamingBaseline,
    threads: usize,
}

impl ParallelBaselineRunner {
    /// A runner executing `algo` on `threads` workers (`0` selects
    /// [`std::thread::available_parallelism`]).
    pub fn new(algo: StreamingBaseline, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        ParallelBaselineRunner { algo, threads }
    }

    /// The worker thread count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Algorithm name with a thread tag, like the 2PS parallel runner's.
    pub fn name(&self) -> String {
        let base = match self.algo {
            StreamingBaseline::Dbh { .. } => "DBH",
            StreamingBaseline::Hdrf(_) => "HDRF",
        };
        format!("{base}×{}", self.threads)
    }

    /// Partition `source` into `params.k` parts, emitting into `sink` in
    /// deterministic worker order.
    pub fn partition(
        &self,
        source: &dyn RangedEdgeSource,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = source.info();
        if info.num_edges == 0 {
            return Ok(report);
        }
        let threads = self.threads.max(1);
        let ranges = split_even(info.num_edges, threads);

        // Exact degree pass, parallel and merged (both baselines share it;
        // serial DBH computes the identical table from one cursor).
        let t0 = tps_obs::span("degree");
        let tables = run_workers(&ranges, |_, range| {
            shard_degrees(source, range, info.num_vertices)
        })?;
        let degrees = merge_degree_tables(tables);
        report.phases.record("degree", t0.end());

        // Assignment pass: per-worker streaming state, shared load ledger.
        let t1 = tps_obs::span("partition");
        let ledger = AtomicLoads::new(params.k, info.num_edges, params.alpha);
        let algo = self.algo;
        let buffers = run_workers(&ranges, |_, (a, b)| {
            let mut out: Vec<(Edge, PartitionId)> = Vec::with_capacity((b - a) as usize);
            let mut stream = source.open_range(a, b)?;
            match algo {
                StreamingBaseline::Dbh { seed } => {
                    while let Some(e) = stream.next_edge()? {
                        let p = dbh_target(&degrees, e, seed, params.k);
                        ledger.reserve(p);
                        out.push((e, p));
                    }
                }
                StreamingBaseline::Hdrf(hdrf) => {
                    let mut scorer = HdrfScorer::new(info.num_vertices, params.k, hdrf);
                    while let Some(e) = stream.next_edge()? {
                        let du = degrees.degree(e.src) as u64;
                        let dv = degrees.degree(e.dst) as u64;
                        let p = scorer.place(e, du, dv);
                        ledger.reserve(p);
                        out.push((e, p));
                    }
                }
            }
            Ok(out)
        })?;
        report.phases.record("partition", t1.end());

        // Emit in worker order (= input order: the ranges are contiguous).
        let t2 = tps_obs::span("emit");
        for buf in buffers {
            for (e, p) in buf {
                sink.assign(e, p)?;
            }
        }
        report.phases.record("emit", t2.end());

        debug_assert_eq!(ledger.total(), info.num_edges);
        report.count("threads", threads as u64);
        report.count(
            "ledger_max_load",
            ledger.snapshot().into_iter().max().unwrap_or(0),
        );
        Ok(report)
    }
}

/// The DBH decision: hash the lower-degree endpoint (ties keep the first),
/// shared verbatim with [`DbhPartitioner`].
#[inline]
fn dbh_target(degrees: &DegreeTable, e: Edge, seed: u64, k: u32) -> PartitionId {
    let v = if degrees.degree(e.src) <= degrees.degree(e.dst) {
        e.src
    } else {
        e.dst
    };
    seeded_hash_to_partition(v, seed, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdrf::HdrfPartitioner;
    use tps_core::partitioner::Partitioner;
    use tps_core::sink::{QualitySink, VecSink};
    use tps_graph::datasets::Dataset;
    use tps_graph::stream::InMemoryGraph;

    fn parallel(
        algo: StreamingBaseline,
        g: &InMemoryGraph,
        k: u32,
        threads: usize,
    ) -> Vec<(Edge, u32)> {
        let mut sink = VecSink::new();
        ParallelBaselineRunner::new(algo, threads)
            .partition(g, &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.into_assignments()
    }

    #[test]
    fn parallel_dbh_is_identical_to_serial_at_every_thread_count() {
        let g = Dataset::Tw.generate_scaled(0.02);
        let mut serial = VecSink::new();
        DbhPartitioner::default()
            .partition(&mut g.stream(), &PartitionParams::new(16), &mut serial)
            .unwrap();
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                parallel(StreamingBaseline::dbh(), &g, 16, threads),
                serial.assignments(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn one_worker_hdrf_matches_serial_exact_degree_hdrf() {
        let g = Dataset::Ok.generate_scaled(0.02);
        let mut serial = VecSink::new();
        HdrfPartitioner {
            partial_degrees: false,
            ..Default::default()
        }
        .partition(&mut g.stream(), &PartitionParams::new(8), &mut serial)
        .unwrap();
        assert_eq!(
            parallel(StreamingBaseline::hdrf(), &g, 8, 1),
            serial.assignments()
        );
    }

    #[test]
    fn parallel_hdrf_assigns_all_edges_with_bounded_quality_loss() {
        let g = Dataset::Ok.generate_scaled(0.03);
        let k = 16;
        let mut serial_sink = QualitySink::new(g.num_vertices(), k);
        HdrfPartitioner {
            partial_degrees: false,
            ..Default::default()
        }
        .partition(&mut g.stream(), &PartitionParams::new(k), &mut serial_sink)
        .unwrap();
        let serial_rf = serial_sink.finish().replication_factor;
        for (threads, eps) in [(2usize, 1.6), (4, 2.2)] {
            let mut sink = QualitySink::new(g.num_vertices(), k);
            let report = ParallelBaselineRunner::new(StreamingBaseline::hdrf(), threads)
                .partition(&g, &PartitionParams::new(k), &mut sink)
                .unwrap();
            let m = sink.finish();
            assert_eq!(m.num_edges, g.num_edges());
            assert_eq!(report.counter("threads"), threads as u64);
            // HDRF has no barrier to merge replica state at, so its parallel
            // quality loss is steeper than 2PS-L's (see module docs).
            assert!(
                m.replication_factor <= serial_rf * eps + 0.05,
                "threads {threads}: rf {} vs serial {serial_rf} (eps {eps})",
                m.replication_factor
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_thread_count() {
        let g = Dataset::It.generate_scaled(0.01);
        for algo in [StreamingBaseline::dbh(), StreamingBaseline::hdrf()] {
            let a = parallel(algo, &g, 8, 4);
            let b = parallel(algo, &g, 8, 4);
            assert_eq!(a, b, "{algo:?}");
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = InMemoryGraph::from_edges(vec![]);
        assert!(parallel(StreamingBaseline::dbh(), &g, 4, 4).is_empty());
    }

    #[test]
    fn names_carry_thread_tags() {
        assert_eq!(
            ParallelBaselineRunner::new(StreamingBaseline::dbh(), 4).name(),
            "DBH×4"
        );
        assert_eq!(
            ParallelBaselineRunner::new(StreamingBaseline::hdrf(), 2).name(),
            "HDRF×2"
        );
        assert!(ParallelBaselineRunner::new(StreamingBaseline::dbh(), 0).threads() >= 1);
    }
}
