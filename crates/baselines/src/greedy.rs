//! Greedy — the PowerGraph streaming heuristic (Gonzalez et al., OSDI 2012).
//!
//! Case-based placement using the replica sets `A(u)`, `A(v)` of the two
//! endpoints:
//!
//! 1. both endpoints replicated with a common partition → least-loaded
//!    partition in `A(u) ∩ A(v)`;
//! 2. both replicated, disjoint → least-loaded in `A(u) ∪ A(v)` (the
//!    streaming adaptation: the original prefers the vertex with more
//!    unassigned edges, which a single-pass streamer cannot know);
//! 3. exactly one replicated → least-loaded partition in its replica set;
//! 4. neither → least-loaded partition overall.
//!
//! `O(|E|·k)` worst case (set scans), `O(|V|·k)` state. Mentioned by the
//! paper (§II-B, §VI) as outperformed by HDRF — we include it for
//! completeness and ablations.

use std::io;

use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::AssignmentSink;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::PartitionId;
use tps_metrics::bitmatrix::ReplicationMatrix;

/// The PowerGraph Greedy streaming partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyPartitioner;

impl GreedyPartitioner {
    /// Least-loaded partition among those with the bit set for *either*
    /// vertex mask; returns `None` if no candidate.
    fn best_in<'a>(
        loads: &[u64],
        candidates: impl Iterator<Item = &'a PartitionId>,
    ) -> Option<PartitionId> {
        let mut best: Option<(u64, PartitionId)> = None;
        for &p in candidates {
            let l = loads[p as usize];
            if best.is_none_or(|(bl, bp)| l < bl || (l == bl && p < bp)) {
                best = Some((l, p));
            }
        }
        best.map(|(_, p)| p)
    }
}

impl Partitioner for GreedyPartitioner {
    fn name(&self) -> String {
        "Greedy".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn EdgeStream,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> io::Result<RunReport> {
        let mut report = RunReport::default();
        let info = discover_info(stream)?;
        let k = params.k;

        let t = tps_obs::span("partition");
        let mut v2p = ReplicationMatrix::new(info.num_vertices, k);
        let mut loads = vec![0u64; k as usize];

        stream.reset()?;
        while let Some(e) = stream.next_edge()? {
            let a_u: Vec<PartitionId> = v2p.partitions_of(e.src).collect();
            let a_v: Vec<PartitionId> = v2p.partitions_of(e.dst).collect();
            let inter: Vec<PartitionId> = a_u.iter().copied().filter(|p| a_v.contains(p)).collect();

            let target = if !inter.is_empty() {
                Self::best_in(&loads, inter.iter()).expect("non-empty intersection")
            } else if !a_u.is_empty() && !a_v.is_empty() {
                Self::best_in(&loads, a_u.iter().chain(a_v.iter())).expect("non-empty union")
            } else if !a_u.is_empty() {
                Self::best_in(&loads, a_u.iter()).expect("non-empty set")
            } else if !a_v.is_empty() {
                Self::best_in(&loads, a_v.iter()).expect("non-empty set")
            } else {
                // Least loaded overall.
                let mut best = 0u32;
                for p in 1..k {
                    if loads[p as usize] < loads[best as usize] {
                        best = p;
                    }
                }
                best
            };

            v2p.set(e.src, target);
            v2p.set(e.dst, target);
            loads[target as usize] += 1;
            sink.assign(e, target)?;
        }
        report.phases.record("partition", t.end());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::sink::QualitySink;
    use tps_graph::gen::gnm;
    use tps_graph::stream::InMemoryGraph;
    use tps_graph::types::Edge;

    fn quality(g: &InMemoryGraph, k: u32) -> tps_metrics::quality::PartitionMetrics {
        let mut p = GreedyPartitioner;
        let mut sink = QualitySink::new(g.num_vertices(), k);
        p.partition(&mut g.stream(), &PartitionParams::new(k), &mut sink)
            .unwrap();
        sink.finish()
    }

    #[test]
    fn assigns_all_edges() {
        let g = gnm::generate(200, 800, 4);
        assert_eq!(quality(&g, 8).num_edges, 800);
    }

    #[test]
    fn keeps_a_path_together() {
        // A path streamed in order: every new edge shares a vertex with the
        // previous one, so Greedy should keep long stretches co-located.
        let edges: Vec<Edge> = (0..50).map(|i| Edge::new(i, i + 1)).collect();
        let g = InMemoryGraph::from_edges(edges);
        let m = quality(&g, 4);
        // Perfect RF would be slightly above 1; random would be ~1.9.
        assert!(m.replication_factor < 1.5, "rf {}", m.replication_factor);
    }

    #[test]
    fn spreads_load_when_uninformed() {
        // Disjoint edges: rule 4 (least loaded) must round-robin them.
        let edges: Vec<Edge> = (0..40).map(|i| Edge::new(2 * i, 2 * i + 1)).collect();
        let g = InMemoryGraph::from_edges(edges);
        let m = quality(&g, 4);
        assert_eq!(m.max_load, 10);
        assert_eq!(m.min_load, 10);
    }

    #[test]
    fn intersection_rule_wins() {
        // Edge (0,1) then (1,2) then (0,2): third edge's endpoints both live
        // on the partitions of the first two; Greedy must reuse one, not open
        // a new partition.
        let g = InMemoryGraph::from_edges(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
        let m = quality(&g, 8);
        assert!(m.total_replicas <= 4, "replicas {}", m.total_replicas);
    }

    #[test]
    fn empty_graph() {
        let g = InMemoryGraph::from_edges(vec![]);
        assert_eq!(quality(&g, 4).num_edges, 0);
    }
}
