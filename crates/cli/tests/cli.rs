//! End-to-end tests of the `tps` binary.

use std::path::PathBuf;
use std::process::Command;

fn tps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tps"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tps-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = tps().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tps partition"));
    assert!(text.contains("2ps-l"));
}

#[test]
fn unknown_command_fails() {
    let out = tps().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn generate_info_partition_roundtrip() {
    let dir = tmpdir("roundtrip");
    let bel = dir.join("ok.bel");

    // generate
    let out = tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.01", "--out"])
        .arg(&bel)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // info
    let out = tps().args(["info", "--input"]).arg(&bel).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("edges: 4000"), "{text}");

    // partition with output files
    let parts = dir.join("parts");
    let out = tps()
        .args(["partition", "--input"])
        .arg(&bel)
        .args(["--k", "4", "--out"])
        .arg(&parts)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("algorithm=2PS-L"), "{text}");
    assert!(text.contains("edges=4000"), "{text}");

    // The partition files together hold every edge exactly once.
    let mut total = 0u64;
    for i in 0..4 {
        let f =
            tps_graph::formats::binary::BinaryEdgeFile::open(parts.join(format!("ok.part{i}.bel")))
                .unwrap();
        total += f.info().num_edges;
    }
    assert_eq!(total, 4000);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_each_algorithm_smoke() {
    let dir = tmpdir("algos");
    let bel = dir.join("it.bel");
    tps()
        .args(["generate", "--dataset", "it", "--scale", "0.005", "--out"])
        .arg(&bel)
        .status()
        .unwrap();
    for algo in [
        "2ps-l",
        "2ps-hdrf",
        "hdrf",
        "dbh",
        "grid",
        "random",
        "greedy",
        "ne",
        "sne",
        "dne",
        "hep-10",
        "multilevel",
    ] {
        let out = tps()
            .args(["partition", "--input"])
            .arg(&bel)
            .args(["--k", "4", "--algorithm", algo, "--quiet"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("rf="),
            "{algo}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_and_reader_backends_roundtrip() {
    let dir = tmpdir("convert");
    let bel = dir.join("ok.bel");
    let bel2 = dir.join("ok.bel2");
    let back = dir.join("ok-back.bel");

    let out = tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.01", "--out"])
        .arg(&bel)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // v1 -> v2 shrinks the file.
    let out = tps()
        .args(["convert", "--input"])
        .arg(&bel)
        .arg("--out")
        .arg(&bel2)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v1_size = std::fs::metadata(&bel).unwrap().len();
    let v2_size = std::fs::metadata(&bel2).unwrap().len();
    assert!(
        v2_size < v1_size,
        "v2 {v2_size} not smaller than v1 {v1_size}"
    );

    // v2 -> v1 restores the original bytes.
    let out = tps()
        .args(["convert", "--input"])
        .arg(&bel2)
        .arg("--out")
        .arg(&back)
        .args(["--to", "v1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&bel).unwrap(), std::fs::read(&back).unwrap());

    // Every reader backend partitions both formats with identical metrics.
    let mut lines = Vec::new();
    for input in [&bel, &bel2] {
        for reader in ["buffered", "mmap", "prefetch"] {
            let out = tps()
                .args(["partition", "--input"])
                .arg(input)
                .args(["--k", "4", "--reader", reader, "--quiet"])
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "{reader}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            // Strip the wall-clock field; everything else is deterministic.
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            let metrics = stdout.split(" time_s=").next().unwrap().to_string();
            lines.push(metrics);
        }
    }
    assert!(
        lines.iter().all(|l| l == &lines[0]),
        "metrics diverged: {lines:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_with_spill_budget_matches_file_sink() {
    let dir = tmpdir("spill");
    let bel = dir.join("ok.bel");
    tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.01", "--out"])
        .arg(&bel)
        .status()
        .unwrap();

    let plain = dir.join("plain");
    let spilled = dir.join("spilled");
    // Pin the thread count on both sides: the spill budget bounds memory
    // (spilling sink + spill-backed replay spools) without changing the
    // assignments, so equal --threads must give identical files.
    for (out_dir, extra) in [
        (&plain, &["--threads", "2"][..]),
        (&spilled, &["--threads", "2", "--spill-budget-mb", "1"][..]),
    ] {
        let out = tps()
            .args(["partition", "--input"])
            .arg(&bel)
            .args(["--k", "4", "--out"])
            .arg(out_dir)
            .args(extra)
            .args(["--quiet"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // Identical partition files either way (2PS-L is deterministic).
    for i in 0..4 {
        let a = std::fs::read(plain.join(format!("ok.part{i}.bel"))).unwrap();
        let b = std::fs::read(spilled.join(format!("ok.part{i}.bel"))).unwrap();
        assert_eq!(a, b, "partition {i} diverged under the spilling sink");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partition_text_format() {
    let dir = tmpdir("text");
    let txt = dir.join("g.txt");
    std::fs::write(&txt, "# tiny graph\n0 1\n1 2\n2 3\n3 0\n").unwrap();
    let out = tps()
        .args(["partition", "--input"])
        .arg(&txt)
        .args(["--k", "2", "--format", "text", "--quiet"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("edges=4"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_one_matches_serial_bit_for_bit() {
    let dir = tmpdir("threads1");
    let bel = dir.join("ok.bel");
    tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.01", "--out"])
        .arg(&bel)
        .status()
        .unwrap();

    let serial = dir.join("serial");
    let one = dir.join("one");
    for (out_dir, threads) in [(&serial, "serial"), (&one, "1")] {
        let out = tps()
            .args(["partition", "--input"])
            .arg(&bel)
            .args(["--k", "4", "--threads", threads, "--out"])
            .arg(out_dir)
            .args(["--quiet"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // One worker runs the exact serial code path: files must be identical.
    for i in 0..4 {
        let a = std::fs::read(serial.join(format!("ok.part{i}.bel"))).unwrap();
        let b = std::fs::read(one.join(format!("ok.part{i}.bel"))).unwrap();
        assert_eq!(a, b, "partition {i} diverged between serial and 1 thread");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_parallel_is_deterministic_across_formats_and_readers() {
    let dir = tmpdir("threads-par");
    let bel = dir.join("ok.bel");
    let bel2 = dir.join("ok.bel2");
    tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.01", "--out"])
        .arg(&bel)
        .status()
        .unwrap();
    tps()
        .args(["convert", "--input"])
        .arg(&bel)
        .arg("--out")
        .arg(&bel2)
        .status()
        .unwrap();

    // The same --threads value must give identical metrics regardless of
    // run, input format, or reader backend (ranges are edge-indexed).
    let mut lines = Vec::new();
    for input in [&bel, &bel, &bel2] {
        for reader in ["buffered", "mmap", "prefetch"] {
            let out = tps()
                .args(["partition", "--input"])
                .arg(input)
                .args(["--k", "4", "--threads", "3", "--reader", reader, "--quiet"])
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "{reader}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            lines.push(stdout.split(" time_s=").next().unwrap().to_string());
        }
    }
    assert!(
        lines.iter().all(|l| l == &lines[0]),
        "parallel metrics diverged: {lines:?}"
    );
    assert!(lines[0].contains("algorithm=2PS-L×3"), "{}", lines[0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_local_two_workers_is_bit_identical_to_threads_two() {
    let dir = tmpdir("dist");
    let bel = dir.join("ok.bel");
    tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.02", "--out"])
        .arg(&bel)
        .status()
        .unwrap();

    let t2 = dir.join("t2");
    let out = tps()
        .args(["partition", "--input"])
        .arg(&bel)
        .args(["--k", "8", "--threads", "2", "--out"])
        .arg(&t2)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The acceptance contract: a 2-worker loopback-TCP distributed run on
    // the same shard map writes byte-identical partition files.
    let d2 = dir.join("d2");
    let out = tps()
        .args(["dist", "coordinator", "--input"])
        .arg(&bel)
        .args(["--k", "8", "--workers", "2", "--dist-local", "--out"])
        .arg(&d2)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("algorithm=2PS-L×2w"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    for i in 0..8 {
        let a = std::fs::read(t2.join(format!("ok.part{i}.bel"))).unwrap();
        let b = std::fs::read(d2.join(format!("ok.part{i}.bel"))).unwrap();
        assert_eq!(a, b, "partition {i} diverged between --threads 2 and dist");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_local_recovers_from_a_killed_worker_bit_identically() {
    let dir = tmpdir("dist-chaos");
    let bel = dir.join("ok.bel");
    tps()
        .args(["generate", "--dataset", "ok", "--scale", "0.02", "--out"])
        .arg(&bel)
        .status()
        .unwrap();

    let t2 = dir.join("t2");
    assert!(tps()
        .args(["partition", "--input"])
        .arg(&bel)
        .args(["--k", "8", "--threads", "2", "--out"])
        .arg(&t2)
        .arg("--quiet")
        .status()
        .unwrap()
        .success());

    // One worker hard-exits right after learning the merged degrees (mid
    // phase 1); the standby takes over and the recovered output must still
    // be byte-identical. A second case uses the respawn path instead.
    for (tag, extra) in [("standby", vec!["--standby", "1"]), ("respawn", vec![])] {
        let out_dir = dir.join(tag);
        let mut cmd = tps();
        cmd.args(["dist", "coordinator", "--input"])
            .arg(&bel)
            .args(["--k", "8", "--workers", "2", "--dist-local"])
            .args(["--max-retries", "2", "--kill-worker", "0"])
            .args(["--kill-at", "recv:globals", "--out"])
            .arg(&out_dir)
            .args(&extra);
        let out = cmd.output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{tag}: {stderr}");
        // The fault must actually have fired (spawn index 0 deterministically
        // holds shard 0, so recv:globals always triggers): one re-issue.
        assert!(
            stderr.contains("counter worker_retries: 1"),
            "{tag}: kill never fired\n{stderr}"
        );
        for i in 0..8 {
            let a = std::fs::read(t2.join(format!("ok.part{i}.bel"))).unwrap();
            let b = std::fs::read(out_dir.join(format!("ok.part{i}.bel"))).unwrap();
            assert_eq!(a, b, "{tag}: partition {i} diverged after worker kill");
        }
    }

    // A bad kill spec is rejected before anything is spawned.
    let out = tps()
        .args(["dist", "coordinator", "--input"])
        .arg(&bel)
        .args([
            "--k",
            "4",
            "--dist-local",
            "--kill-worker",
            "0",
            "--kill-at",
            "whenever",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("kill spec"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_rejects_non_two_phase_algorithms_and_bad_worker_counts() {
    let out = tps()
        .args([
            "dist",
            "coordinator",
            "--input",
            "/nonexistent.bel",
            "--k",
            "4",
            "--algorithm",
            "hdrf",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("2ps-l"));

    let out = tps()
        .args([
            "dist",
            "coordinator",
            "--input",
            "/nonexistent.bel",
            "--k",
            "4",
            "--workers",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"));

    let out = tps().args(["dist", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn threads_flag_rejects_garbage() {
    let out = tps()
        .args([
            "partition",
            "--input",
            "/nonexistent.bel",
            "--k",
            "4",
            "--threads",
            "many",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

#[test]
fn missing_flags_error_cleanly() {
    let out = tps().args(["partition", "--k", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    let out = tps()
        .args(["generate", "--dataset", "nope", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
