//! `tps top` — a polling terminal dashboard over a `--metrics-addr`
//! endpoint (serve daemon or dist coordinator).
//!
//! Scrapes the text exposition every `--interval-ms`, derives rates from
//! successive counter samples, and redraws in place with plain ANSI
//! (clear + home — no terminal crate in the offline dependency set). The
//! rendering itself is a pure function of two scrapes, so it is unit
//! tested without a socket; `--once` prints a single frame without
//! clearing, which is what the CI smoke job asserts against.

use std::time::{Duration, Instant};

use tps_obs::{parse_exposition, scrape, Sample};

use crate::args::Flags;
use crate::commands::fail;

/// One parsed scrape plus when it was taken (rates need the wall-clock gap).
struct Frame {
    at: Instant,
    samples: Vec<Sample>,
}

impl Frame {
    fn grab(addr: &str) -> Result<Frame, String> {
        let at = Instant::now();
        let body = scrape(addr).map_err(|e| format!("{addr}: {e}"))?;
        let samples = parse_exposition(&body).map_err(|e| format!("{addr}: {e}"))?;
        Ok(Frame { at, samples })
    }

    /// The value of `metric{name="..."}`, if scraped.
    fn get(&self, metric: &str, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.metric == metric && s.label("name") == Some(name))
            .map(|s| s.value)
    }

    fn counter(&self, name: &str) -> Option<f64> {
        self.get("tps_counter", name)
    }

    fn gauge(&self, name: &str) -> Option<f64> {
        self.get("tps_gauge", name)
    }

    /// The quantile `q` of histogram `name` (q as rendered, e.g. "0.99").
    fn quantile(&self, name: &str, q: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.metric == "tps_hist_quantile"
                    && s.label("name") == Some(name)
                    && s.label("q") == Some(q)
            })
            .map(|s| s.value)
    }

    /// All histogram names present, in exposition (sorted) order.
    fn hist_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .samples
            .iter()
            .filter(|s| s.metric == "tps_hist_count")
            .filter_map(|s| s.label("name"))
            .collect();
        names.dedup();
        names
    }
}

/// Format a nanosecond quantity with a readable unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Format a byte rate.
fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// The coordinator's stage-gauge rank, named (see `Stage::rank` in
/// tps-dist): the per-shard `dist.shard.N.stage` gauge publishes the major
/// rank so the dashboard can show where each shard stands.
fn stage_name(major: f64) -> &'static str {
    match major as u32 {
        0 => "degrees",
        1 => "globals",
        2 => "clustering",
        3 => "plan",
        4 => "replication",
        5 => "partition",
        6 => "emit",
        _ => "?",
    }
}

/// Render one dashboard frame from the current scrape (and the previous
/// one, for rates). Pure — the unit tests drive it with synthetic frames.
fn render(addr: &str, cur: &Frame, prev: Option<&Frame>, tick: u64) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        out.push('\n');
    };
    push(&mut out, format!("tps top — {addr} — sample {tick}"));

    // Serve header gauges, if this is a serving daemon.
    if let Some(uptime) = cur.gauge("serve.uptime.secs") {
        push(
            &mut out,
            format!(
                "serve  uptime {uptime:.1} s  staleness {:.4}  epoch {}  overlay {}  live edges {}",
                cur.gauge("serve.staleness").unwrap_or(0.0),
                cur.gauge("serve.epoch").unwrap_or(0.0),
                cur.gauge("serve.overlay.len").unwrap_or(0.0),
                cur.gauge("serve.edges.live").unwrap_or(0.0),
            ),
        );
        push(
            &mut out,
            format!(
                "cache  {} hits / {} misses",
                cur.gauge("serve.cache.hits").unwrap_or(0.0),
                cur.gauge("serve.cache.misses").unwrap_or(0.0),
            ),
        );
    }

    // QPS from the request-counter delta between scrapes.
    if let Some(reqs) = cur.counter("serve.requests") {
        let qps = prev.and_then(|p| {
            let dt = cur.at.duration_since(p.at).as_secs_f64();
            let dv = reqs - p.counter("serve.requests")?;
            (dt > 0.0).then(|| dv / dt)
        });
        match qps {
            Some(qps) => push(&mut out, format!("qps    {qps:.1}  (requests {reqs})")),
            None => push(&mut out, format!("qps    —  (requests {reqs})")),
        }
    }

    // Latency / size table: one row per histogram.
    let hists = cur.hist_names();
    if !hists.is_empty() {
        push(
            &mut out,
            format!(
                "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p90", "p99", "max"
            ),
        );
        for name in hists {
            let count = cur.get("tps_hist_count", name).unwrap_or(0.0);
            // Only `.ns`-named histograms hold time; the rest (batch
            // sizes) render as plain numbers.
            let unit = |v: f64| {
                if name.ends_with(".ns") {
                    fmt_ns(v)
                } else {
                    format!("{v:.0}")
                }
            };
            let q = |q: &str| cur.quantile(name, q).map_or("—".into(), unit);
            let max = cur.get("tps_hist_max", name).map_or("—".into(), unit);
            push(
                &mut out,
                format!(
                    "{name:<26} {count:>10} {:>10} {:>10} {:>10} {max:>10}",
                    q("0.5"),
                    q("0.9"),
                    q("0.99"),
                ),
            );
        }
    }

    // Dist coordinator view, if its gauges are present.
    if let Some(shards) = cur.gauge("dist.shards") {
        let rate = cur
            .gauge("dist.frames.bytes.rate")
            .map_or("—".into(), |r| format!("{}/s", fmt_bytes(r)));
        push(
            &mut out,
            format!(
                "dist   shards {shards}  workers {} live / {} idle  retries {}  frames {rate}",
                cur.gauge("dist.workers.live").unwrap_or(0.0),
                cur.gauge("dist.workers.idle").unwrap_or(0.0),
                cur.gauge("dist.retries").unwrap_or(0.0),
            ),
        );
        push(
            &mut out,
            format!(
                "{:<6} {:<12} {:>6} {:>12}",
                "shard", "stage", "epoch", "emitted"
            ),
        );
        for s in 0..shards as u64 {
            let Some(major) = cur.gauge(&format!("dist.shard.{s}.stage")) else {
                continue;
            };
            push(
                &mut out,
                format!(
                    "{s:<6} {:<12} {:>6} {:>12}",
                    stage_name(major),
                    cur.gauge(&format!("dist.shard.{s}.epoch")).unwrap_or(0.0),
                    cur.gauge(&format!("dist.shard.{s}.emitted")).unwrap_or(0.0),
                ),
            );
        }
    }
    out
}

/// `tps top`
pub fn top(args: &[String]) -> i32 {
    let Some((addr, rest)) = args.split_first() else {
        return fail("usage: tps top HOST:PORT [--interval-ms N] [--samples N] [--once]");
    };
    if addr.starts_with("--") {
        return fail("tps top takes the metrics address first: tps top HOST:PORT [options]");
    }
    let flags = match Flags::parse(rest, &["once"], &["interval-ms", "samples"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let interval = Duration::from_millis(flags.get_or("interval-ms", 1000u64)?);
        // 0 = run until the endpoint goes away (or ^C).
        let samples: u64 = flags.get_or("samples", 0)?;
        let samples = if flags.has("once") { 1 } else { samples };

        let mut prev: Option<Frame> = None;
        let mut tick = 0u64;
        loop {
            let cur = Frame::grab(addr)?;
            tick += 1;
            let body = render(addr, &cur, prev.as_ref(), tick);
            if samples == 1 {
                print!("{body}");
            } else {
                // Clear + home, then the frame — a full redraw in place.
                print!("\x1b[2J\x1b[H{body}");
                use std::io::Write as _;
                std::io::stdout().flush().ok();
            }
            if samples != 0 && tick >= samples {
                return Ok(());
            }
            prev = Some(cur);
            std::thread::sleep(interval);
        }
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(text: &str) -> Frame {
        Frame {
            at: Instant::now(),
            samples: parse_exposition(text).unwrap(),
        }
    }

    #[test]
    fn renders_serve_view_with_quantiles() {
        let cur = frame(concat!(
            "tps_counter{name=\"serve.requests\"} 120\n",
            "tps_gauge{name=\"serve.uptime.secs\"} 2.5\n",
            "tps_gauge{name=\"serve.staleness\"} 0.25\n",
            "tps_hist_count{name=\"serve.op.lookup.ns\"} 100\n",
            "tps_hist_max{name=\"serve.op.lookup.ns\"} 4000\n",
            "tps_hist_quantile{name=\"serve.op.lookup.ns\",q=\"0.5\"} 1448\n",
            "tps_hist_quantile{name=\"serve.op.lookup.ns\",q=\"0.9\"} 2048\n",
            "tps_hist_quantile{name=\"serve.op.lookup.ns\",q=\"0.99\"} 2896\n",
        ));
        let out = render("x:1", &cur, None, 1);
        assert!(out.contains("staleness 0.2500"), "{out}");
        assert!(out.contains("serve.op.lookup.ns"), "{out}");
        assert!(out.contains("1.4 µs"), "{out}");
        assert!(out.contains("qps    —"), "{out}");
    }

    #[test]
    fn qps_is_the_counter_delta_over_the_gap() {
        let mut prev = frame("tps_counter{name=\"serve.requests\"} 100\n");
        prev.at = Instant::now() - Duration::from_secs(2);
        let cur = frame("tps_counter{name=\"serve.requests\"} 300\n");
        let out = render("x:1", &cur, Some(&prev), 2);
        // 200 requests over ~2 s ≈ 100 qps (sleep imprecision ⇒ loose check).
        let qps: f64 = out
            .lines()
            .find(|l| l.starts_with("qps"))
            .and_then(|l| l.split_whitespace().nth(1)?.parse().ok())
            .unwrap();
        assert!((90.0..=110.0).contains(&qps), "{out}");
    }

    #[test]
    fn renders_dist_shard_table() {
        let cur = frame(concat!(
            "tps_gauge{name=\"dist.shards\"} 2\n",
            "tps_gauge{name=\"dist.workers.live\"} 2\n",
            "tps_gauge{name=\"dist.shard.0.stage\"} 6\n",
            "tps_gauge{name=\"dist.shard.0.emitted\"} 500\n",
            "tps_gauge{name=\"dist.shard.1.stage\"} 4\n",
        ));
        let out = render("x:1", &cur, None, 1);
        assert!(out.contains("emit"), "{out}");
        assert!(out.contains("replication"), "{out}");
        assert!(out.contains("500"), "{out}");
    }

    #[test]
    fn units_format() {
        assert_eq!(fmt_ns(950.0), "950 ns");
        assert_eq!(fmt_ns(1500.0), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.20 s");
        assert_eq!(fmt_bytes(1.25e6), "1.25 MB");
    }
}
