//! `tps serve` / `tps lookup` — the online serving daemon and its client.
//!
//! `serve` loads a `tps partition --out` directory into a
//! [`tps_serve::ServeState`] and answers point queries and streamed edge
//! deltas over TCP; `lookup` is the matching command-line client (and the
//! CI smoke test's driver: `--verify-parts` re-reads the partition files
//! and asserts the served answers match them bit for bit).

use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, RwLock};

use tps_graph::types::Edge;
use tps_serve::{ServeClient, ServeHandle, ServeOptions, ServeState, ServerConfig};

use crate::args::{CommonOpts, Flags};
use crate::commands::{fail, two_phase_config, write_addr_file};

/// `tps serve`
pub fn serve(args: &[String]) -> i32 {
    let flags = match Flags::parse(
        args,
        &["quiet"],
        &[
            "parts",
            "listen",
            "addr-file",
            "metrics-addr",
            "metrics-addr-file",
            "trace",
            "state",
            "save-state",
            "cache",
            "headroom",
            "alpha",
            "passes",
            "algorithm",
        ],
    ) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let common = CommonOpts::from_flags(&flags)?;
        let parts = flags.require("parts")?;
        let quiet = flags.has("quiet");
        let config = two_phase_config(&common.algorithm, common.passes).ok_or_else(|| {
            format!(
                "tps serve scores insertions with 2ps-l / 2ps-hdrf only, not {:?}",
                common.algorithm
            )
        })?;
        let opts = ServeOptions {
            alpha: common.alpha,
            headroom: flags.get_or("headroom", 1.2)?,
            config,
        };

        let loaded =
            tps_io::load_partition_dir(Path::new(parts)).map_err(|e| format!("{parts}: {e}"))?;
        let state = match flags.get("state") {
            // Restore the write path (every post-load decision) from a
            // snapshot; a missing file is a first boot, not an error.
            Some(path) if Path::new(path).exists() => {
                let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                let st =
                    ServeState::restore(&loaded, &mut f).map_err(|e| format!("{path}: {e}"))?;
                if !quiet {
                    eprintln!(
                        "note: restored engine snapshot from {path} ({} overlay entries)",
                        st.overlay_len()
                    );
                }
                st
            }
            _ => ServeState::from_loaded(&loaded, &opts).map_err(|e| format!("{parts}: {e}"))?,
        };
        if !quiet {
            eprintln!(
                "note: loaded {} edges, k={}, staleness {:.4}",
                state.num_edges(),
                state.k(),
                state.staleness()
            );
        }
        let state = Arc::new(RwLock::new(state));

        let listener = TcpListener::bind(flags.get("listen").unwrap_or("127.0.0.1:0"))
            .map_err(|e| format!("bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        println!("serving {parts} on {addr}");
        if let Some(path) = flags.get("addr-file") {
            write_addr_file(path, &addr.to_string())?;
        }

        // The live-metrics endpoint: binds its own socket, scrapes run on
        // its own thread, the request loop only ever touches histograms.
        let _metrics = match flags.get("metrics-addr") {
            Some(maddr) => {
                let server = tps_serve::start_metrics(maddr, state.clone())
                    .map_err(|e| format!("metrics bind {maddr}: {e}"))?;
                let bound = server.addr();
                println!("metrics on http://{bound}/metrics");
                if let Some(path) = flags.get("metrics-addr-file") {
                    write_addr_file(path, &bound.to_string())?;
                }
                Some(server)
            }
            None => None,
        };

        let trace_path = flags.get("trace");
        if trace_path.is_some() {
            // Start the trace from a clean slate so the file describes this
            // serving session only. Counters are always on; events need the
            // switch.
            tps_obs::reset_events();
            tps_obs::reset_counters();
            tps_obs::set_enabled(true);
        }

        let cfg = ServerConfig {
            cache_capacity: flags.get_or("cache", 4096)?,
            ..ServerConfig::default()
        };
        let handle = ServeHandle::new();
        tps_serve::serve_listener(listener, state.clone(), cfg, &handle)
            .map_err(|e| e.to_string())?;

        if let Some(path) = trace_path {
            tps_obs::set_enabled(false);
            let events = tps_obs::take_events();
            let counters: Vec<(u32, String, u64)> = tps_obs::counters_snapshot()
                .into_iter()
                .map(|(n, v)| (0, n, v))
                .collect();
            let st = state.read().unwrap_or_else(|e| e.into_inner());
            let meta = tps_obs::TraceMeta {
                cmd: "serve".to_string(),
                algo: common.algorithm.clone(),
                k: st.k(),
                alpha: common.alpha,
                vertices: st.num_vertices(),
                edges: st.num_edges(),
            };
            drop(st);
            tps_obs::write_trace(Path::new(path), &meta, &events, &counters)
                .map_err(|e| format!("writing trace {path}: {e}"))?;
            if !quiet {
                eprintln!(
                    "trace: {} events, {} counters -> {path}",
                    events.len(),
                    counters.len()
                );
            }
        }

        let st = state.read().unwrap_or_else(|e| e.into_inner());
        if let Some(path) = flags.get("save-state") {
            let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            st.write_snapshot(&mut f)
                .map_err(|e| format!("{path}: {e}"))?;
            if !quiet {
                eprintln!("note: wrote engine snapshot to {path}");
            }
        }
        let stats = st.stats();
        println!(
            "served {} lookups, {} mutations; staleness {:.4}, epoch {}",
            stats.lookups, stats.updates, stats.staleness, stats.epoch
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Parse `S,D[;S,D…]` into edges.
fn parse_edge_list(spec: &str) -> Result<Vec<Edge>, String> {
    spec.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let (s, d) = pair
                .split_once(',')
                .ok_or_else(|| format!("bad edge {pair:?} (want SRC,DST)"))?;
            let src = s
                .trim()
                .parse()
                .map_err(|_| format!("bad vertex {s:?} in {pair:?}"))?;
            let dst = d
                .trim()
                .parse()
                .map_err(|_| format!("bad vertex {d:?} in {pair:?}"))?;
            Ok(Edge::new(src, dst))
        })
        .collect()
}

/// Read whitespace-separated `src dst` lines (`#` comments allowed).
fn read_edge_file(path: &str) -> Result<Vec<Edge>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut edges = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(s), Some(d), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("{path}:{}: want \"src dst\"", lineno + 1));
        };
        let src = s
            .parse()
            .map_err(|_| format!("{path}:{}: bad vertex {s:?}", lineno + 1))?;
        let dst = d
            .parse()
            .map_err(|_| format!("{path}:{}: bad vertex {d:?}", lineno + 1))?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

/// `tps lookup`
pub fn lookup(args: &[String]) -> i32 {
    let flags = match Flags::parse(
        args,
        &["stats", "shutdown"],
        &[
            "connect",
            "edge",
            "replicas",
            "insert",
            "remove",
            "insert-file",
            "remove-file",
            "verify-parts",
        ],
    ) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let connect = flags.require("connect")?;
        let mut client = ServeClient::connect(connect).map_err(|e| format!("{connect}: {e}"))?;

        if let Some(spec) = flags.get("edge") {
            let edges = parse_edge_list(spec)?;
            let parts = client.lookup_batch(&edges).map_err(|e| e.to_string())?;
            for (e, p) in edges.iter().zip(parts) {
                match p {
                    Some(p) => println!("{},{} -> {p}", e.src, e.dst),
                    None => println!("{},{} -> not found", e.src, e.dst),
                }
            }
        }

        if let Some(spec) = flags.get("replicas") {
            let vertices: Vec<u32> = spec
                .split(',')
                .map(|v| v.trim().parse().map_err(|_| format!("bad vertex {v:?}")))
                .collect::<Result<_, String>>()?;
            let sets = client.replica_sets(&vertices).map_err(|e| e.to_string())?;
            for (v, set) in vertices.iter().zip(sets) {
                let list: Vec<String> = set.iter().map(|p| p.to_string()).collect();
                println!("{v} -> [{}]", list.join(","));
            }
        }

        let mut inserts = Vec::new();
        let mut removes = Vec::new();
        if let Some(spec) = flags.get("insert") {
            inserts.extend(parse_edge_list(spec)?);
        }
        if let Some(path) = flags.get("insert-file") {
            inserts.extend(read_edge_file(path)?);
        }
        if let Some(spec) = flags.get("remove") {
            removes.extend(parse_edge_list(spec)?);
        }
        if let Some(path) = flags.get("remove-file") {
            removes.extend(read_edge_file(path)?);
        }
        if !inserts.is_empty() || !removes.is_empty() {
            let out = client
                .update(&inserts, &removes)
                .map_err(|e| e.to_string())?;
            let ins = out.inserted.iter().filter(|p| p.is_some()).count();
            let rem = out.removed.iter().filter(|p| p.is_some()).count();
            println!(
                "applied {ins}/{} inserts, {rem}/{} removes; staleness {:.4}, epoch {}",
                inserts.len(),
                removes.len(),
                out.staleness,
                out.epoch
            );
        }

        if let Some(dir) = flags.get("verify-parts") {
            let loaded =
                tps_io::load_partition_dir(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
            let mut mismatches = 0u64;
            for chunk in loaded.assignments.chunks(1024) {
                let edges: Vec<Edge> = chunk.iter().map(|&(e, _)| e).collect();
                let got = client.lookup_batch(&edges).map_err(|e| e.to_string())?;
                for (&(e, want), got) in chunk.iter().zip(got) {
                    if got != Some(want) {
                        mismatches += 1;
                        if mismatches <= 5 {
                            eprintln!(
                                "mismatch: {},{} served {:?}, files say {want}",
                                e.src, e.dst, got
                            );
                        }
                    }
                }
            }
            if mismatches > 0 {
                return Err(format!(
                    "{mismatches} of {} served partitions disagree with {dir}",
                    loaded.assignments.len()
                ));
            }
            println!(
                "verified {} edges against {dir}: all match",
                loaded.assignments.len()
            );
        }

        if flags.has("stats") {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!("k: {}", s.k);
            println!("vertices: {}", s.num_vertices);
            println!("edges: {}", s.num_edges);
            println!("replication factor: {:.4}", s.replication_factor);
            println!("staleness: {:.4}", s.staleness);
            println!("epoch: {}", s.epoch);
            let loads: Vec<String> = s.loads.iter().map(|l| l.to_string()).collect();
            println!("loads: [{}]", loads.join(","));
            println!("lookups: {}", s.lookups);
            println!("updates: {}", s.updates);
            println!("cache: {} hits / {} misses", s.cache_hits, s.cache_misses);
            println!("uptime: {:.1} s", s.uptime_secs);
            for (op, l) in [
                ("lookup", &s.lookup_latency),
                ("replicas", &s.replicas_latency),
                ("update", &s.update_latency),
            ] {
                println!(
                    "latency {op}: n={} p50={} p90={} p99={} max={} ns",
                    l.count, l.p50_ns, l.p90_ns, l.p99_ns, l.max_ns
                );
            }
        }

        if flags.has("shutdown") {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon shut down");
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_syntax() {
        assert_eq!(
            parse_edge_list("1,2;3, 4").unwrap(),
            vec![Edge::new(1, 2), Edge::new(3, 4)]
        );
        assert!(parse_edge_list("1").is_err());
        assert!(parse_edge_list("a,b").is_err());
        assert!(parse_edge_list("").unwrap().is_empty());
    }

    #[test]
    fn edge_file_syntax() {
        let dir = std::env::temp_dir().join(format!("tps-serve-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("delta.txt");
        std::fs::write(&path, "# delta\n1 2\n 3 4 # trailing\n\n").unwrap();
        let edges = read_edge_file(path.to_str().unwrap()).unwrap();
        assert_eq!(edges, vec![Edge::new(1, 2), Edge::new(3, 4)]);
        std::fs::write(&path, "1 2 3\n").unwrap();
        assert!(read_edge_file(path.to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
