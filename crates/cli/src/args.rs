//! Minimal flag parsing for the `tps` subcommands (no CLI crate in the
//! offline dependency set), plus the one shared [`CommonOpts`] parser for
//! the flags every partitioning-adjacent subcommand accepts.

use std::collections::HashMap;

use tps_core::job::{ReaderKind, ThreadMode};

/// Parsed `--flag value` pairs plus boolean switches.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `--key value` and `--switch` style arguments.
    ///
    /// `switches` lists the boolean flags, `valued` the value-taking ones;
    /// anything else is rejected by name together with the valid set, so a
    /// typo (`--treads 4`) fails loudly instead of being silently ignored.
    pub fn parse(args: &[String], switches: &[&str], valued: &[&str]) -> Result<Flags, String> {
        let mut out = Flags::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if switches.contains(&name) {
                out.switches.push(name.to_string());
            } else if valued.contains(&name) {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                out.values.insert(name.to_string(), value.clone());
            } else {
                let mut valid: Vec<&str> = switches.iter().chain(valued).copied().collect();
                valid.sort_unstable();
                let valid: Vec<String> = valid.iter().map(|f| format!("--{f}")).collect();
                return Err(format!(
                    "unknown flag --{name} (valid: {})",
                    valid.join(", ")
                ));
            }
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// The flag names [`CommonOpts::from_flags`] consumes — splice into a
/// subcommand's `valued` list so no command re-declares them by hand.
pub const COMMON_VALUED: &[&str] = &[
    "algorithm",
    "alpha",
    "passes",
    "reader",
    "threads",
    "spill-budget-mb",
    "mem-budget-mb",
    "format",
];

/// The typed options shared by every subcommand that runs or configures a
/// partitioning job (`partition`, `dist`, `serve`, `info`): one parser, so
/// defaults and error messages cannot drift between subcommands.
#[derive(Clone, Debug)]
pub struct CommonOpts {
    /// `--algorithm` (default `2ps-l`).
    pub algorithm: String,
    /// `--alpha` balance factor (default 1.05).
    pub alpha: f64,
    /// `--passes` clustering passes (default 1).
    pub passes: u32,
    /// `--reader` backend for file inputs (default buffered).
    pub reader: ReaderKind,
    /// `--threads` execution policy (default auto).
    pub threads: ThreadMode,
    /// `--spill-budget-mb` memory bound (default 0 = unbounded).
    pub spill_budget_mb: u64,
    /// `--mem-budget-mb` whole-job memory budget (default 0 = unbudgeted),
    /// split deterministically across cluster pages / decode cache / spill.
    pub mem_budget_mb: u64,
    /// `--format` input-format override (default: by file extension).
    pub format: Option<String>,
}

impl CommonOpts {
    /// Parse the shared flags out of `flags`.
    pub fn from_flags(flags: &Flags) -> Result<CommonOpts, String> {
        let reader = match flags.get("reader") {
            None => ReaderKind::Buffered,
            Some(name) => name.parse().map_err(|e| format!("--reader: {e}"))?,
        };
        let threads = match flags.get("threads") {
            None => ThreadMode::Auto,
            Some(mode) => mode.parse().map_err(|e| format!("--threads: {e}"))?,
        };
        Ok(CommonOpts {
            algorithm: flags.get("algorithm").unwrap_or("2ps-l").to_string(),
            alpha: flags.get_or("alpha", 1.05)?,
            passes: flags.get_or("passes", 1)?,
            reader,
            threads,
            spill_budget_mb: flags.get_or("spill-budget-mb", 0)?,
            mem_budget_mb: flags.get_or("mem-budget-mb", 0)?,
            format: flags.get("format").map(String::from),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &argv(&["--input", "g.bel", "--quiet"]),
            &["quiet"],
            &["input"],
        )
        .unwrap();
        assert_eq!(f.require("input").unwrap(), "g.bel");
        assert!(f.has("quiet"));
        assert!(!f.has("other"));
    }

    #[test]
    fn missing_value_is_error() {
        let err = Flags::parse(&argv(&["--input"]), &[], &["input"]).unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn positional_rejected() {
        assert!(Flags::parse(&argv(&["oops"]), &[], &[]).is_err());
    }

    #[test]
    fn unknown_flag_names_itself_and_the_valid_set() {
        let err =
            Flags::parse(&argv(&["--treads", "4"]), &["quiet"], &["input", "threads"]).unwrap_err();
        assert!(err.contains("--treads"), "{err}");
        assert!(err.contains("--input"), "{err}");
        assert!(err.contains("--quiet"), "{err}");
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn typed_defaults() {
        let f = Flags::parse(&argv(&["--k", "32"]), &[], &["k"]).unwrap();
        assert_eq!(f.get_or("k", 4u32).unwrap(), 32);
        assert_eq!(f.get_or("alpha", 1.05f64).unwrap(), 1.05);
        assert!(f.get_or::<u32>("k-bad", 1).is_ok());
    }

    #[test]
    fn unparsable_value_is_error() {
        let f = Flags::parse(&argv(&["--k", "many"]), &[], &["k"]).unwrap();
        assert!(f.get_or::<u32>("k", 1).is_err());
    }

    #[test]
    fn common_opts_defaults_and_parsing() {
        let f = Flags::parse(&argv(&[]), &[], COMMON_VALUED).unwrap();
        let c = CommonOpts::from_flags(&f).unwrap();
        assert_eq!(c.algorithm, "2ps-l");
        assert_eq!(c.alpha, 1.05);
        assert_eq!(c.passes, 1);
        assert_eq!(c.reader, ReaderKind::Buffered);
        assert_eq!(c.threads, ThreadMode::Auto);
        assert_eq!(c.spill_budget_mb, 0);
        assert_eq!(c.mem_budget_mb, 0);
        assert_eq!(c.format, None);

        let f = Flags::parse(
            &argv(&[
                "--reader",
                "mmap",
                "--threads",
                "serial",
                "--alpha",
                "1.2",
                "--passes",
                "3",
                "--algorithm",
                "2ps-hdrf",
                "--spill-budget-mb",
                "64",
                "--mem-budget-mb",
                "256",
                "--format",
                "text",
            ]),
            &[],
            COMMON_VALUED,
        )
        .unwrap();
        let c = CommonOpts::from_flags(&f).unwrap();
        assert_eq!(c.reader, ReaderKind::Mmap);
        assert_eq!(c.threads, ThreadMode::Serial);
        assert_eq!(c.alpha, 1.2);
        assert_eq!(c.passes, 3);
        assert_eq!(c.algorithm, "2ps-hdrf");
        assert_eq!(c.spill_budget_mb, 64);
        assert_eq!(c.mem_budget_mb, 256);
        assert_eq!(c.format.as_deref(), Some("text"));

        let f = Flags::parse(&argv(&["--reader", "floppy"]), &[], COMMON_VALUED).unwrap();
        let err = CommonOpts::from_flags(&f).unwrap_err();
        assert!(err.contains("--reader"), "{err}");
        let f = Flags::parse(&argv(&["--threads", "zero"]), &[], COMMON_VALUED).unwrap();
        assert!(CommonOpts::from_flags(&f).is_err());
    }
}
