//! Minimal flag parsing for the `tps` subcommands (no CLI crate in the
//! offline dependency set).

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus boolean switches.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `--key value` and `--switch` style arguments.
    pub fn parse(args: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut out = Flags::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if switches.contains(&name) {
                out.switches.push(name.to_string());
            } else {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                out.values.insert(name.to_string(), value.clone());
            }
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(&argv(&["--input", "g.bel", "--quiet"]), &["quiet"]).unwrap();
        assert_eq!(f.require("input").unwrap(), "g.bel");
        assert!(f.has("quiet"));
        assert!(!f.has("other"));
    }

    #[test]
    fn missing_value_is_error() {
        let err = Flags::parse(&argv(&["--input"]), &[]).unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn positional_rejected() {
        assert!(Flags::parse(&argv(&["oops"]), &[]).is_err());
    }

    #[test]
    fn typed_defaults() {
        let f = Flags::parse(&argv(&["--k", "32"]), &[]).unwrap();
        assert_eq!(f.get_or("k", 4u32).unwrap(), 32);
        assert_eq!(f.get_or("alpha", 1.05f64).unwrap(), 1.05);
        assert!(f.get_or::<u32>("k-bad", 1).is_ok());
    }

    #[test]
    fn unparsable_value_is_error() {
        let f = Flags::parse(&argv(&["--k", "many"]), &[]).unwrap();
        assert!(f.get_or::<u32>("k", 1).is_err());
    }
}
