//! Implementations of the `tps` subcommands.

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tps_baselines::{
    AdwisePartitioner, DbhPartitioner, DnePartitioner, GreedyPartitioner, GridPartitioner,
    HdrfPartitioner, HepPartitioner, MultilevelPartitioner, NePartitioner, RandomPartitioner,
    SnePartitioner,
};
use tps_core::parallel::ParallelRunner;
use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::{AssignmentSink, FileSink, QualitySink, TeeSink};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::write_binary_edge_list;
use tps_graph::formats::text::TextEdgeFile;
use tps_graph::ranged::RangedEdgeSource;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::GraphInfo;
use tps_io::{EdgeFileFormat, ReaderBackend, SpillSpoolFactory, SpillingFileSink};

use crate::args::Flags;

/// Top-level usage text.
pub const USAGE: &str = "\
tps — out-of-core edge partitioning (2PS-L, ICDE 2022) and friends

USAGE:
  tps partition --input FILE -k N [options]   partition an edge list
  tps dist coordinator --input FILE --k N --workers N [options]
                                              distributed partition (coordinator)
  tps dist worker --connect HOST:PORT         distributed partition (worker)
  tps generate  --dataset NAME --out FILE     write a synthetic dataset
  tps convert   --input FILE --out FILE       convert between .bel v1 and v2
  tps info      --input FILE                  print graph statistics
  tps profile   --path FILE                   measure sequential read speed
  tps help                                    show this text

partition options:
  --input FILE        binary (.bel / TPSBEL2) or text edge list
  --format bel|text   input format (default: by file extension)
  --reader NAME       buffered | mmap | prefetch   (default: buffered)
  --k N               number of partitions (required; also -k via --k)
  --algorithm NAME    2ps-l | 2ps-hdrf | hdrf | dbh | grid | random | greedy |
                      adwise | ne | sne | dne | hep-1 | hep-10 | hep-100 |
                      multilevel            (default: 2ps-l)
  --alpha F           balance factor (default 1.05)
  --passes N          clustering passes for 2ps-l/2ps-hdrf (default 1)
  --threads N|auto|serial
                      chunk-parallel 2ps-l/2ps-hdrf execution over N worker
                      threads (default: auto = available parallelism; serial
                      forces the single-cursor serial runner; binary inputs
                      only — text inputs and other algorithms always run
                      serial). Results are deterministic for a fixed N; N=1
                      matches the serial runner bit for bit. Pin N for
                      output that is reproducible across machines.
  --out DIR           write per-partition .bel files into DIR
  --spill-budget-mb N bound buffering to N MiB: output files spill through
                      the spilling sink, and parallel replay runs spill
                      through disk-backed spools (parallel stays parallel)
  --quiet             only print the metrics line

dist coordinator options (2ps-l / 2ps-hdrf on binary inputs):
  --input FILE        v1/v2 edge file on a filesystem all workers share
  --k N               number of partitions (required)
  --workers N         worker connections to wait for (default 2)
  --listen ADDR       bind address (default 127.0.0.1:0 = ephemeral port)
  --dist-local        spawn the N worker processes locally itself
  --alpha/--passes/--algorithm/--reader/--out/--spill-budget-mb/--quiet
                      as for tps partition; --reader selects the backend
                      each worker opens its shard with. Output is
                      bit-identical to `tps partition --threads N` for the
                      same worker count.

dist worker options:
  --connect HOST:PORT coordinator address (retries for ~5 s)
  --spill-budget-mb N bound this worker's replay run memory

generate options:
  --dataset NAME      ok|it|tw|fr|uk|gsh|wdc|wi
  --scale F           size factor (default 1.0)
  --out FILE          output .bel path

convert options:
  --input FILE        source edge list (v1 or v2, auto-detected)
  --out FILE          destination path
  --to v1|v2          target format (default: the other one)
  --chunk-edges N     v2 edges per chunk (default 65536)

info options:
  --input FILE        binary (v1/v2) or text edge list
  --reader NAME       buffered | mmap | prefetch   (default: buffered)

profile options:
  --path FILE         file to read
  --block-size N      read block bytes (default 100 MiB, fio-style)
";

/// Resolve the input format: the `--format` flag, else the file extension.
fn resolve_format(path: &str, format: Option<&str>) -> String {
    match format {
        Some(f) => f.to_string(),
        None => Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("bel")
            .to_string(),
    }
}

/// Whether `fmt` names the binary container (v1/v2 — the chunk-parallel
/// runner and reader backends apply to these only).
fn is_binary_format(fmt: &str) -> bool {
    matches!(fmt, "bel" | "bel2" | "v2")
}

fn open_stream(
    path: &str,
    format: Option<&str>,
    reader: ReaderBackend,
) -> Result<Box<dyn EdgeStream>, String> {
    let fmt = resolve_format(path, format);
    match fmt.as_str() {
        // v1 and v2 binary files are auto-detected by magic; the reader
        // backend (buffered / mmap / prefetch) applies to both.
        _ if is_binary_format(&fmt) => {
            tps_io::open_edge_stream(path, reader).map_err(|e| format!("{path}: {e}"))
        }
        "text" | "txt" | "el" | "edges" => Ok(Box::new(
            TextEdgeFile::open(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        other => Err(format!("unknown format {other:?} (use bel or text)")),
    }
}

fn parse_reader(flags: &Flags) -> Result<ReaderBackend, String> {
    match flags.get("reader") {
        None => Ok(ReaderBackend::Buffered),
        Some(name) => name.parse(),
    }
}

fn make_partitioner(name: &str, passes: u32) -> Result<Box<dyn Partitioner>, String> {
    // Two-phase algorithms resolve through the same alias table the
    // chunk-parallel path uses, so serial and parallel configs cannot drift.
    if let Some(cfg) = two_phase_config(name, passes) {
        return Ok(Box::new(TwoPhasePartitioner::new(cfg)));
    }
    Ok(match name.to_ascii_lowercase().as_str() {
        "hdrf" => Box::new(HdrfPartitioner::default()),
        "dbh" => Box::new(DbhPartitioner::default()),
        "grid" => Box::new(GridPartitioner::default()),
        "random" => Box::new(RandomPartitioner::default()),
        "greedy" => Box::new(GreedyPartitioner),
        "adwise" => Box::new(AdwisePartitioner::default()),
        "ne" => Box::new(NePartitioner),
        "sne" => Box::new(SnePartitioner::default()),
        "dne" => Box::new(DnePartitioner::default()),
        "hep-1" => Box::new(HepPartitioner::with_tau(1.0)),
        "hep-10" => Box::new(HepPartitioner::with_tau(10.0)),
        "hep-100" => Box::new(HepPartitioner::with_tau(100.0)),
        "multilevel" | "metis" => Box::new(MultilevelPartitioner::default()),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// How `--threads` was resolved.
enum ThreadsChoice {
    /// Default: one worker per available core (chunk-parallel runner).
    Auto,
    /// Force the single-cursor serial runner.
    Serial,
    /// An explicit worker count for the chunk-parallel runner.
    Count(usize),
}

fn parse_threads(flags: &Flags) -> Result<ThreadsChoice, String> {
    match flags.get("threads") {
        None => Ok(ThreadsChoice::Auto),
        Some("auto") => Ok(ThreadsChoice::Auto),
        Some("serial") => Ok(ThreadsChoice::Serial),
        Some(n) => match n.parse::<usize>() {
            Ok(t) if t >= 1 => Ok(ThreadsChoice::Count(t)),
            _ => Err(format!("--threads: expected auto|serial|N>=1, got {n:?}")),
        },
    }
}

/// The two-phase config for `algo`, if `algo` is a two-phase algorithm (the
/// only family the chunk-parallel runner executes).
fn two_phase_config(algo: &str, passes: u32) -> Option<TwoPhaseConfig> {
    match algo.to_ascii_lowercase().as_str() {
        "2ps-l" | "2psl" | "2ps" => Some(TwoPhaseConfig {
            clustering_passes: passes,
            ..TwoPhaseConfig::default()
        }),
        "2ps-hdrf" => Some(TwoPhaseConfig {
            clustering_passes: passes,
            ..TwoPhaseConfig::hdrf_variant()
        }),
        _ => None,
    }
}

/// The resolved execution plan for `tps partition` / `tps dist coordinator`.
enum Exec {
    Serial(Box<dyn Partitioner>, Box<dyn EdgeStream>),
    Parallel(ParallelRunner, Box<dyn RangedEdgeSource>),
    /// Coordinate a distributed job over connected worker transports.
    Dist {
        config: TwoPhaseConfig,
        transports: Vec<Box<dyn tps_dist::Transport>>,
        info: GraphInfo,
        input: tps_dist::InputDescriptor,
    },
}

impl Exec {
    fn name(&self) -> String {
        match self {
            Exec::Serial(p, _) => p.name(),
            Exec::Parallel(r, _) => r.name(),
            Exec::Dist {
                config, transports, ..
            } => {
                let base = match config.strategy {
                    tps_core::two_phase::RemainingStrategy::TwoChoice => "2PS-L",
                    tps_core::two_phase::RemainingStrategy::Hdrf(_) => "2PS-HDRF",
                };
                format!("{base}×{}w", transports.len())
            }
        }
    }

    fn info(&mut self) -> Result<GraphInfo, String> {
        match self {
            Exec::Serial(_, stream) => discover_info(stream).map_err(|e| e.to_string()),
            Exec::Parallel(_, source) => Ok(source.info()),
            Exec::Dist { info, .. } => Ok(*info),
        }
    }

    fn run(
        &mut self,
        params: &PartitionParams,
        sink: &mut dyn AssignmentSink,
    ) -> Result<RunReport, String> {
        match self {
            Exec::Serial(p, stream) => p.partition(stream, params, sink).map_err(|e| e.to_string()),
            Exec::Parallel(r, source) => r
                .partition(&**source, params, sink)
                .map_err(|e| e.to_string()),
            Exec::Dist {
                config,
                transports,
                info,
                input,
            } => tps_dist::run_coordinator(config, params, *info, input, transports, sink)
                .map_err(|e| e.to_string()),
        }
    }
}

/// Resolve the execution plan: chunk-parallel for two-phase algorithms on
/// binary inputs (unless `--threads serial`), serial otherwise.
fn resolve_exec(flags: &Flags, input: &str, algo: &str, passes: u32) -> Result<Exec, String> {
    let reader = parse_reader(flags)?;
    let choice = parse_threads(flags)?;
    let quiet = flags.has("quiet");
    let note = |msg: &str| {
        if !quiet {
            eprintln!("note: {msg}");
        }
    };
    let binary_input = is_binary_format(&resolve_format(input, flags.get("format")));
    let cfg = two_phase_config(algo, passes);

    // Work out whether this invocation can run chunk-parallel at all, so
    // every note below describes what *this* command would actually do.
    let serial_reason = match (&cfg, binary_input) {
        (None, _) => Some("--threads applies to 2ps-l/2ps-hdrf only; running serial"),
        (Some(_), false) => Some("--threads applies to binary inputs only; running serial"),
        (Some(_), true) => None,
    };
    let requested = match choice {
        ThreadsChoice::Serial => None,
        ThreadsChoice::Count(n) => Some(n),
        ThreadsChoice::Auto => Some(0),
    };

    match (requested, serial_reason) {
        (Some(threads), None) => {
            let cfg = cfg.expect("serial_reason is None only with a config");
            let mut runner = ParallelRunner::new(cfg, threads);
            if matches!(choice, ThreadsChoice::Auto) && runner.threads() > 1 {
                note(&format!(
                    "running chunk-parallel on {} threads (deterministic per thread \
                     count; --threads serial for the paper-exact serial runner)",
                    runner.threads()
                ));
            }
            // Workers buffer their assignments until the emit barrier; a
            // spill budget bounds those replay runs through disk-backed
            // spools instead of dropping to the serial runner.
            let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
            if spill_budget > 0 {
                let factory = SpillSpoolFactory::new(
                    &std::env::temp_dir(),
                    &format!("tps-par-{}", std::process::id()),
                    spill_budget << 20,
                    runner.threads(),
                )
                .map_err(|e| e.to_string())?;
                runner = runner.with_spool_factory(Arc::new(factory));
                note("--spill-budget-mb bounds parallel replay runs via spill-backed spools");
            }
            // The parallel runner opens its own per-worker cursors: mmap
            // serves zero-copy range cursors over one shared mapping, the
            // prefetch backend maps to per-worker prefetch threads.
            let source =
                tps_io::open_ranged_backend(input, reader).map_err(|e| format!("{input}: {e}"))?;
            Ok(Exec::Parallel(runner, source))
        }
        (_, serial_reason) => {
            if let (Some(reason), true) = (
                serial_reason,
                matches!(choice, ThreadsChoice::Count(n) if n > 1),
            ) {
                note(reason);
            }
            let stream = open_stream(input, flags.get("format"), reader)?;
            Ok(Exec::Serial(make_partitioner(algo, passes)?, stream))
        }
    }
}

/// `tps partition`
pub fn partition(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["quiet"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let input = flags.require("input")?;
        let k: u32 = flags.get_or("k", 0)?;
        if k == 0 {
            return Err("--k is required and must be >= 1".into());
        }
        let alpha: f64 = flags.get_or("alpha", 1.05)?;
        let passes: u32 = flags.get_or("passes", 1)?;
        let algo = flags.get("algorithm").unwrap_or("2ps-l");
        let exec = resolve_exec(&flags, input, algo, passes)?;
        execute_and_report(&flags, exec, input, k, alpha)
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Run a resolved execution plan and print metrics/outputs — shared by
/// `tps partition` and `tps dist coordinator`.
fn execute_and_report(
    flags: &Flags,
    mut exec: Exec,
    input: &str,
    k: u32,
    alpha: f64,
) -> Result<(), String> {
    {
        let info = exec.info()?;

        let params = PartitionParams::with_alpha(k, alpha);
        let mut quality = QualitySink::new(info.num_vertices, k);
        let start = std::time::Instant::now();
        let report = match flags.get("out") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
                let stem = Path::new(input)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("graph");
                let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
                // The partition call is identical for both sinks; only the
                // sink construction and finish differ.
                let mut partition_into = |quality: &mut QualitySink,
                                          files: &mut dyn AssignmentSink|
                 -> Result<RunReport, String> {
                    let mut tee = TeeSink::new(quality, files);
                    exec.run(&params, &mut tee)
                };
                let (report, parts) = if spill_budget > 0 {
                    // Memory-bounded output: per-partition buffers spill to
                    // disk in large sequential writes (tps-io).
                    let mut files = SpillingFileSink::create(
                        &dir,
                        stem,
                        k,
                        info.num_vertices,
                        spill_budget << 20,
                    )
                    .map_err(|e| e.to_string())?;
                    let report = partition_into(&mut quality, &mut files)?;
                    let (parts, stats) = files.finish().map_err(|e| e.to_string())?;
                    if !flags.has("quiet") {
                        eprintln!(
                            "spill stats: {} spills, peak {} buffered bytes, {} written",
                            stats.spills, stats.peak_buffered_bytes, stats.bytes_written
                        );
                    }
                    (report, parts)
                } else {
                    let mut files = FileSink::create(&dir, stem, k, info.num_vertices)
                        .map_err(|e| e.to_string())?;
                    let report = partition_into(&mut quality, &mut files)?;
                    (report, files.finish().map_err(|e| e.to_string())?)
                };
                if !flags.has("quiet") {
                    for (path, count) in parts {
                        eprintln!("wrote {} ({count} edges)", path.display());
                    }
                }
                report
            }
            None => exec.run(&params, &mut quality)?,
        };
        let elapsed = start.elapsed();
        let metrics = quality.finish();
        println!(
            "algorithm={} k={k} edges={} rf={:.4} alpha={:.4} time_s={:.3}",
            exec.name(),
            metrics.num_edges,
            metrics.replication_factor,
            metrics.alpha,
            elapsed.as_secs_f64()
        );
        if !flags.has("quiet") {
            for (name, d) in report.phases.phases() {
                eprintln!("phase {name}: {:.3} s", d.as_secs_f64());
            }
            for (name, v) in &report.counters {
                eprintln!("counter {name}: {v}");
            }
        }
        Ok(())
    }
}

/// `tps dist` — distributed coordinator/worker execution.
pub fn dist(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("coordinator") => dist_coordinator(&args[1..]),
        Some("worker") => dist_worker(&args[1..]),
        _ => fail("usage: tps dist coordinator|worker [options] (see tps help)"),
    }
}

fn dist_coordinator(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["quiet", "dist-local"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let input = flags.require("input")?;
        let k: u32 = flags.get_or("k", 0)?;
        if k == 0 {
            return Err("--k is required and must be >= 1".into());
        }
        let alpha: f64 = flags.get_or("alpha", 1.05)?;
        let passes: u32 = flags.get_or("passes", 1)?;
        let algo = flags.get("algorithm").unwrap_or("2ps-l");
        let config = two_phase_config(algo, passes)
            .ok_or_else(|| format!("tps dist runs 2ps-l / 2ps-hdrf only, not {algo:?}"))?;
        let workers: usize = flags.get_or("workers", 2)?;
        if workers == 0 {
            return Err("--workers must be >= 1".into());
        }
        let reader = parse_reader(&flags)?;
        let quiet = flags.has("quiet");

        // Workers resolve the path themselves, so ship it absolute.
        let abs = std::fs::canonicalize(input).map_err(|e| format!("{input}: {e}"))?;
        let info = tps_io::open_ranged(&abs)
            .map_err(|e| format!("{input}: {e}"))?
            .info();

        let listener = TcpListener::bind(flags.get("listen").unwrap_or("127.0.0.1:0"))
            .map_err(|e| format!("bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        if !quiet {
            eprintln!("note: coordinator listening on {addr}, waiting for {workers} worker(s)");
        }

        let mut children = Vec::new();
        if flags.has("dist-local") {
            let exe = std::env::current_exe().map_err(|e| e.to_string())?;
            // Memory-bound flags apply per worker too: forward the spill
            // budget so spawned workers use spill-backed replay spools.
            let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
            for _ in 0..workers {
                let mut cmd = std::process::Command::new(&exe);
                cmd.args(["dist", "worker", "--connect"])
                    .arg(addr.to_string());
                if spill_budget > 0 {
                    cmd.args(["--spill-budget-mb", &spill_budget.to_string()]);
                }
                children.push(cmd.spawn().map_err(|e| format!("spawning worker: {e}"))?);
            }
        }

        let accept = || -> Result<Vec<Box<dyn tps_dist::Transport>>, String> {
            let mut transports: Vec<Box<dyn tps_dist::Transport>> = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (stream, peer) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                if !quiet {
                    eprintln!("note: worker connected from {peer}");
                }
                transports.push(Box::new(
                    tps_dist::TcpTransport::new(stream).map_err(|e| e.to_string())?,
                ));
            }
            Ok(transports)
        };
        let result = accept().and_then(|transports| {
            let exec = Exec::Dist {
                config,
                transports,
                info,
                input: tps_dist::InputDescriptor::Path {
                    path: abs.to_string_lossy().into_owned(),
                    reader,
                },
            };
            execute_and_report(&flags, exec, input, k, alpha)
        });
        // Always reap spawned workers, even on failure (a coordinator error
        // aborts them over the wire, so wait() terminates promptly).
        for mut child in children {
            let _ = child.wait();
        }
        result
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

fn dist_worker(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["quiet"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let connect = flags.require("connect")?;
        let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
        // The coordinator may still be binding (or, with --dist-local, is
        // our parent racing us) — retry for ~5 s before giving up.
        let mut stream = None;
        for attempt in 0..50 {
            match TcpStream::connect(connect) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) if attempt == 49 => return Err(format!("{connect}: {e}")),
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
            }
        }
        let mut transport = tps_dist::TcpTransport::new(stream.expect("connected or errored"))
            .map_err(|e| e.to_string())?;
        let spools: Box<dyn tps_core::sink::SpoolFactory> = if spill_budget > 0 {
            Box::new(
                SpillSpoolFactory::new(
                    &std::env::temp_dir(),
                    &format!("tps-dist-{}", std::process::id()),
                    spill_budget << 20,
                    1,
                )
                .map_err(|e| e.to_string())?,
            )
        } else {
            Box::new(tps_core::sink::MemorySpoolFactory)
        };
        tps_dist::run_worker(&mut transport, &tps_dist::PathResolver, &*spools)
            .map_err(|e| e.to_string())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps generate`
pub fn generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let name = flags.require("dataset")?;
        let scale: f64 = flags.get_or("scale", 1.0)?;
        let out = flags.require("out")?;
        let ds = Dataset::ALL
            .into_iter()
            .find(|d| d.abbrev().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown dataset {name:?} (ok|it|tw|fr|uk|gsh|wdc|wi)"))?;
        let graph = ds.generate_scaled(scale);
        let info = write_binary_edge_list(out, graph.num_vertices(), graph.edges().iter().copied())
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {out}: {} vertices, {} edges ({} stand-in at scale {scale})",
            info.num_vertices,
            info.num_edges,
            ds.full_name()
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps convert`
pub fn convert(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let input = flags.require("input")?;
        let out = flags.require("out")?;
        let chunk_edges: u32 = flags.get_or("chunk-edges", tps_io::v2::DEFAULT_CHUNK_EDGES)?;
        if chunk_edges == 0 {
            return Err("--chunk-edges must be >= 1".into());
        }
        // Creating the output truncates it; refuse to clobber the input
        // (same path, possibly via a symlink or a relative spelling).
        if let Ok(canon_in) = std::fs::canonicalize(input) {
            if let Ok(canon_out) = std::fs::canonicalize(out) {
                if canon_in == canon_out {
                    return Err(format!("--out must differ from --input ({input})"));
                }
            }
        }
        let from = tps_io::detect_format(input).map_err(|e| format!("{input}: {e}"))?;
        let to = match (flags.get("to"), from) {
            (Some("v1"), _) => EdgeFileFormat::V1,
            (Some("v2"), _) => EdgeFileFormat::V2,
            (Some(other), _) => return Err(format!("unknown target format {other:?} (v1|v2)")),
            (None, EdgeFileFormat::V1) => EdgeFileFormat::V2,
            (None, EdgeFileFormat::V2) => EdgeFileFormat::V1,
        };
        let info = match (from, to) {
            (EdgeFileFormat::V1, EdgeFileFormat::V2) => {
                tps_io::convert_v1_to_v2(input, out, chunk_edges).map_err(|e| e.to_string())?
            }
            (EdgeFileFormat::V2, EdgeFileFormat::V1) => {
                tps_io::convert_v2_to_v1(input, out).map_err(|e| e.to_string())?
            }
            _ => return Err(format!("{input} is already {to:?}")),
        };
        let in_bytes = std::fs::metadata(input).map_err(|e| e.to_string())?.len();
        let out_bytes = std::fs::metadata(out).map_err(|e| e.to_string())?.len();
        println!(
            "converted {input} ({from:?}, {in_bytes} B) -> {out} ({to:?}, {out_bytes} B, {:.1}% of input): {} vertices, {} edges",
            100.0 * out_bytes as f64 / in_bytes.max(1) as f64,
            info.num_vertices,
            info.num_edges,
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps info`
pub fn info(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let input = flags.require("input")?;
        let reader = parse_reader(&flags)?;
        let mut stream = open_stream(input, flags.get("format"), reader)?;
        let info = discover_info(&mut stream).map_err(|e| e.to_string())?;
        // One more pass for degree statistics.
        let degrees = tps_graph::degree::DegreeTable::compute(&mut stream, info.num_vertices)
            .map_err(|e| e.to_string())?;
        println!("file: {input}");
        println!("vertices: {}", info.num_vertices);
        println!("edges: {}", info.num_edges);
        println!("mean degree: {:.2}", info.mean_degree());
        println!("max degree: {}", degrees.max_degree());
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps profile`
pub fn profile(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let path = flags.require("path")?;
        let block: usize = flags.get_or("block-size", 100 << 20)?;
        let p = tps_storage::profile_sequential_read(Path::new(path), block)
            .map_err(|e| e.to_string())?;
        println!(
            "read {} bytes in {:.3} s -> {:.1} MB/s",
            p.bytes,
            p.seconds,
            p.bandwidth() / 1e6
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}
