//! Implementations of the `tps` subcommands.

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};

use tps_baselines::{
    AdwisePartitioner, DbhPartitioner, DnePartitioner, GreedyPartitioner, GridPartitioner,
    HdrfPartitioner, HepPartitioner, MultilevelPartitioner, NePartitioner, RandomPartitioner,
    SnePartitioner,
};
use tps_core::job::{ExecPlan, JobSpec, ThreadMode};
use tps_core::partitioner::{PartitionParams, Partitioner, RunReport};
use tps_core::sink::{AssignmentSink, FileSink, QualitySink, TeeSink};
use tps_core::two_phase::{TwoPhaseConfig, TwoPhasePartitioner};
use tps_core::RunOutcome;
use tps_graph::datasets::Dataset;
use tps_graph::formats::binary::write_binary_edge_list;
use tps_graph::formats::text::TextEdgeFile;
use tps_graph::stream::{discover_info, EdgeStream};
use tps_graph::types::GraphInfo;
use tps_io::{EdgeFileFormat, ReaderBackend, SpillSpoolFactory, SpillingFileSink};

use crate::args::{CommonOpts, Flags, COMMON_VALUED};

/// Top-level usage text.
pub const USAGE: &str = "\
tps — out-of-core edge partitioning (2PS-L, ICDE 2022) and friends

USAGE:
  tps partition --input FILE -k N [options]   partition an edge list
  tps dist coordinator --input FILE --k N --workers N [options]
                                              distributed partition (coordinator)
  tps dist worker --connect HOST:PORT         distributed partition (worker)
  tps serve     --parts DIR [options]         serve a finished partitioning
  tps lookup    --connect HOST:PORT [options] query / update a running daemon
  tps top       HOST:PORT [options]           live dashboard over a metrics endpoint
  tps generate  --dataset NAME --out FILE     write a synthetic dataset
  tps convert   --input FILE --out FILE       convert between .bel v1 and v2
  tps info      --input FILE                  print graph statistics
  tps profile   --path FILE                   measure sequential read speed
  tps report    TRACE.jsonl                   render a trace file's run report
  tps help                                    show this text

partition options:
  --input FILE        binary (.bel / TPSBEL2) or text edge list
  --format bel|text   input format (default: by file extension)
  --reader NAME       buffered | mmap | prefetch   (default: buffered)
  --k N               number of partitions (required; also -k via --k)
  --algorithm NAME    2ps-l | 2ps-hdrf | hdrf | dbh | grid | random | greedy |
                      adwise | ne | sne | dne | hep-1 | hep-10 | hep-100 |
                      multilevel            (default: 2ps-l)
  --alpha F           balance factor (default 1.05)
  --passes N          clustering passes for 2ps-l/2ps-hdrf (default 1)
  --threads N|auto|serial
                      chunk-parallel 2ps-l/2ps-hdrf execution over N worker
                      threads (default: auto = available parallelism; serial
                      forces the single-cursor serial runner; binary inputs
                      only — text inputs and other algorithms always run
                      serial). Results are deterministic for a fixed N; N=1
                      matches the serial runner bit for bit. Pin N for
                      output that is reproducible across machines.
  --out DIR           write per-partition .bel files into DIR
  --spill-budget-mb N bound buffering to N MiB: output files spill through
                      the spilling sink, and parallel replay runs spill
                      through disk-backed spools (parallel stays parallel)
  --mem-budget-mb N   whole-job memory budget, split deterministically:
                      half pages cluster state out of core (serial runs),
                      a quarter caps the v2 decode cache, the rest bounds
                      spill buffering (unless --spill-budget-mb is given).
                      Output is bit-identical at every budget; see the
                      README `Memory model` section
  --trace FILE        record a structured trace (JSON lines: phase spans,
                      counters) to FILE; `tps report FILE` renders it.
                      Tracing never changes partitioning output.
  --quiet             only print the metrics line

dist coordinator options (2ps-l / 2ps-hdrf on binary inputs):
  --input FILE        v1/v2 edge file on a filesystem all workers share
  --k N               number of partitions (required)
  --workers N         shards = worker connections to wait for (default 2)
  --standby N         extra idle worker connections to accept up-front;
                      failed shards are re-issued to them first (default 0)
  --max-retries N     shard re-issues allowed across the job before the
                      run fails (default 2; 0 = fail on first worker loss)
  --frame-timeout-ms N
                      presume a worker dead when one frame takes longer
                      than this to arrive (default 0 = wait forever)
  --listen ADDR       bind address (default 127.0.0.1:0 = ephemeral port)
  --metrics-addr ADDR serve live metrics scrapes (per-shard stage gauges,
                      worker liveness, fault counters, frame byte rates)
                      over HTTP on ADDR; `tps top ADDR` renders them
  --metrics-addr-file FILE
                      write the bound metrics address to FILE (atomic;
                      scripts poll for it)
  --dist-local        spawn the worker processes locally itself, and
                      respawn clean replacements on worker failure
  --kill-worker I / --kill-at SPEC
                      fault injection (--dist-local only): worker I dies at
                      SPEC = recv:TAG[:N] | send:TAG[:N] | frames:N
                      (the CI dist-chaos job drives this)
  --alpha/--passes/--algorithm/--reader/--out/--spill-budget-mb/
  --mem-budget-mb/
  --trace/--quiet     as for tps partition; --reader selects the backend
                      each worker opens its shard with; --mem-budget-mb is
                      forwarded in the Job frame so every worker caps its
                      v2 decode cache at the budget's decode share. With --trace,
                      workers record their shard phases too and ship them
                      in the ShardDone barrier frame, so the one trace
                      file covers the whole cluster. Output is
                      bit-identical to `tps partition --threads N` for the
                      same worker count, even across worker failures.

dist worker options:
  --connect HOST:PORT coordinator address (retries for ~5 s)
  --reconnect N       on failure, reconnect to the coordinator up to N
                      times (handshakes with Rejoin; default 0)
  --kill-at SPEC      fault injection: die at the given protocol point
  --spill-budget-mb N bound this worker's replay run memory

serve options (the online serving daemon — see crates/serve/README.md):
  --parts DIR         a tps partition --out directory of <stem>.part<i>.bel
                      files (required); loaded once into a packed lookup
                      table and adopted by the incremental write path
  --listen ADDR       bind address (default 127.0.0.1:0 = ephemeral port)
  --addr-file FILE    write the bound address to FILE once listening
                      (written atomically; scripts poll for it)
  --metrics-addr ADDR serve live metrics scrapes over HTTP on ADDR:
                      per-op latency/batch histograms with p50/p90/p99,
                      staleness/overlay/cache/epoch gauges, all counters.
                      Recording costs a few relaxed atomic ops per op and
                      never changes served answers
  --metrics-addr-file FILE
                      write the bound metrics address to FILE (atomic)
  --trace FILE        record a structured trace of the serving session
                      (per-op phase spans, delta/compaction marks) to
                      FILE on shutdown; `tps report FILE` renders it
  --state FILE        restore the write-path engine from a snapshot
                      written by --save-state (the packed table still
                      comes from --parts)
  --save-state FILE   write an engine snapshot to FILE on shutdown
  --cache N           per-connection replica-set LRU entries (default
                      4096; 0 disables)
  --headroom F        extra insert capacity multiplier over --alpha
                      (default 1.2)
  --alpha/--passes/--algorithm
                      scoring knobs for streamed insertions (2ps-l /
                      2ps-hdrf only)
  --quiet             only print the listening line

lookup options (client for a running tps serve):
  --connect HOST:PORT daemon address (required)
  --edge S,D[;S,D…]   look up edge partitions, one line per edge
  --replicas V[,V…]   print each vertex's replica set
  --insert S,D[;…]    stream edge insertions (before removals)
  --remove S,D[;…]    stream edge removals
  --insert-file FILE / --remove-file FILE
                      whitespace-separated \"src dst\" lines; # comments
  --verify-parts DIR  re-read a --out directory and assert every edge's
                      served partition matches the files bit for bit
  --stats             print a server statistics snapshot (incl. uptime and
                      per-op latency quantiles; protocol v2)
  --shutdown          ask the daemon to exit (runs last)

top options (dashboard over a serve/dist --metrics-addr endpoint):
  tps top HOST:PORT [--interval-ms N] [--samples N] [--once]
                      poll every N ms (default 1000) and redraw in place;
                      --once prints one frame and exits, --samples N stops
                      after N frames (0 = run until ^C)

generate options:
  --dataset NAME      ok|it|tw|fr|uk|gsh|wdc|wi
  --scale F           size factor (default 1.0)
  --out FILE          output .bel path

convert options:
  --input FILE        source edge list (v1 or v2, auto-detected)
  --out FILE          destination path
  --to v1|v2          target format (default: the other one)
  --chunk-edges N     v2 edges per chunk (default 65536)

info options:
  --input FILE        binary (v1/v2) or text edge list
  --reader NAME       buffered | mmap | prefetch   (default: buffered)

profile options:
  --path FILE         file to read
  --block-size N      read block bytes (default 100 MiB, fio-style)

report options:
  tps report TRACE.jsonl
                      parse a --trace file and print the phase breakdown
                      (per worker, plus the per-shard critical path for
                      dist runs), top counters, and fault timeline
";

/// Resolve the input format: the `--format` flag, else the file extension.
fn resolve_format(path: &str, format: Option<&str>) -> String {
    match format {
        Some(f) => f.to_string(),
        None => Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("bel")
            .to_string(),
    }
}

/// Whether `fmt` names the binary container (v1/v2 — the chunk-parallel
/// runner and reader backends apply to these only).
fn is_binary_format(fmt: &str) -> bool {
    matches!(fmt, "bel" | "bel2" | "v2")
}

fn open_stream(
    path: &str,
    format: Option<&str>,
    reader: ReaderBackend,
) -> Result<Box<dyn EdgeStream>, String> {
    let fmt = resolve_format(path, format);
    match fmt.as_str() {
        // v1 and v2 binary files are auto-detected by magic; the reader
        // backend (buffered / mmap / prefetch) applies to both.
        _ if is_binary_format(&fmt) => {
            tps_io::open_edge_stream(path, reader).map_err(|e| format!("{path}: {e}"))
        }
        "text" | "txt" | "el" | "edges" => Ok(Box::new(
            TextEdgeFile::open(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        other => Err(format!("unknown format {other:?} (use bel or text)")),
    }
}

fn make_partitioner(name: &str, passes: u32) -> Result<Box<dyn Partitioner>, String> {
    // Two-phase algorithms resolve through the same alias table the
    // chunk-parallel path uses, so serial and parallel configs cannot drift.
    if let Some(cfg) = two_phase_config(name, passes) {
        return Ok(Box::new(TwoPhasePartitioner::new(cfg)));
    }
    Ok(match name.to_ascii_lowercase().as_str() {
        "hdrf" => Box::new(HdrfPartitioner::default()),
        "dbh" => Box::new(DbhPartitioner::default()),
        "grid" => Box::new(GridPartitioner::default()),
        "random" => Box::new(RandomPartitioner::default()),
        "greedy" => Box::new(GreedyPartitioner),
        "adwise" => Box::new(AdwisePartitioner::default()),
        "ne" => Box::new(NePartitioner),
        "sne" => Box::new(SnePartitioner::default()),
        "dne" => Box::new(DnePartitioner::default()),
        "hep-1" => Box::new(HepPartitioner::with_tau(1.0)),
        "hep-10" => Box::new(HepPartitioner::with_tau(10.0)),
        "hep-100" => Box::new(HepPartitioner::with_tau(100.0)),
        "multilevel" | "metis" => Box::new(MultilevelPartitioner::default()),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

pub(crate) fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Write a bound socket address to `path` atomically (tmp + rename) so
/// pollers never observe a partially written address.
pub(crate) fn write_addr_file(path: &str, addr: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

/// Start the coordinator's `--metrics-addr` scrape endpoint: the body is
/// every `tps_obs` counter plus the coordinator's per-shard stage gauges,
/// with run-scoped rate/uptime gauges refreshed at scrape time.
fn start_dist_metrics(
    flags: &Flags,
    quiet: bool,
) -> Result<Option<tps_obs::MetricsServer>, String> {
    let Some(maddr) = flags.get("metrics-addr") else {
        if flags.get("metrics-addr-file").is_some() {
            return Err("--metrics-addr-file does nothing without --metrics-addr".into());
        }
        return Ok(None);
    };
    let started = std::time::Instant::now();
    let server = tps_obs::serve_metrics(maddr, move || {
        let uptime = started.elapsed().as_secs_f64();
        tps_obs::set_gauge("dist.uptime.secs", uptime);
        if uptime > 0.0 {
            let bytes = tps_obs::counters_snapshot()
                .into_iter()
                .find(|(n, _)| n == "dist.frames.bytes")
                .map_or(0, |(_, v)| v);
            tps_obs::set_gauge("dist.frames.bytes.rate", bytes as f64 / uptime);
        }
        tps_obs::render_exposition()
    })
    .map_err(|e| format!("metrics bind {maddr}: {e}"))?;
    let bound = server.addr();
    if !quiet {
        eprintln!("note: metrics on http://{bound}/metrics");
    }
    if let Some(path) = flags.get("metrics-addr-file") {
        write_addr_file(path, &bound.to_string())?;
    }
    Ok(Some(server))
}

/// The two-phase config for `algo`, if `algo` is a two-phase algorithm (the
/// only family the chunk-parallel runner executes).
pub(crate) fn two_phase_config(algo: &str, passes: u32) -> Option<TwoPhaseConfig> {
    match algo.to_ascii_lowercase().as_str() {
        "2ps-l" | "2psl" | "2ps" => Some(TwoPhaseConfig {
            clustering_passes: passes,
            ..TwoPhaseConfig::default()
        }),
        "2ps-hdrf" => Some(TwoPhaseConfig {
            clustering_passes: passes,
            ..TwoPhaseConfig::hdrf_variant()
        }),
        _ => None,
    }
}

/// Print the standard metrics line (and phases/counters when not quiet)
/// for a finished job.
fn print_outcome(outcome: &RunOutcome, k: u32, quiet: bool) {
    println!(
        "algorithm={} k={k} edges={} rf={:.4} alpha={:.4} time_s={:.3}",
        outcome.name,
        outcome.metrics.num_edges,
        outcome.metrics.replication_factor,
        outcome.metrics.alpha,
        outcome.seconds()
    );
    if !quiet {
        for (name, d) in outcome.report.phases.phases() {
            eprintln!("phase {name}: {:.3} s", d.as_secs_f64());
        }
        for (name, v) in &outcome.report.counters {
            eprintln!("counter {name}: {v}");
        }
    }
}

/// `tps partition` — a thin front-end over [`JobSpec`]: the flags map onto
/// builder calls, the spec resolves the execution plan, and the only CLI
/// value-add is the output sinks and the printed notes.
pub fn partition(args: &[String]) -> i32 {
    let valued: Vec<&str> = ["input", "k", "out", "trace"]
        .iter()
        .chain(COMMON_VALUED)
        .copied()
        .collect();
    let flags = match Flags::parse(args, &["quiet"], &valued) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let common = CommonOpts::from_flags(&flags)?;
        let input = flags.require("input")?;
        let k: u32 = flags.get_or("k", 0)?;
        if k == 0 {
            return Err("--k is required and must be >= 1".into());
        }
        let quiet = flags.has("quiet");
        let note = |msg: &str| {
            if !quiet {
                eprintln!("note: {msg}");
            }
        };

        // Binary inputs go in as path inputs (chunk-parallel eligible; the
        // provider opens per-worker cursors itself); text inputs run as
        // plain serial streams.
        let mut owned_partitioner;
        let mut text_stream = None;
        let info: GraphInfo;
        let binary_input = is_binary_format(&resolve_format(input, common.format.as_deref()));
        let mut spec = if binary_input {
            info = tps_io::open_ranged(input)
                .map_err(|e| format!("{input}: {e}"))?
                .info();
            JobSpec::path(input)
        } else {
            let mut s = open_stream(input, common.format.as_deref(), common.reader.into())?;
            info = discover_info(&mut *s).map_err(|e| e.to_string())?;
            let s = text_stream.insert(s);
            JobSpec::stream(&mut **s)
        };
        spec = match two_phase_config(&common.algorithm, common.passes) {
            Some(cfg) => spec.two_phase(cfg),
            None => {
                owned_partitioner = make_partitioner(&common.algorithm, common.passes)?;
                spec.partitioner(&mut *owned_partitioner)
            }
        };
        spec = spec
            .params(&PartitionParams::with_alpha(k, common.alpha))
            .num_vertices(info.num_vertices)
            .threads(common.threads)
            .reader(common.reader)
            .spill_budget_mb(common.spill_budget_mb)
            .mem_budget_mb(common.mem_budget_mb);
        if let Some(path) = flags.get("trace") {
            spec = spec.trace(path).trace_cmd("partition");
        }

        match spec.plan() {
            ExecPlan::Parallel { threads } => {
                if threads > 1 && common.threads == ThreadMode::Auto {
                    note(&format!(
                        "running chunk-parallel on {threads} threads (deterministic per \
                         thread count; --threads serial for the paper-exact serial runner)"
                    ));
                }
                if common.spill_budget_mb > 0 {
                    note("--spill-budget-mb bounds parallel replay runs via spill-backed spools");
                }
            }
            ExecPlan::Serial {
                reason: Some(reason),
            } => {
                if matches!(common.threads, ThreadMode::Count(n) if n > 1) {
                    note(reason);
                }
            }
            ExecPlan::Serial { reason: None } => {}
        }

        let outcome = match flags.get("out") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
                let stem = Path::new(input)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("graph");
                let (outcome, parts) = if common.spill_budget_mb > 0 {
                    // Memory-bounded output: per-partition buffers spill to
                    // disk in large sequential writes (tps-io).
                    let mut files = SpillingFileSink::create(
                        &dir,
                        stem,
                        k,
                        info.num_vertices,
                        common.spill_budget_mb << 20,
                    )
                    .map_err(|e| e.to_string())?;
                    let outcome =
                        tps_io::run_job(spec.extra_sink(&mut files)).map_err(|e| e.to_string())?;
                    let (parts, stats) = files.finish().map_err(|e| e.to_string())?;
                    if !quiet {
                        eprintln!(
                            "spill stats: {} spills, peak {} buffered bytes, {} written",
                            stats.spills, stats.peak_buffered_bytes, stats.bytes_written
                        );
                    }
                    (outcome, parts)
                } else {
                    let mut files = FileSink::create(&dir, stem, k, info.num_vertices)
                        .map_err(|e| e.to_string())?;
                    let outcome =
                        tps_io::run_job(spec.extra_sink(&mut files)).map_err(|e| e.to_string())?;
                    (outcome, files.finish().map_err(|e| e.to_string())?)
                };
                if !quiet {
                    for (path, count) in parts {
                        eprintln!("wrote {} ({count} edges)", path.display());
                    }
                }
                outcome
            }
            None => tps_io::run_job(spec).map_err(|e| e.to_string())?,
        };
        print_outcome(&outcome, k, quiet);
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Run a partitioning job and print metrics/outputs for
/// `tps dist coordinator`, which supplies its own runner closure
/// (`tps partition` builds a [`JobSpec`] instead — the coordinator cannot
/// yet, because its runner spans a worker fleet, not a local stream).
#[allow(clippy::too_many_arguments)] // the args mirror the CLI surface
fn execute_and_report(
    flags: &Flags,
    cmd: &str,
    name: &str,
    info: GraphInfo,
    input: &str,
    k: u32,
    alpha: f64,
    run: &mut dyn FnMut(&PartitionParams, &mut dyn AssignmentSink) -> Result<RunReport, String>,
) -> Result<(), String> {
    {
        let trace_path = flags.get("trace");
        if trace_path.is_some() {
            // Start the trace from a clean slate so the file describes this
            // run only. Counters are always on; events need the switch.
            tps_obs::reset_events();
            tps_obs::reset_counters();
            tps_obs::set_enabled(true);
        }
        let params = PartitionParams::with_alpha(k, alpha);
        let mut quality = QualitySink::new(info.num_vertices, k);
        let start = std::time::Instant::now();
        let report = match flags.get("out") {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
                let stem = Path::new(input)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("graph");
                let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
                // The partition call is identical for both sinks; only the
                // sink construction and finish differ.
                let mut partition_into = |quality: &mut QualitySink,
                                          files: &mut dyn AssignmentSink|
                 -> Result<RunReport, String> {
                    let mut tee = TeeSink::new(quality, files);
                    run(&params, &mut tee)
                };
                let (report, parts) = if spill_budget > 0 {
                    // Memory-bounded output: per-partition buffers spill to
                    // disk in large sequential writes (tps-io).
                    let mut files = SpillingFileSink::create(
                        &dir,
                        stem,
                        k,
                        info.num_vertices,
                        spill_budget << 20,
                    )
                    .map_err(|e| e.to_string())?;
                    let report = partition_into(&mut quality, &mut files)?;
                    let (parts, stats) = files.finish().map_err(|e| e.to_string())?;
                    if !flags.has("quiet") {
                        eprintln!(
                            "spill stats: {} spills, peak {} buffered bytes, {} written",
                            stats.spills, stats.peak_buffered_bytes, stats.bytes_written
                        );
                    }
                    (report, parts)
                } else {
                    let mut files = FileSink::create(&dir, stem, k, info.num_vertices)
                        .map_err(|e| e.to_string())?;
                    let report = partition_into(&mut quality, &mut files)?;
                    (report, files.finish().map_err(|e| e.to_string())?)
                };
                if !flags.has("quiet") {
                    for (path, count) in parts {
                        eprintln!("wrote {} ({count} edges)", path.display());
                    }
                }
                report
            }
            None => run(&params, &mut quality)?,
        };
        let elapsed = start.elapsed();
        let metrics = quality.finish();
        println!(
            "algorithm={name} k={k} edges={} rf={:.4} alpha={:.4} time_s={:.3}",
            metrics.num_edges,
            metrics.replication_factor,
            metrics.alpha,
            elapsed.as_secs_f64()
        );
        if !flags.has("quiet") {
            for (name, d) in report.phases.phases() {
                eprintln!("phase {name}: {:.3} s", d.as_secs_f64());
            }
            for (name, v) in &report.counters {
                eprintln!("counter {name}: {v}");
            }
        }
        if let Some(path) = trace_path {
            tps_obs::set_enabled(false);
            let events = tps_obs::take_events();
            // Local counters are worker 0; dist shard snapshots keep the
            // worker id the coordinator tagged them with.
            let mut counters: Vec<(u32, String, u64)> = tps_obs::counters_snapshot()
                .into_iter()
                .map(|(n, v)| (0, n, v))
                .collect();
            counters.extend(tps_obs::take_remote_counters());
            let meta = tps_obs::TraceMeta {
                cmd: cmd.to_string(),
                algo: name.to_string(),
                k,
                alpha,
                vertices: info.num_vertices,
                edges: info.num_edges,
            };
            let path = PathBuf::from(path);
            tps_obs::write_trace(&path, &meta, &events, &counters)
                .map_err(|e| format!("writing trace {}: {e}", path.display()))?;
            if !flags.has("quiet") {
                eprintln!(
                    "trace: {} events, {} counters -> {}",
                    events.len(),
                    counters.len(),
                    path.display()
                );
            }
        }
        Ok(())
    }
}

/// `tps dist` — distributed coordinator/worker execution.
pub fn dist(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("coordinator") => dist_coordinator(&args[1..]),
        Some("worker") => dist_worker(&args[1..]),
        _ => fail("usage: tps dist coordinator|worker [options] (see tps help)"),
    }
}

/// How `--dist-local` respawns replacement workers on demand.
struct RespawnSpec {
    exe: PathBuf,
    addr: String,
    spill_budget: u64,
}

impl RespawnSpec {
    /// The worker command line — one builder for initial spawns and
    /// replacements, so the two can't drift apart.
    fn command(&self) -> std::process::Command {
        let mut cmd = std::process::Command::new(&self.exe);
        cmd.args(["dist", "worker", "--connect"]).arg(&self.addr);
        if self.spill_budget > 0 {
            cmd.args(["--spill-budget-mb", &self.spill_budget.to_string()]);
        }
        cmd
    }
}

/// The coordinator's replacement source: optionally respawn a clean local
/// worker process, then accept one connection within a bounded window.
/// Reconnecting workers (`tps dist worker --reconnect`) arrive here too.
struct CliSupply<'a> {
    listener: &'a TcpListener,
    respawn: Option<&'a RespawnSpec>,
    children: &'a mut Vec<std::process::Child>,
    quiet: bool,
}

/// How long the coordinator waits for a replacement connection before
/// giving up on a shard (respawned local workers connect within
/// milliseconds; remote standbys get a grace period).
const ACCEPT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

impl CliSupply<'_> {
    fn accept_deadline(&mut self) -> std::io::Result<Option<TcpStream>> {
        let deadline = std::time::Instant::now() + ACCEPT_TIMEOUT;
        self.listener.set_nonblocking(true)?;
        let result = loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if !self.quiet {
                        eprintln!("note: replacement worker connected from {peer}");
                    }
                    break Some(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        break None;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => {
                    self.listener.set_nonblocking(false).ok();
                    return Err(e);
                }
            }
        };
        self.listener.set_nonblocking(false)?;
        if let Some(stream) = &result {
            stream.set_nonblocking(false)?;
        }
        Ok(result)
    }
}

impl tps_dist::WorkerSupply for CliSupply<'_> {
    fn replacement(&mut self) -> std::io::Result<Option<Box<dyn tps_dist::Transport>>> {
        if let Some(spec) = self.respawn {
            // Replacements are spawned clean: no fault-injection flags.
            self.children.push(spec.command().spawn()?);
            if !self.quiet {
                eprintln!("note: respawned a replacement worker");
            }
        }
        match self.accept_deadline()? {
            Some(stream) => Ok(Some(Box::new(tps_dist::TcpTransport::new(stream)?))),
            None => Ok(None),
        }
    }
}

fn dist_coordinator(args: &[String]) -> i32 {
    let valued: Vec<&str> = [
        "input",
        "k",
        "workers",
        "standby",
        "max-retries",
        "frame-timeout-ms",
        "listen",
        "metrics-addr",
        "metrics-addr-file",
        "kill-worker",
        "kill-at",
        "out",
        "trace",
    ]
    .iter()
    .chain(COMMON_VALUED)
    .copied()
    .collect();
    let flags = match Flags::parse(args, &["quiet", "dist-local"], &valued) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let common = CommonOpts::from_flags(&flags)?;
        let input = flags.require("input")?;
        let k: u32 = flags.get_or("k", 0)?;
        if k == 0 {
            return Err("--k is required and must be >= 1".into());
        }
        let alpha = common.alpha;
        let algo = common.algorithm.as_str();
        let config = two_phase_config(algo, common.passes)
            .ok_or_else(|| format!("tps dist runs 2ps-l / 2ps-hdrf only, not {algo:?}"))?;
        let workers: usize = flags.get_or("workers", 2)?;
        if workers == 0 {
            return Err("--workers must be >= 1".into());
        }
        let standby: usize = flags.get_or("standby", 0)?;
        let max_retries: u32 = flags.get_or("max-retries", 2)?;
        let frame_timeout_ms: u64 = flags.get_or("frame-timeout-ms", 0)?;
        let policy = tps_dist::FaultPolicy {
            max_retries,
            frame_timeout: (frame_timeout_ms > 0)
                .then(|| std::time::Duration::from_millis(frame_timeout_ms)),
        };
        // Fault-injection hooks for the chaos tests: forward --kill-at to
        // the --dist-local worker with spawn index --kill-worker.
        let kill_at = flags.get("kill-at");
        let kill_worker: usize = flags.get_or("kill-worker", 0)?;
        if let Some(spec) = kill_at {
            tps_dist::KillSpec::parse(spec)?; // validate before spawning anything
            if !flags.has("dist-local") {
                return Err(
                    "--kill-at requires --dist-local (it is forwarded to a spawned worker)".into(),
                );
            }
            // A mistargeted kill would silently test nothing.
            if kill_worker >= workers + standby {
                return Err(format!(
                    "--kill-worker {kill_worker} is out of range: only {} workers are spawned \
                     ({workers} shards + {standby} standby)",
                    workers + standby
                ));
            }
        } else if flags.get("kill-worker").is_some() {
            return Err("--kill-worker does nothing without --kill-at".into());
        }
        let reader: ReaderBackend = common.reader.into();
        let quiet = flags.has("quiet");

        // Workers resolve the path themselves, so ship it absolute.
        let abs = std::fs::canonicalize(input).map_err(|e| format!("{input}: {e}"))?;
        let info = tps_io::open_ranged(&abs)
            .map_err(|e| format!("{input}: {e}"))?
            .info();

        let listener = TcpListener::bind(flags.get("listen").unwrap_or("127.0.0.1:0"))
            .map_err(|e| format!("bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let _metrics = start_dist_metrics(&flags, quiet)?;
        let initial = workers + standby;
        if !quiet {
            eprintln!(
                "note: coordinator listening on {addr}, waiting for {initial} worker(s) \
                 ({workers} shards + {standby} standby)"
            );
        }

        let spill_budget = common.spill_budget_mb;
        let respawn = RespawnSpec {
            exe: std::env::current_exe().map_err(|e| e.to_string())?,
            addr: addr.to_string(),
            spill_budget,
        };
        let mut children = Vec::new();

        let accept_one = || -> Result<Box<dyn tps_dist::Transport>, String> {
            let (stream, peer) = listener.accept().map_err(|e| format!("accept: {e}"))?;
            if !quiet {
                eprintln!("note: worker connected from {peer}");
            }
            Ok(Box::new(
                tps_dist::TcpTransport::new(stream).map_err(|e| e.to_string())?,
            ))
        };
        // Immediately-invoked so the mutable borrow of `children` ends
        // before the supply takes it.
        let accepted = (|| -> Result<Vec<Box<dyn tps_dist::Transport>>, String> {
            let mut transports: Vec<Box<dyn tps_dist::Transport>> = Vec::with_capacity(initial);
            if flags.has("dist-local") {
                // Spawn and accept one worker at a time so spawn index ==
                // connection order == role: workers 0..N-1 hold shards
                // 0..N-1 and the rest are standbys. This is what makes
                // --kill-worker target a *specific* role deterministically
                // (the chaos gate depends on it). Memory-bound flags apply
                // per worker too: forward the spill budget so spawned
                // workers use spill-backed replay spools.
                for i in 0..initial {
                    let mut cmd = respawn.command();
                    if let (Some(spec), true) = (kill_at, i == kill_worker) {
                        cmd.args(["--kill-at", spec]);
                    }
                    children.push(cmd.spawn().map_err(|e| format!("spawning worker: {e}"))?);
                    transports.push(accept_one()?);
                }
            } else {
                for _ in 0..initial {
                    transports.push(accept_one()?);
                }
            }
            Ok(transports)
        })();
        let result = accepted.and_then(|transports| {
            let input_desc = tps_dist::InputDescriptor::Path {
                path: abs.to_string_lossy().into_owned(),
                reader,
            };
            let base = match config.strategy {
                tps_core::two_phase::RemainingStrategy::TwoChoice => "2PS-L",
                tps_core::two_phase::RemainingStrategy::Hdrf(_) => "2PS-HDRF",
            };
            let name = format!("{base}×{workers}w");
            let mut transports = Some(transports);
            let mut supply = CliSupply {
                listener: &listener,
                respawn: flags.has("dist-local").then_some(&respawn),
                children: &mut children,
                quiet,
            };
            execute_and_report(
                &flags,
                "dist",
                &name,
                info,
                input,
                k,
                alpha,
                &mut |params, sink| {
                    tps_dist::run_coordinator(
                        &config,
                        params,
                        info,
                        &input_desc,
                        workers,
                        transports.take().ok_or("coordinator can only run once")?,
                        &mut supply,
                        &policy,
                        common.mem_budget_mb,
                        sink,
                    )
                    .map_err(|e| e.to_string())
                },
            )
        });
        // Reconnecting workers may still sit in the accept backlog with no
        // job to serve: drain them with a Shutdown so they exit.
        if listener.set_nonblocking(true).is_ok() {
            while let Ok((stream, _)) = listener.accept() {
                stream.set_nonblocking(false).ok();
                if let Ok(mut t) = tps_dist::TcpTransport::new(stream) {
                    use tps_dist::Transport as _;
                    let _ = t.send(&tps_dist::Message::Shutdown.encode());
                }
            }
        }
        // Always reap spawned workers, even on failure (a coordinator error
        // aborts them over the wire, so wait() terminates promptly).
        for mut child in children {
            let _ = child.wait();
        }
        result
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

fn dist_worker(args: &[String]) -> i32 {
    let flags = match Flags::parse(
        args,
        &["quiet"],
        &["connect", "spill-budget-mb", "reconnect", "kill-at"],
    ) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let connect = flags.require("connect")?;
        let spill_budget: u64 = flags.get_or("spill-budget-mb", 0)?;
        let reconnects: u32 = flags.get_or("reconnect", 0)?;
        let kill = flags
            .get("kill-at")
            .map(tps_dist::KillSpec::parse)
            .transpose()?;
        let quiet = flags.has("quiet");
        let spools: Box<dyn tps_core::sink::SpoolFactory> = if spill_budget > 0 {
            Box::new(
                SpillSpoolFactory::new(
                    &std::env::temp_dir(),
                    &format!("tps-dist-{}", std::process::id()),
                    spill_budget << 20,
                    1,
                )
                .map_err(|e| e.to_string())?,
            )
        } else {
            Box::new(tps_core::sink::MemorySpoolFactory)
        };
        let connect_stream = || -> Result<TcpStream, String> {
            // The coordinator may still be binding (or, with --dist-local,
            // is our parent racing us) — retry for ~5 s before giving up.
            for attempt in 0..50 {
                match TcpStream::connect(connect) {
                    Ok(s) => return Ok(s),
                    Err(e) if attempt == 49 => return Err(format!("{connect}: {e}")),
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(100)),
                }
            }
            unreachable!("connect loop returns or errors")
        };
        let mut handshake = tps_dist::Handshake::Hello;
        let mut attempt = 0u32;
        loop {
            let tcp = tps_dist::TcpTransport::new(connect_stream()?).map_err(|e| e.to_string())?;
            // The kill switch hard-exits the process when it fires, so the
            // socket closes exactly as a crashed worker's would.
            let mut transport: Box<dyn tps_dist::Transport> = match kill {
                Some(spec) => Box::new(tps_dist::FaultTransport::new(
                    tcp,
                    spec,
                    tps_dist::KillMode::Exit,
                )),
                None => Box::new(tcp),
            };
            match tps_dist::run_worker_handshake(
                &mut *transport,
                &tps_dist::PathResolver,
                &*spools,
                handshake,
            ) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt > reconnects {
                        return Err(e.to_string());
                    }
                    if !quiet {
                        eprintln!(
                            "note: worker failed ({e}); reconnecting ({attempt}/{reconnects})"
                        );
                    }
                    handshake = tps_dist::Handshake::Rejoin;
                }
            }
        }
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps generate`
pub fn generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[], &["dataset", "scale", "out"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let name = flags.require("dataset")?;
        let scale: f64 = flags.get_or("scale", 1.0)?;
        let out = flags.require("out")?;
        let ds = Dataset::ALL
            .into_iter()
            .find(|d| d.abbrev().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown dataset {name:?} (ok|it|tw|fr|uk|gsh|wdc|wi)"))?;
        let graph = ds.generate_scaled(scale);
        let info = write_binary_edge_list(out, graph.num_vertices(), graph.edges().iter().copied())
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {out}: {} vertices, {} edges ({} stand-in at scale {scale})",
            info.num_vertices,
            info.num_edges,
            ds.full_name()
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps convert`
pub fn convert(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[], &["input", "out", "to", "chunk-edges"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let input = flags.require("input")?;
        let out = flags.require("out")?;
        let chunk_edges: u32 = flags.get_or("chunk-edges", tps_io::v2::DEFAULT_CHUNK_EDGES)?;
        if chunk_edges == 0 {
            return Err("--chunk-edges must be >= 1".into());
        }
        // Creating the output truncates it; refuse to clobber the input
        // (same path, possibly via a symlink or a relative spelling).
        if let Ok(canon_in) = std::fs::canonicalize(input) {
            if let Ok(canon_out) = std::fs::canonicalize(out) {
                if canon_in == canon_out {
                    return Err(format!("--out must differ from --input ({input})"));
                }
            }
        }
        let from = tps_io::detect_format(input).map_err(|e| format!("{input}: {e}"))?;
        let to = match (flags.get("to"), from) {
            (Some("v1"), _) => EdgeFileFormat::V1,
            (Some("v2"), _) => EdgeFileFormat::V2,
            (Some(other), _) => return Err(format!("unknown target format {other:?} (v1|v2)")),
            (None, EdgeFileFormat::V1) => EdgeFileFormat::V2,
            (None, EdgeFileFormat::V2) => EdgeFileFormat::V1,
        };
        let info = match (from, to) {
            (EdgeFileFormat::V1, EdgeFileFormat::V2) => {
                tps_io::convert_v1_to_v2(input, out, chunk_edges).map_err(|e| e.to_string())?
            }
            (EdgeFileFormat::V2, EdgeFileFormat::V1) => {
                tps_io::convert_v2_to_v1(input, out).map_err(|e| e.to_string())?
            }
            _ => return Err(format!("{input} is already {to:?}")),
        };
        let in_bytes = std::fs::metadata(input).map_err(|e| e.to_string())?.len();
        let out_bytes = std::fs::metadata(out).map_err(|e| e.to_string())?.len();
        println!(
            "converted {input} ({from:?}, {in_bytes} B) -> {out} ({to:?}, {out_bytes} B, {:.1}% of input): {} vertices, {} edges",
            100.0 * out_bytes as f64 / in_bytes.max(1) as f64,
            info.num_vertices,
            info.num_edges,
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps info`
pub fn info(args: &[String]) -> i32 {
    let valued: Vec<&str> = ["input"].iter().chain(COMMON_VALUED).copied().collect();
    let flags = match Flags::parse(args, &[], &valued) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let common = CommonOpts::from_flags(&flags)?;
        let input = flags.require("input")?;
        let mut stream = open_stream(input, common.format.as_deref(), common.reader.into())?;
        let info = discover_info(&mut stream).map_err(|e| e.to_string())?;
        // One more pass for degree statistics.
        let degrees = tps_graph::degree::DegreeTable::compute(&mut stream, info.num_vertices)
            .map_err(|e| e.to_string())?;
        println!("file: {input}");
        println!("vertices: {}", info.num_vertices);
        println!("edges: {}", info.num_edges);
        println!("mean degree: {:.2}", info.mean_degree());
        println!("max degree: {}", degrees.max_degree());
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps profile`
pub fn profile(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[], &["path", "block-size"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let path = flags.require("path")?;
        let block: usize = flags.get_or("block-size", 100 << 20)?;
        let p = tps_storage::profile_sequential_read(Path::new(path), block)
            .map_err(|e| e.to_string())?;
        println!(
            "read {} bytes in {:.3} s -> {:.1} MB/s",
            p.bytes,
            p.seconds,
            p.bandwidth() / 1e6
        );
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `tps report` — render a `--trace` file's phase breakdown, counters and
/// fault timeline.
pub fn report(args: &[String]) -> i32 {
    let path = match args.first() {
        Some(p) if !p.starts_with('-') => PathBuf::from(p),
        _ => return fail("usage: tps report TRACE.jsonl"),
    };
    let run = || -> Result<(), String> {
        let trace = tps_obs::Trace::load(&path)?;
        print!("{}", tps_obs::render_report(&trace)?);
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}
