//! `tps` — the command-line edge partitioner.
//!
//! The artifact a downstream user actually runs (the paper: "We implemented
//! 2PS-L as a separate process that reads the graph data as a file from a
//! given storage, partitions the edges, and writes back the partitioned
//! graph data to storage").
//!
//! ```text
//! tps partition --input graph.bel -k 32 [--algorithm 2ps-l] [--alpha 1.05]
//!               [--passes 1] [--threads N|auto|serial] [--out DIR]
//!               [--format bel|text] [--reader buffered|mmap|prefetch]
//!               [--spill-budget-mb N]
//! tps dist coordinator --input graph.bel --k 32 --workers N
//!               [--listen ADDR] [--dist-local] [--standby N]
//!               [--max-retries N] [--frame-timeout-ms N] [partition options]
//! tps dist worker --connect HOST:PORT [--reconnect N] [--spill-budget-mb N]
//! tps serve     --parts DIR [--listen ADDR] [--addr-file FILE] [--cache N]
//!               [--state FILE] [--save-state FILE] [--headroom F]
//! tps lookup    --connect HOST:PORT [--edge S,D] [--replicas V] [--insert S,D]
//!               [--remove S,D] [--verify-parts DIR] [--stats] [--shutdown]
//! tps top       HOST:PORT [--interval-ms N] [--samples N] [--once]
//! tps generate  --dataset ok [--scale 1.0] --out graph.bel
//! tps convert   --input graph.bel --out graph.bel2 [--to v1|v2] [--chunk-edges N]
//! tps info      --input graph.bel [--format bel|text] [--reader NAME]
//! tps profile   --path some.file [--block-size 104857600]
//! tps report    trace.jsonl
//! tps help
//! ```

mod args;
mod commands;
mod serve_cmd;
mod top_cmd;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("partition") => commands::partition(&argv[1..]),
        Some("dist") => commands::dist(&argv[1..]),
        Some("serve") => serve_cmd::serve(&argv[1..]),
        Some("lookup") => serve_cmd::lookup(&argv[1..]),
        Some("top") => top_cmd::top(&argv[1..]),
        Some("generate") => commands::generate(&argv[1..]),
        Some("convert") => commands::convert(&argv[1..]),
        Some("info") => commands::info(&argv[1..]),
        Some("profile") => commands::profile(&argv[1..]),
        Some("report") => commands::report(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            0
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{}", commands::USAGE);
            2
        }
    };
    std::process::exit(code);
}
