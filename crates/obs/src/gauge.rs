//! Last-value gauge registry.
//!
//! Gauges mirror the [`counter`](crate::counter) registry but hold a
//! *current value* (an `f64`, so fractional readings like staleness fit)
//! instead of a monotonic count. Two flavours share one snapshot:
//!
//! * `static` [`Gauge`] values with `&'static str` names — one relaxed
//!   store per [`set`](Gauge::set), safe on hot paths;
//! * [`set_gauge`] for dynamically named gauges (per-shard state in the
//!   dist coordinator, scrape-time serve state) — takes a lock, so call it
//!   off the hot path (barriers, the scrape thread).
//!
//! ```
//! use tps_obs::Gauge;
//!
//! static DEPTH: Gauge = Gauge::new("doc.example.queue_depth");
//! DEPTH.set(17.0);
//! assert_eq!(DEPTH.get(), 17.0);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A named, process-global last-value gauge (f64 stored as bits).
///
/// Construct as a `static` with [`Gauge::new`]; the gauge appears in
/// [`gauges_snapshot`] after its first [`set`](Gauge::set).
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
static DYNAMIC: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<&'static Gauge>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

fn dynamic() -> std::sync::MutexGuard<'static, BTreeMap<String, f64>> {
    DYNAMIC.lock().unwrap_or_else(|e| e.into_inner())
}

impl Gauge {
    /// A zero gauge with a hierarchical dotted `name`
    /// (e.g. `"serve.staleness"`). `const`, so usable in `static` items.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the current value (relaxed store; safe from any thread).
    pub fn set(&'static self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// Current value (0.0 before the first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn register(&'static self) {
        let mut reg = registry();
        // Double-check under the lock so concurrent first sets register once.
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }
}

/// Set a dynamically named gauge (created on first set).
///
/// Takes the registry lock — meant for barrier/scrape-time state, not hot
/// paths. A dynamic gauge sharing a static [`Gauge`]'s name overrides it in
/// [`gauges_snapshot`] (last writer wins, one entry per name).
pub fn set_gauge(name: &str, v: f64) {
    dynamic().insert(name.to_string(), v);
}

/// Snapshot of every gauge, sorted by name, one entry per name.
///
/// Static and dynamic gauges are merged; a dynamic value wins a name
/// collision (it was necessarily set later than the static's registration).
pub fn gauges_snapshot() -> Vec<(String, f64)> {
    let mut map: BTreeMap<String, f64> = registry()
        .iter()
        .map(|g| (g.name.to_string(), g.get()))
        .collect();
    for (name, v) in dynamic().iter() {
        map.insert(name.clone(), *v);
    }
    map.into_iter().collect()
}

/// Reset: zero every static gauge, drop every dynamic one (test isolation).
pub fn reset_gauges() {
    for g in registry().iter() {
        g.bits.store(0, Ordering::Relaxed);
    }
    dynamic().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    static G: Gauge = Gauge::new("test.gauge.static");

    #[test]
    fn set_get_snapshot() {
        G.set(2.5);
        assert_eq!(G.get(), 2.5);
        set_gauge("test.gauge.dyn.0", 7.0);
        let snap = gauges_snapshot();
        let names: Vec<&String> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot is sorted");
        assert!(snap
            .iter()
            .any(|(n, v)| n == "test.gauge.dyn.0" && *v == 7.0));
    }

    #[test]
    fn dynamic_overrides_static_on_collision() {
        static C: Gauge = Gauge::new("test.gauge.collide");
        C.set(1.0);
        set_gauge("test.gauge.collide", 9.0);
        let snap = gauges_snapshot();
        let hits: Vec<f64> = snap
            .iter()
            .filter(|(n, _)| n == "test.gauge.collide")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits, vec![9.0], "one entry per name, dynamic wins");
    }
}
