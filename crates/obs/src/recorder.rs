//! Thread-local event/span recorder.
//!
//! Each thread records into a fixed-capacity ring ([`RING_CAPACITY`] events)
//! that is flushed into a process-global collection buffer when it fills and
//! at explicit barriers ([`drain_local`], [`take_events`]). Recording is
//! gated by a global enable flag: when disabled (the default) [`span`] costs
//! a relaxed load and a clock read, and [`instant`] is a relaxed load.
//!
//! Timestamps are nanoseconds since a process-local epoch (first use), so
//! they are monotonic per process. Events shipped from remote workers keep
//! their own epochs; the report layer only compares timestamps within one
//! `(worker, thread)` timeline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-thread ring capacity, in events, before an automatic flush.
pub const RING_CAPACITY: usize = 1024;

/// What an event marks: a span opening, a span closing, or a point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span started.
    Open,
    /// The most recently opened span on this thread ended.
    Close,
    /// A point-in-time mark (e.g. a fault event).
    Mark,
}

/// One recorded event, owned (names become `String` when leaving the ring).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Open / Close / Mark.
    pub kind: EventKind,
    /// Span or mark name (phase names match `PhaseTimer` entries).
    pub name: String,
    /// Originating worker: 0 is the local process (serial runs, the
    /// coordinator); dist workers are `shard + 1`.
    pub worker: u32,
    /// Recording thread id, unique per thread within a worker.
    pub tid: u32,
    /// Nanoseconds since the worker's process-local epoch.
    pub ns: u64,
    /// Optional free-form detail (fault events carry the error text).
    pub detail: Option<String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static COLLECTED: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static REMOTE_COUNTERS: Mutex<Vec<(u32, String, u64)>> = Mutex::new(Vec::new());

struct Ring {
    tid: u32,
    events: Vec<(EventKind, &'static str, u64, Option<String>)>,
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn collected() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    COLLECTED.lock().unwrap_or_else(|e| e.into_inner())
}

fn remote_counters() -> std::sync::MutexGuard<'static, Vec<(u32, String, u64)>> {
    REMOTE_COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn event recording on or off (counters are unaffected: always on).
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first event so timestamps start near zero.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether event recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn flush(ring: &mut Ring) {
    if ring.events.is_empty() {
        return;
    }
    let tid = ring.tid;
    let mut sink = collected();
    sink.extend(
        ring.events
            .drain(..)
            .map(|(kind, name, ns, detail)| TraceEvent {
                kind,
                name: name.to_string(),
                worker: 0,
                tid,
                ns,
                detail,
            }),
    );
}

fn push(kind: EventKind, name: &'static str, detail: Option<String>) {
    let ns = now_ns();
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.events.capacity() == 0 {
            ring.events.reserve_exact(RING_CAPACITY);
        }
        if ring.events.len() >= RING_CAPACITY {
            flush(&mut ring);
        }
        ring.events.push((kind, name, ns, detail));
    });
}

/// Record a point event if recording is enabled.
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        push(EventKind::Mark, name, None);
    }
}

/// Record a point event with a detail string if recording is enabled.
///
/// The detail is only materialised when recording is on; pass a closure-free
/// `format!` at call sites guarded by this function's own check when the
/// formatting itself is expensive.
#[inline]
pub fn instant_with(name: &'static str, detail: String) {
    if enabled() {
        push(EventKind::Mark, name, Some(detail));
    }
}

/// Flush this thread's ring into the global buffer (a barrier drain).
///
/// Call at the end of worker-thread bodies so events survive thread exit.
pub fn drain_local() {
    RING.with(|ring| flush(&mut ring.borrow_mut()));
}

/// Drain the calling thread and take every collected event, sorted by
/// `(worker, tid)` with per-thread chronological order preserved.
///
/// Rings of *other* live threads are not drained here — drain them at their
/// own barriers with [`drain_local`] before the final take.
pub fn take_events() -> Vec<TraceEvent> {
    drain_local();
    let mut out = std::mem::take(&mut *collected());
    out.sort_by_key(|a| (a.worker, a.tid, a.ns));
    out
}

/// Drain the calling thread's ring, then remove and return only the events
/// this thread recorded (matched by its tid) — including any that earlier
/// overflowed into the global buffer.
///
/// Dist workers use this to ship their own events in the `ShardDone` frame
/// without disturbing other threads' events when they share a process with
/// the coordinator (loopback / `--dist-local` runs).
pub fn take_thread_events() -> Vec<TraceEvent> {
    drain_local();
    let tid = RING.with(|ring| ring.borrow().tid);
    let mut sink = collected();
    let mut out = Vec::new();
    let mut keep = Vec::with_capacity(sink.len());
    for e in sink.drain(..) {
        if e.worker == 0 && e.tid == tid {
            out.push(e);
        } else {
            keep.push(e);
        }
    }
    *sink = keep;
    out
}

/// Ingest events shipped from a remote worker, tagging them with `worker`.
pub fn record_remote(worker: u32, events: Vec<TraceEvent>) {
    let mut sink = collected();
    for mut e in events {
        e.worker = worker;
        sink.push(e);
    }
}

/// Stash a remote worker's counter snapshot for the trace writer.
pub fn record_remote_counters(worker: u32, counters: Vec<(String, u64)>) {
    let mut sink = remote_counters();
    for (name, value) in counters {
        sink.push((worker, name, value));
    }
}

/// Take every stashed remote counter snapshot, sorted by `(worker, name)`.
pub fn take_remote_counters() -> Vec<(u32, String, u64)> {
    let mut out = std::mem::take(&mut *remote_counters());
    out.sort();
    out
}

/// Discard all collected events and remote counters (test / bench isolation).
pub fn reset_events() {
    RING.with(|ring| ring.borrow_mut().events.clear());
    collected().clear();
    remote_counters().clear();
}

/// An open span. Created by [`span`]; closed by [`Span::end`] or on drop.
///
/// The start instant is always captured (callers need the duration for the
/// `PhaseTimer` summary); the open/close *events* are only recorded when the
/// recorder was enabled at open time.
#[must_use = "hold the span for the duration of the phase, then call end()"]
pub struct Span {
    name: &'static str,
    start: Instant,
    armed: bool,
}

/// Open a span named `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    let armed = enabled();
    if armed {
        push(EventKind::Open, name, None);
    }
    Span {
        name,
        start: Instant::now(),
        armed,
    }
}

impl Span {
    /// Close the span and return its measured wall-clock duration.
    pub fn end(mut self) -> Duration {
        let d = self.start.elapsed();
        self.close();
        d
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn close(&mut self) {
        if self.armed {
            self.armed = false;
            push(EventKind::Close, self.name, None);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global state; serialise tests touching it.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        reset_events();
        set_enabled(false);
        let s = span("quiet");
        instant("mark");
        let d = s.end();
        assert!(d.as_nanos() < u128::MAX);
        assert!(take_events().is_empty());
    }

    #[test]
    fn span_records_open_close_in_order() {
        let _g = locked();
        reset_events();
        set_enabled(true);
        let outer = span("outer");
        let inner = span("inner");
        inner.end();
        instant("mark");
        outer.end();
        set_enabled(false);
        let ev = take_events();
        let kinds: Vec<(EventKind, &str)> = ev.iter().map(|e| (e.kind, e.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Open, "outer"),
                (EventKind::Open, "inner"),
                (EventKind::Close, "inner"),
                (EventKind::Mark, "mark"),
                (EventKind::Close, "outer"),
            ]
        );
        let mut last = 0;
        for e in &ev {
            assert!(e.ns >= last, "timestamps must be monotonic per thread");
            last = e.ns;
        }
    }

    #[test]
    fn drop_closes_span() {
        let _g = locked();
        reset_events();
        set_enabled(true);
        {
            let _s = span("scoped");
        }
        set_enabled(false);
        let ev = take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].kind, EventKind::Close);
    }

    #[test]
    fn ring_overflow_flushes() {
        let _g = locked();
        reset_events();
        set_enabled(true);
        for _ in 0..(RING_CAPACITY + 10) {
            instant("tick");
        }
        set_enabled(false);
        let ev = take_events();
        assert_eq!(ev.len(), RING_CAPACITY + 10);
    }

    #[test]
    fn threads_get_distinct_tids_and_keep_order() {
        let _g = locked();
        reset_events();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let s = span("worker_phase");
                    instant("worker_mark");
                    s.end();
                    drain_local();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let ev = take_events();
        assert_eq!(ev.len(), 12);
        let mut tids: Vec<u32> = ev.iter().map(|e| e.tid).collect();
        tids.dedup();
        assert_eq!(tids.len(), 4, "four threads, four contiguous tid groups");
        for chunk in ev.chunks(3) {
            assert_eq!(chunk[0].kind, EventKind::Open);
            assert_eq!(chunk[1].kind, EventKind::Mark);
            assert_eq!(chunk[2].kind, EventKind::Close);
        }
    }

    #[test]
    fn remote_events_are_tagged() {
        let _g = locked();
        reset_events();
        record_remote(
            3,
            vec![TraceEvent {
                kind: EventKind::Mark,
                name: "remote".into(),
                worker: 0,
                tid: 1,
                ns: 5,
                detail: None,
            }],
        );
        record_remote_counters(3, vec![("io.test".into(), 9)]);
        let ev = take_events();
        assert_eq!(ev[0].worker, 3);
        assert_eq!(take_remote_counters(), vec![(3, "io.test".into(), 9)]);
    }
}
