//! JSON-lines trace files.
//!
//! A trace is a sequence of flat JSON objects, one per line:
//!
//! ```text
//! {"t":"meta","cmd":"partition","algo":"2PS-L","k":32,"alpha":1.1,"vertices":875713,"edges":5105039}
//! {"t":"e","k":"o","n":"degree","w":0,"tid":1,"ns":1200}
//! {"t":"e","k":"c","n":"degree","w":0,"tid":1,"ns":91200}
//! {"t":"e","k":"i","n":"dist.fault.retry","w":0,"tid":1,"ns":99000,"d":"shard 1: connection reset"}
//! {"t":"c","w":0,"n":"io.v2.chunks_decoded","v":613}
//! ```
//!
//! * `t` — record type: `meta` (run header), `e` (event), `c` (counter).
//! * event `k` — `o` (span open), `c` (span close), `i` (point mark).
//! * `w` — worker: `0` for the local process / coordinator, `shard + 1` for
//!   dist workers.
//! * `ns` — nanoseconds since that worker's process-local epoch.
//!
//! The format is line-oriented so a crashed run still leaves a parseable
//! prefix: [`Trace::parse`] treats an unparseable *final* line as torn
//! (setting [`Trace::truncated`]) but rejects corruption anywhere else.
//! Lines with an unknown `t` are skipped for forward compatibility.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::recorder::{EventKind, TraceEvent};

/// The run header stored on a trace's `meta` line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceMeta {
    /// CLI mode that produced the trace (`partition`, `dist`, `bench`, …).
    pub cmd: String,
    /// Algorithm label (e.g. `2PS-L` or `2PS-L x4`).
    pub algo: String,
    /// Number of partitions.
    pub k: u32,
    /// Balance slack factor α.
    pub alpha: f64,
    /// Vertex count of the input graph (0 when unknown).
    pub vertices: u64,
    /// Edge count of the input graph (0 when unknown).
    pub edges: u64,
}

/// A parsed trace: header, events, counter values, truncation flag.
#[derive(Debug, Default)]
pub struct Trace {
    /// The `meta` line, if present.
    pub meta: Option<TraceMeta>,
    /// All events, in file order.
    pub events: Vec<TraceEvent>,
    /// Counter values as `(worker, name, value)`.
    pub counters: Vec<(u32, String, u64)>,
    /// True when the final line was torn (e.g. the process died mid-write).
    pub truncated: bool,
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, "\"{key}\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Render a whole trace (meta + events + counters) as JSON-lines text.
pub fn render_trace(
    meta: &TraceMeta,
    events: &[TraceEvent],
    counters: &[(u32, String, u64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\"t\":\"meta\",");
    push_str_field(&mut out, "cmd", &meta.cmd);
    out.push(',');
    push_str_field(&mut out, "algo", &meta.algo);
    let _ = writeln!(
        out,
        ",\"k\":{},\"alpha\":{},\"vertices\":{},\"edges\":{}}}",
        meta.k, meta.alpha, meta.vertices, meta.edges
    );
    for e in events {
        let kind = match e.kind {
            EventKind::Open => "o",
            EventKind::Close => "c",
            EventKind::Mark => "i",
        };
        let _ = write!(out, "{{\"t\":\"e\",\"k\":\"{kind}\",");
        push_str_field(&mut out, "n", &e.name);
        let _ = write!(out, ",\"w\":{},\"tid\":{},\"ns\":{}", e.worker, e.tid, e.ns);
        if let Some(d) = &e.detail {
            out.push(',');
            push_str_field(&mut out, "d", d);
        }
        out.push_str("}\n");
    }
    for (worker, name, value) in counters {
        let _ = write!(out, "{{\"t\":\"c\",\"w\":{worker},");
        push_str_field(&mut out, "n", name);
        let _ = writeln!(out, ",\"v\":{value}}}");
    }
    out
}

/// Write a trace file at `path`.
pub fn write_trace(
    path: &Path,
    meta: &TraceMeta,
    events: &[TraceEvent],
    counters: &[(u32, String, u64)],
) -> std::io::Result<()> {
    fs::write(path, render_trace(meta, events, counters))
}

#[derive(Debug, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
}

/// Parse one flat JSON object (`{"key":value,...}` with string/number
/// values) into key/value pairs. Strict: trailing bytes, nesting, or
/// malformed escapes are errors.
fn parse_flat(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}", i = *i));
        }
        *i += 1;
        let mut s = String::new();
        loop {
            match bytes.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = line
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &line[*i..];
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(&mut i)?;
            skip_ws(&mut i);
            if bytes.get(i) != Some(&b':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = match bytes.get(i) {
                Some(b'"') => Scalar::Str(parse_string(&mut i)?),
                Some(c) if c.is_ascii_digit() || *c == b'-' || *c == b'+' => {
                    let start = i;
                    while i < bytes.len()
                        && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        i += 1;
                    }
                    let num: f64 = line[start..i]
                        .parse()
                        .map_err(|_| format!("bad number {:?}", &line[start..i]))?;
                    Scalar::Num(num)
                }
                other => return Err(format!("unsupported value start {other:?}")),
            };
            fields.push((key, value));
            skip_ws(&mut i);
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(fields)
}

fn get_str(fields: &[(String, Scalar)], key: &str) -> Result<String, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Scalar::Str(s))) => Ok(s.clone()),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_num(fields: &[(String, Scalar)], key: &str) -> Result<f64, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Scalar::Num(n))) => Ok(*n),
        Some(_) => Err(format!("field {key:?} is not a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

enum Record {
    Meta(TraceMeta),
    Event(TraceEvent),
    Counter(u32, String, u64),
    Other,
}

fn parse_record(line: &str) -> Result<Record, String> {
    let fields = parse_flat(line)?;
    match get_str(&fields, "t")?.as_str() {
        "meta" => Ok(Record::Meta(TraceMeta {
            cmd: get_str(&fields, "cmd")?,
            algo: get_str(&fields, "algo")?,
            k: get_num(&fields, "k")? as u32,
            alpha: get_num(&fields, "alpha")?,
            vertices: get_num(&fields, "vertices")? as u64,
            edges: get_num(&fields, "edges")? as u64,
        })),
        "e" => {
            let kind = match get_str(&fields, "k")?.as_str() {
                "o" => EventKind::Open,
                "c" => EventKind::Close,
                "i" => EventKind::Mark,
                other => return Err(format!("unknown event kind {other:?}")),
            };
            Ok(Record::Event(TraceEvent {
                kind,
                name: get_str(&fields, "n")?,
                worker: get_num(&fields, "w")? as u32,
                tid: get_num(&fields, "tid")? as u32,
                ns: get_num(&fields, "ns")? as u64,
                detail: get_str(&fields, "d").ok(),
            }))
        }
        "c" => Ok(Record::Counter(
            get_num(&fields, "w")? as u32,
            get_str(&fields, "n")?,
            get_num(&fields, "v")? as u64,
        )),
        _ => Ok(Record::Other),
    }
}

impl Trace {
    /// Parse trace text. A malformed *final* line is tolerated as a torn
    /// write (sets [`Trace::truncated`]); malformed earlier lines are
    /// errors reported with their 1-based line number.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let lines: Vec<&str> = text.lines().collect();
        let mut trace = Trace::default();
        let last_nonempty = lines.iter().rposition(|l| !l.trim().is_empty());
        for (idx, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record(line) {
                Ok(Record::Meta(m)) => trace.meta = Some(m),
                Ok(Record::Event(e)) => trace.events.push(e),
                Ok(Record::Counter(w, n, v)) => trace.counters.push((w, n, v)),
                Ok(Record::Other) => {}
                Err(_) if Some(idx) == last_nonempty => {
                    trace.truncated = true;
                }
                Err(e) => return Err(format!("line {}: {e}", idx + 1)),
            }
        }
        Ok(trace)
    }

    /// Load and parse the trace file at `path`.
    pub fn load(path: &Path) -> Result<Trace, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Trace::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (TraceMeta, Vec<TraceEvent>, Vec<(u32, String, u64)>) {
        let meta = TraceMeta {
            cmd: "partition".into(),
            algo: "2PS-L".into(),
            k: 32,
            alpha: 1.05,
            vertices: 100,
            edges: 500,
        };
        let events = vec![
            TraceEvent {
                kind: EventKind::Open,
                name: "degree".into(),
                worker: 0,
                tid: 1,
                ns: 10,
                detail: None,
            },
            TraceEvent {
                kind: EventKind::Mark,
                name: "dist.fault.retry".into(),
                worker: 0,
                tid: 1,
                ns: 15,
                detail: Some("shard 1: \"reset\"\n".into()),
            },
            TraceEvent {
                kind: EventKind::Close,
                name: "degree".into(),
                worker: 0,
                tid: 1,
                ns: 20,
                detail: None,
            },
        ];
        let counters = vec![(0, "io.v2.chunks_decoded".into(), 7)];
        (meta, events, counters)
    }

    #[test]
    fn roundtrip() {
        let (meta, events, counters) = sample();
        let text = render_trace(&meta, &events, &counters);
        let trace = Trace::parse(&text).unwrap();
        assert_eq!(trace.meta.as_ref().unwrap(), &meta);
        assert_eq!(trace.events, events);
        assert_eq!(trace.counters, counters);
        assert!(!trace.truncated);
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let (meta, events, counters) = sample();
        let text = render_trace(&meta, &events, &counters);
        let cut = &text[..text.len() - 10];
        let trace = Trace::parse(cut).unwrap();
        assert!(trace.truncated);
        assert_eq!(trace.events.len(), events.len());
    }

    #[test]
    fn corrupt_middle_line_errors_with_line_number() {
        let (meta, events, counters) = sample();
        let mut lines: Vec<String> = render_trace(&meta, &events, &counters)
            .lines()
            .map(String::from)
            .collect();
        lines[1] = "{\"t\":\"e\",\"k\":\"o\",garbage".into();
        let err = Trace::parse(&lines.join("\n")).unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn missing_field_is_an_error() {
        let text =
            "{\"t\":\"e\",\"k\":\"o\",\"n\":\"x\"}\n{\"t\":\"c\",\"w\":0,\"n\":\"y\",\"v\":1}";
        let err = Trace::parse(text).unwrap_err();
        assert!(err.contains("missing field"), "got: {err}");
    }

    #[test]
    fn unknown_record_type_is_skipped() {
        let text = "{\"t\":\"future\",\"x\":1}\n{\"t\":\"c\",\"w\":0,\"n\":\"y\",\"v\":1}";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.counters.len(), 1);
    }

    #[test]
    fn empty_input_parses_empty() {
        let trace = Trace::parse("").unwrap();
        assert!(trace.meta.is_none());
        assert!(trace.events.is_empty());
        assert!(!trace.truncated);
    }
}
