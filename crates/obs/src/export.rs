//! Text exposition of live metrics + a tiny std-only scrape endpoint.
//!
//! [`render_exposition`] encodes every registered counter, gauge and
//! histogram as Prometheus-style `name{label="v"} value` lines:
//!
//! ```text
//! tps_counter{name="serve.lookups"} 4096
//! tps_gauge{name="serve.staleness"} 0.0125
//! tps_hist_bucket{name="serve.op.lookup.ns",le="2048"} 17
//! tps_hist_bucket{name="serve.op.lookup.ns",le="+Inf"} 21
//! tps_hist_count{name="serve.op.lookup.ns"} 21
//! tps_hist_sum{name="serve.op.lookup.ns"} 31744
//! tps_hist_max{name="serve.op.lookup.ns"} 9001
//! tps_hist_quantile{name="serve.op.lookup.ns",q="0.5"} 1448
//! ```
//!
//! Bucket lines are cumulative (`le` = the bucket's exclusive upper bound;
//! all-zero prefixes are elided) and every histogram also exposes the
//! p50/p90/p99 the snapshot computes, so scrapers need no bucket math.
//! [`parse_exposition`] is the matching minimal parser (used by `tps top`,
//! the e2e tests and the round-trip proptests).
//!
//! [`MetricsServer`] is the scrape side: a plain `TcpListener` thread that
//! answers every HTTP request with the current exposition. All encoding
//! work happens on the scrape thread — instrumented hot paths only ever pay
//! the relaxed-atomic cost of the counters/histograms themselves.

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::counter::counters_snapshot;
use crate::gauge::gauges_snapshot;
use crate::hist::{bucket_bound, hists_snapshot, HistSnapshot, NUM_BUCKETS};

/// Quantiles every histogram exposes as `tps_hist_quantile` lines.
pub const EXPORT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

fn escape_label(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_line(out: &mut String, metric: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(metric);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"");
            escape_label(out, v);
            out.push('"');
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// Encode one histogram snapshot (cumulative buckets + summary lines).
pub fn render_hist(out: &mut String, h: &HistSnapshot) {
    let mut cum = 0u64;
    for i in 0..NUM_BUCKETS {
        if h.counts[i] == 0 {
            continue;
        }
        cum += h.counts[i];
        let le = if i == NUM_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            bucket_bound(i).to_string()
        };
        push_line(
            out,
            "tps_hist_bucket",
            &[("name", &h.name), ("le", &le)],
            cum as f64,
        );
    }
    let labels = [("name", h.name.as_str())];
    push_line(out, "tps_hist_count", &labels, h.count() as f64);
    push_line(out, "tps_hist_sum", &labels, h.sum as f64);
    push_line(out, "tps_hist_max", &labels, h.max as f64);
    for q in EXPORT_QUANTILES {
        let qs = format!("{q}");
        push_line(
            out,
            "tps_hist_quantile",
            &[("name", &h.name), ("q", &qs)],
            h.quantile(q) as f64,
        );
    }
}

/// Render the full exposition: every registered counter, gauge and
/// histogram, in that order, each family sorted by name.
pub fn render_exposition() -> String {
    let mut out = String::new();
    for (name, v) in counters_snapshot() {
        push_line(&mut out, "tps_counter", &[("name", &name)], v as f64);
    }
    for (name, v) in gauges_snapshot() {
        push_line(&mut out, "tps_gauge", &[("name", &name)], v);
    }
    for h in hists_snapshot() {
        render_hist(&mut out, &h);
    }
    out
}

/// One parsed exposition line: metric, labels in file order, value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `tps_counter`).
    pub metric: String,
    /// Labels as `(key, value)` pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse exposition text (the exact dialect [`render_exposition`] emits;
/// `#`-comment lines are skipped). Errors carry the 1-based line number.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i == 0 {
        return Err("missing metric name".into());
    }
    let metric = line[..i].to_string();
    let mut labels = Vec::new();
    if bytes.get(i) == Some(&b'{') {
        i += 1;
        loop {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let key = line[start..i].to_string();
            if key.is_empty() {
                return Err("empty label key".into());
            }
            if bytes.get(i) != Some(&b'=') || bytes.get(i + 1) != Some(&b'"') {
                return Err(format!("label {key:?}: expected ="));
            }
            i += 2;
            let mut value = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated label value".into()),
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        i += 2;
                    }
                    Some(_) => {
                        let ch = line[i..].chars().next().unwrap();
                        value.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            labels.push((key, value));
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    let rest = line[i..].trim();
    let value: f64 = rest
        .parse()
        .map_err(|_| format!("bad sample value {rest:?}"))?;
    Ok(Sample {
        metric,
        labels,
        value,
    })
}

/// A running scrape endpoint: one listener thread, one short-lived HTTP
/// response per connection, body produced by the `collect` callback.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve metrics scrapes until shutdown or drop.
///
/// `collect` runs once per scrape, on the listener thread; use it to
/// refresh scrape-time gauges before rendering (typically ending in
/// [`render_exposition`]). Any request line gets a `200 text/plain` reply.
pub fn serve_metrics<F>(addr: &str, collect: F) -> io::Result<MetricsServer>
where
    F: Fn() -> String + Send + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("tps-metrics".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = answer_scrape(stream, &collect);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok(MetricsServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

fn answer_scrape<F: Fn() -> String>(mut stream: TcpStream, collect: &F) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head (best effort — any request earns a scrape).
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = collect();
    let mut reply = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    reply.push_str(&body);
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

/// Scrape `addr` once: GET the exposition, strip the HTTP head, return the
/// body. The client side of [`serve_metrics`], used by `tps top` and tests.
pub fn scrape(addr: &str) -> io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr:?}")))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/") => Ok(body.to_string()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed scrape response (no HTTP head)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;

    #[test]
    fn hist_lines_roundtrip() {
        let h = HistSnapshot::from_values("t.rt", &[100, 100, 5_000, 70]);
        let mut text = String::new();
        render_hist(&mut text, &h);
        let samples = parse_exposition(&text).unwrap();
        let count = samples
            .iter()
            .find(|s| s.metric == "tps_hist_count")
            .unwrap();
        assert_eq!(count.label("name"), Some("t.rt"));
        assert_eq!(count.value, 4.0);
        let sum = samples.iter().find(|s| s.metric == "tps_hist_sum").unwrap();
        assert_eq!(sum.value, 5_270.0);
        // Bucket lines are cumulative and end at the total.
        let last_bucket = samples
            .iter()
            .rfind(|s| s.metric == "tps_hist_bucket")
            .unwrap();
        assert_eq!(last_bucket.value, 4.0);
        // Quantile lines match the snapshot's own answers.
        for q in EXPORT_QUANTILES {
            let line = samples
                .iter()
                .find(|s| s.metric == "tps_hist_quantile" && s.label("q") == Some(&format!("{q}")))
                .unwrap();
            assert_eq!(line.value, h.quantile(q) as f64);
        }
    }

    #[test]
    fn escaped_labels_roundtrip() {
        let mut text = String::new();
        push_line(
            &mut text,
            "tps_gauge",
            &[("name", "weird \"x\\y\"\nz")],
            1.5,
        );
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples[0].label("name"), Some("weird \"x\\y\"\nz"));
        assert_eq!(samples[0].value, 1.5);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse_exposition("tps_counter{name=\"a\"} 1\nnot a line at all }{").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn end_to_end_scrape_over_tcp() {
        static H: Hist = Hist::new("test.export.scrape.ns");
        H.record(1_000);
        let server = serve_metrics("127.0.0.1:0", render_exposition).unwrap();
        let body = scrape(&server.addr().to_string()).unwrap();
        let samples = parse_exposition(&body).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.metric == "tps_hist_count"
                && s.label("name") == Some("test.export.scrape.ns")));
        server.shutdown();
    }
}
