//! Phase timers for run-time dissection (Fig. 5 of the paper).
//!
//! [`PhaseTimer`] records named, ordered phases of a run. 2PS-L reports
//! `degree → clustering → partitioning`; other partitioners report whatever
//! phases they have. Durations are wall-clock, measured by
//! [`Span::end`](crate::Span::end) — the timer is the human-readable summary
//! of the same measurements the trace records as span events (see the
//! [`phase_span!`](crate::phase_span) macro).

use std::time::Duration;

/// Ordered list of named phase durations.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Record an externally measured duration.
    pub fn record(&mut self, name: &str, d: Duration) {
        self.phases.push((name.to_string(), d));
    }

    /// All recorded phases in order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total duration across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of the phase named `name` (sums duplicates, e.g. repeated
    /// clustering passes).
    pub fn get(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Fraction of total time spent in `name` (0 when the total is zero).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(name).as_secs_f64() / total
        }
    }

    /// Merge another timer's phases after this one's.
    pub fn extend(&mut self, other: PhaseTimer) {
        self.phases.extend(other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = PhaseTimer::new();
        t.record("a", Duration::from_millis(10));
        t.record("b", Duration::from_millis(30));
        assert_eq!(t.phases().len(), 2);
        assert_eq!(t.phases()[0].0, "a");
        assert_eq!(t.total(), Duration::from_millis(40));
    }

    #[test]
    fn duplicate_phases_sum() {
        let mut t = PhaseTimer::new();
        t.record("cluster", Duration::from_millis(5));
        t.record("cluster", Duration::from_millis(7));
        assert_eq!(t.get("cluster"), Duration::from_millis(12));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = PhaseTimer::new();
        t.record("x", Duration::from_millis(25));
        t.record("y", Duration::from_millis(75));
        assert!((t.fraction("x") - 0.25).abs() < 1e-9);
        assert!((t.fraction("y") - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_timer_fraction_is_zero() {
        let t = PhaseTimer::new();
        assert_eq!(t.fraction("anything"), 0.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = PhaseTimer::new();
        a.record("a", Duration::from_millis(1));
        let mut b = PhaseTimer::new();
        b.record("b", Duration::from_millis(2));
        a.extend(b);
        assert_eq!(a.phases().len(), 2);
    }

    #[test]
    fn span_duration_feeds_timer() {
        let mut t = PhaseTimer::new();
        let s = crate::span("measured");
        t.record("measured", s.end());
        assert_eq!(t.phases().len(), 1);
    }
}
