//! Mergeable log-bucketed latency histograms.
//!
//! A [`Hist`] is a `static` registry value like [`Counter`](crate::Counter):
//! it self-registers on first record, costs a couple of relaxed atomic ops
//! per sample, and never takes a lock on the hot path. Buckets grow by a
//! factor of √2 ([`NUM_BUCKETS`] of them, covering [`MIN_VALUE`] up to
//! 2³⁵ ≈ 34 s when the unit is nanoseconds; the last bucket is unbounded
//! and reports the exact max), so any reported quantile is within one
//! bucket — a bounded relative error of √2 − 1 ≈ 41 % worst case, and the
//! reported value is always an *upper* bound of the true quantile's bucket.
//!
//! Snapshots ([`HistSnapshot`]) are plain data: exact to merge (per-bucket
//! addition — associative and commutative), cheap to ship, and the source
//! for quantile queries and the text exposition in [`export`](crate::export).
//!
//! ```
//! use tps_obs::Hist;
//!
//! static LOOKUP_NS: Hist = Hist::new("doc.example.lookup.ns");
//! LOOKUP_NS.record(1_250);
//! let snap = LOOKUP_NS.snapshot();
//! assert!(snap.count() >= 1);
//! assert!(snap.quantile(0.5) >= 1_250);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of buckets per histogram. 64 √2-steps span a 2³² dynamic range.
pub const NUM_BUCKETS: usize = 64;

/// Values below this land in bucket 0 (2³ = 8) — small enough that batch
/// sizes resolve, while 64 √2-steps still reach 2³⁵ (≈ 34 s in ns).
pub const MIN_VALUE: u64 = 1 << MIN_SHIFT;

const MIN_SHIFT: u32 = 3;

/// Upper bound (exclusive) of bucket `i`; the last bucket is unbounded.
///
/// Even buckets end at a power of two, odd buckets at √2 × a power of two
/// (computed in fixed point so the table is `const`).
pub const fn bucket_bound(i: usize) -> u64 {
    let octave = MIN_SHIFT + (i as u32).div_ceil(2);
    if (i + 1).is_multiple_of(2) {
        1u64 << octave
    } else {
        // floor(√2 · 2^octave): √2 in 16.16 fixed point is 92681.9…;
        // u128 keeps the multiply exact for every octave in range.
        (((1u128 << octave) * 92682) >> 16) as u64
    }
}

/// Bucket index for a value: integer-only (leading_zeros + one compare).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < MIN_VALUE {
        return 0;
    }
    let octave = 63 - v.leading_zeros(); // 2^octave <= v
    let base = 2 * (octave - MIN_SHIFT) as usize;
    let idx = base + (v >= bucket_bound(base)) as usize;
    if idx >= NUM_BUCKETS {
        NUM_BUCKETS - 1
    } else {
        idx
    }
}

/// A named, process-global, mergeable latency histogram.
///
/// Construct as a `static` with [`Hist::new`]; appears in
/// [`hists_snapshot`] after its first [`record`](Hist::record).
pub struct Hist {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Hist>> = Mutex::new(Vec::new());

/// Global switch for metric recording (histograms); **on** by default.
///
/// The instrumented path is the default everywhere; the only intended user
/// of the off state is the `metrics_overhead` bench, which measures the
/// cost of the instrumentation itself.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> std::sync::MutexGuard<'static, Vec<&'static Hist>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether histogram recording is enabled (default: true).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable histogram recording (bench-only; counters and gauges
/// are unaffected). Recording never changes served answers either way.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

impl Hist {
    /// An empty histogram with a hierarchical dotted `name`
    /// (e.g. `"serve.op.lookup.ns"`). `const`, so usable in `static` items.
    pub const fn new(name: &'static str) -> Hist {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Hist {
            name,
            buckets: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample (relaxed; safe from any thread; lock-free).
    ///
    /// A no-op when [`metrics_enabled`] is off.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// A consistent-enough point-in-time copy (buckets read relaxed).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        for (out, b) in counts.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            name: self.name.to_string(),
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn register(&'static self) {
        let mut reg = registry();
        // Double-check under the lock so concurrent first records register once.
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }
}

/// Snapshot of every registered histogram, sorted by name.
pub fn hists_snapshot() -> Vec<HistSnapshot> {
    let reg = registry();
    let mut out: Vec<HistSnapshot> = reg.iter().map(|h| h.snapshot()).collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Reset every registered histogram to empty (test / bench isolation).
pub fn reset_hists() {
    for h in registry().iter() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-data histogram: per-bucket counts plus exact sum and max.
///
/// Merging is per-bucket addition, so it is exact, associative and
/// commutative; quantiles report the (exclusive) upper bound of the bucket
/// holding the requested rank, which bounds the relative error by the √2
/// bucket width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Histogram name (dotted hierarchy, as registered).
    pub name: String,
    /// Per-bucket sample counts (bucket `i` covers `[bound(i−1), bound(i))`).
    pub counts: [u64; NUM_BUCKETS],
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot with the given name.
    pub fn empty(name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            counts: [0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Build a snapshot from raw values (tests, parsers).
    pub fn from_values(name: &str, values: &[u64]) -> HistSnapshot {
        let mut s = HistSnapshot::empty(name);
        for &v in values {
            s.counts[bucket_index(v)] += 1;
            s.sum += v;
            s.max = s.max.max(v);
        }
        s
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): the upper bound of the bucket
    /// containing the sample of that rank, clamped to the exact max for the
    /// last bucket. Returns 0 when the histogram is empty.
    ///
    /// For any recorded value `t` in an in-range bucket the reported value
    /// `r` satisfies `t ≤ r < √2·t` (+1 for integer-floor bounds) — the
    /// bounded relative error pinned by the property tests.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based; q ≤ 0 → first, q ≥ 1 → last.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == NUM_BUCKETS - 1 {
                    self.max
                } else {
                    bucket_bound(i)
                };
            }
        }
        self.max
    }

    /// Merge another snapshot into this one (exact per-bucket addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_grow_by_sqrt2() {
        assert_eq!(bucket_bound(1), 16);
        assert_eq!(bucket_bound(3), 32);
        // Odd-index (√2) bounds sit strictly between the powers of two.
        for i in (0..NUM_BUCKETS - 2).step_by(2) {
            assert!(
                bucket_bound(i)
                    > if i == 0 {
                        MIN_VALUE
                    } else {
                        bucket_bound(i - 1)
                    }
            );
            assert!(bucket_bound(i) < bucket_bound(i + 1));
        }
        // Ratio between consecutive bounds stays within [1.30, 1.50].
        for i in 1..NUM_BUCKETS - 1 {
            let r = bucket_bound(i) as f64 / bucket_bound(i - 1) as f64;
            assert!((1.30..=1.50).contains(&r), "bucket {i}: ratio {r}");
        }
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..NUM_BUCKETS - 1 {
            let hi = bucket_bound(i);
            assert_eq!(bucket_index(hi - 1), i, "below bound {hi}");
            assert_eq!(bucket_index(hi), i + 1, "at bound {hi}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_snapshot_quantiles() {
        static H: Hist = Hist::new("test.hist.quantiles");
        for v in [100u64, 200, 300, 400, 100_000] {
            H.record(v);
        }
        let s = H.snapshot();
        assert!(s.count() >= 5);
        assert_eq!(s.max, 100_000);
        // Rank-3 sample is 300 (bucket [256, 362)); the reported p50 is the
        // bucket's upper bound: 300 ≤ p50 < √2·300.
        let p50 = s.quantile(0.5);
        assert!((300..=424).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) >= s.quantile(0.5));
    }

    #[test]
    fn merge_is_exact() {
        let a = HistSnapshot::from_values("m", &[100, 5_000]);
        let b = HistSnapshot::from_values("m", &[70, 1_000_000]);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(
            ab,
            HistSnapshot::from_values("m", &[100, 5_000, 70, 1_000_000])
        );
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        static H: Hist = Hist::new("test.hist.disabled");
        set_metrics_enabled(false);
        H.record(123);
        set_metrics_enabled(true);
        assert_eq!(H.snapshot().count(), 0);
        H.record(123);
        assert_eq!(H.snapshot().count(), 1);
    }
}
