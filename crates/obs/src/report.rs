//! Span-forest reconstruction and the `tps report` renderer.
//!
//! [`build_span_forest`] replays a trace's events per `(worker, thread)`
//! timeline with strict stack discipline: every close must match the most
//! recent open on that thread, timestamps must be monotonic per thread, and
//! no span may be left open. This is the invariant the recorder's ring
//! drains are tested against, and it is what makes a trace trustworthy
//! enough to reproduce the paper's Fig. 5 phase breakdown.

use std::collections::BTreeMap;

use crate::recorder::{EventKind, TraceEvent};
use crate::trace::Trace;

/// A reconstructed span: name, bounds, nested children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Open timestamp (ns, worker-local epoch).
    pub start_ns: u64,
    /// Close timestamp (ns, worker-local epoch).
    pub end_ns: u64,
    /// Spans opened and closed while this one was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// All root spans recorded by one `(worker, thread)` timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSpans {
    /// Worker id (0 = local process / coordinator).
    pub worker: u32,
    /// Thread id within the worker.
    pub tid: u32,
    /// Top-level spans in chronological order.
    pub roots: Vec<SpanNode>,
}

/// Rebuild the span forest from events, validating stack discipline and
/// per-thread timestamp monotonicity. Mark events only participate in the
/// monotonicity check.
pub fn build_span_forest(events: &[TraceEvent]) -> Result<Vec<ThreadSpans>, String> {
    let mut by_thread: BTreeMap<(u32, u32), Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_thread.entry((e.worker, e.tid)).or_default().push(e);
    }
    let mut forest = Vec::new();
    for ((worker, tid), events) in by_thread {
        let mut stack: Vec<SpanNode> = Vec::new();
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut last_ns = 0u64;
        for e in events {
            if e.ns < last_ns {
                return Err(format!(
                    "worker {worker} tid {tid}: timestamp goes backwards at {:?} ({} < {last_ns})",
                    e.name, e.ns
                ));
            }
            last_ns = e.ns;
            match e.kind {
                EventKind::Open => stack.push(SpanNode {
                    name: e.name.clone(),
                    start_ns: e.ns,
                    end_ns: e.ns,
                    children: Vec::new(),
                }),
                EventKind::Close => {
                    let mut node = stack.pop().ok_or_else(|| {
                        format!("worker {worker} tid {tid}: orphan close of {:?}", e.name)
                    })?;
                    if node.name != e.name {
                        return Err(format!(
                            "worker {worker} tid {tid}: close of {:?} while {:?} is open",
                            e.name, node.name
                        ));
                    }
                    node.end_ns = e.ns;
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                EventKind::Mark => {}
            }
        }
        if let Some(open) = stack.last() {
            return Err(format!(
                "worker {worker} tid {tid}: span {:?} never closed",
                open.name
            ));
        }
        forest.push(ThreadSpans { worker, tid, roots });
    }
    Ok(forest)
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Per-worker root-span durations aggregated by name, preserving
/// first-appearance order within each worker.
fn phase_rows(forest: &[ThreadSpans]) -> BTreeMap<u32, Vec<(String, u64)>> {
    let mut per_worker: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for thread in forest {
        let rows = per_worker.entry(thread.worker).or_default();
        for root in &thread.roots {
            match rows.iter_mut().find(|(n, _)| *n == root.name) {
                Some((_, d)) => *d += root.duration_ns(),
                None => rows.push((root.name.clone(), root.duration_ns())),
            }
        }
    }
    per_worker
}

fn render_phase_table(out: &mut String, title: &str, rows: &[(String, u64)]) {
    let total: u64 = rows.iter().map(|(_, d)| *d).sum();
    out.push_str(title);
    out.push('\n');
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
    for (name, d) in rows {
        let frac = if total == 0 {
            0.0
        } else {
            100.0 * *d as f64 / total as f64
        };
        out.push_str(&format!(
            "  {name:<width$}  {:>10.3} s  {frac:>5.1}%\n",
            secs(*d)
        ));
    }
    out.push_str(&format!("  {:<width$}  {:>10.3} s\n", "total", secs(total)));
}

/// Render the chronological timeline of mark events whose name starts with
/// `prefix`, if any.
fn render_mark_timeline(out: &mut String, trace: &Trace, prefix: &str, title: &str) {
    let mut marks: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Mark && e.name.starts_with(prefix))
        .collect();
    if marks.is_empty() {
        return;
    }
    marks.sort_by_key(|e| e.ns);
    out.push_str(title);
    out.push('\n');
    for e in marks {
        out.push_str(&format!(
            "  [+{:>9.3} s] w{} {}{}\n",
            secs(e.ns),
            e.worker,
            e.name,
            e.detail
                .as_deref()
                .map(|d| format!(" — {d}"))
                .unwrap_or_default()
        ));
    }
}

/// Per-op aggregation of a serving session's request spans (`serve.*`
/// roots): count, total and mean duration per op, first-appearance order.
fn serve_op_rows(forest: &[ThreadSpans]) -> Vec<(String, u64, u64)> {
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    for thread in forest {
        for root in thread.roots.iter().filter(|r| r.name.starts_with("serve.")) {
            match rows.iter_mut().find(|(n, ..)| *n == root.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += root.duration_ns();
                }
                None => rows.push((root.name.clone(), 1, root.duration_ns())),
            }
        }
    }
    rows
}

/// Render the human-readable report for a parsed trace: phase breakdown per
/// worker (plus the across-worker critical path for dist runs), the per-op
/// breakdown and delta timeline for serve traces, top counters, and the
/// fault/retry timeline.
pub fn render_report(trace: &Trace) -> Result<String, String> {
    let mut out = String::new();
    if let Some(meta) = &trace.meta {
        out.push_str(&format!(
            "trace: cmd={} algo={} k={} alpha={}",
            meta.cmd, meta.algo, meta.k, meta.alpha
        ));
        if meta.edges > 0 {
            out.push_str(&format!(" vertices={} edges={}", meta.vertices, meta.edges));
        }
        out.push('\n');
    }
    if trace.truncated {
        out.push_str("warning: trace file was truncated (torn final line dropped)\n");
    }

    let forest = build_span_forest(&trace.events)?;

    // A serving session's trace: request spans aggregate per op (a serve
    // daemon has thousands of identical roots across connection threads —
    // count and mean are the readable view, not one row per request).
    let serve_ops = serve_op_rows(&forest);
    if !serve_ops.is_empty() {
        out.push_str("\nserve ops:\n");
        let width = serve_ops.iter().map(|(n, ..)| n.len()).max().unwrap_or(5);
        for (name, count, total) in &serve_ops {
            out.push_str(&format!(
                "  {name:<width$}  {count:>9} ops  {:>10.3} s total  {:>9.1} µs mean\n",
                secs(*total),
                *total as f64 / *count as f64 / 1e3
            ));
        }
    }

    let per_worker = phase_rows(&forest);
    let workers: Vec<u32> = per_worker.keys().copied().collect();

    for (worker, rows) in &per_worker {
        // Serve request spans are already aggregated above.
        let rows: Vec<(String, u64)> = rows
            .iter()
            .filter(|(n, _)| !n.starts_with("serve."))
            .cloned()
            .collect();
        if rows.is_empty() {
            continue;
        }
        let title = if *worker == 0 {
            if workers.len() > 1 {
                "\nphases (coordinator, w0):".to_string()
            } else {
                "\nphases:".to_string()
            }
        } else {
            format!("\nphases (worker w{worker}, shard {}):", worker - 1)
        };
        render_phase_table(&mut out, &title, &rows);
    }

    // Dist runs: the per-phase critical path is the slowest worker in each
    // phase — the quantity the linear run-time claim bounds.
    if workers.iter().filter(|w| **w > 0).count() > 1 {
        let mut critical: Vec<(String, u64)> = Vec::new();
        for (worker, rows) in &per_worker {
            if *worker == 0 {
                continue;
            }
            for (name, d) in rows {
                match critical.iter_mut().find(|(n, _)| n == name) {
                    Some((_, max)) => *max = (*max).max(*d),
                    None => critical.push((name.clone(), *d)),
                }
            }
        }
        render_phase_table(
            &mut out,
            "\nper-shard critical path (max across workers):",
            &critical,
        );
    }

    if !trace.counters.is_empty() {
        let mut counters = trace.counters.clone();
        counters.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, &a.1).cmp(&(b.0, &b.1))));
        out.push_str("\ntop counters:\n");
        let shown = counters.len().min(20);
        for (worker, name, value) in &counters[..shown] {
            out.push_str(&format!("  w{worker}  {name:<32}  {value:>14}\n"));
        }
        if counters.len() > shown {
            out.push_str(&format!("  … {} more\n", counters.len() - shown));
        }
    }

    render_mark_timeline(&mut out, trace, "dist.fault.", "\nfault timeline:");
    // The serving session's mutation story: every delta batch and overlay
    // compaction, in order.
    render_mark_timeline(&mut out, trace, "serve.", "\ndelta timeline:");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &str, worker: u32, tid: u32, ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.into(),
            worker,
            tid,
            ns,
            detail: None,
        }
    }

    #[test]
    fn builds_nested_forest() {
        let events = vec![
            ev(EventKind::Open, "outer", 0, 1, 0),
            ev(EventKind::Open, "inner", 0, 1, 10),
            ev(EventKind::Close, "inner", 0, 1, 20),
            ev(EventKind::Close, "outer", 0, 1, 30),
            ev(EventKind::Open, "solo", 0, 2, 5),
            ev(EventKind::Close, "solo", 0, 2, 6),
        ];
        let forest = build_span_forest(&events).unwrap();
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].roots.len(), 1);
        assert_eq!(forest[0].roots[0].children.len(), 1);
        assert_eq!(forest[0].roots[0].children[0].name, "inner");
        assert_eq!(forest[0].roots[0].duration_ns(), 30);
    }

    #[test]
    fn orphan_close_is_rejected() {
        let events = vec![ev(EventKind::Close, "x", 0, 1, 5)];
        let err = build_span_forest(&events).unwrap_err();
        assert!(err.contains("orphan close"), "got: {err}");
    }

    #[test]
    fn mismatched_close_is_rejected() {
        let events = vec![
            ev(EventKind::Open, "a", 0, 1, 0),
            ev(EventKind::Close, "b", 0, 1, 1),
        ];
        assert!(build_span_forest(&events).is_err());
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let events = vec![ev(EventKind::Open, "a", 0, 1, 0)];
        let err = build_span_forest(&events).unwrap_err();
        assert!(err.contains("never closed"), "got: {err}");
    }

    #[test]
    fn backwards_timestamps_are_rejected() {
        let events = vec![
            ev(EventKind::Open, "a", 0, 1, 10),
            ev(EventKind::Close, "a", 0, 1, 5),
        ];
        let err = build_span_forest(&events).unwrap_err();
        assert!(err.contains("backwards"), "got: {err}");
    }

    #[test]
    fn report_renders_phases_counters_and_faults() {
        let trace = Trace {
            events: vec![
                ev(EventKind::Open, "degree", 0, 1, 0),
                ev(EventKind::Close, "degree", 0, 1, 1_000_000),
                ev(EventKind::Open, "clustering", 0, 1, 1_000_000),
                ev(EventKind::Close, "clustering", 0, 1, 4_000_000),
                ev(EventKind::Mark, "dist.fault.retry", 0, 1, 4_100_000),
                // two dist workers with the same phase
                ev(EventKind::Open, "degree", 1, 1, 0),
                ev(EventKind::Close, "degree", 1, 1, 2_000_000),
                ev(EventKind::Open, "degree", 2, 1, 0),
                ev(EventKind::Close, "degree", 2, 1, 3_000_000),
            ],
            counters: vec![
                (0, "io.v2.chunks_decoded".into(), 100),
                (1, "dist.frames.sent".into(), 7),
            ],
            ..Trace::default()
        };
        let report = render_report(&trace).unwrap();
        assert!(report.contains("degree"));
        assert!(report.contains("critical path"));
        assert!(report.contains("dist.fault.retry"));
        assert!(report.contains("io.v2.chunks_decoded"));
        // critical path for degree is the slower worker: 3ms
        assert!(report.contains("0.003"), "got:\n{report}");
    }

    #[test]
    fn serve_trace_renders_per_op_rows_and_delta_timeline() {
        let mut delta = ev(EventKind::Mark, "serve.delta", 0, 2, 3_500);
        delta.detail = Some("+2 -1 epoch 1".into());
        let trace = Trace {
            events: vec![
                // Two lookup requests on one connection thread, one update
                // on another — per-op aggregation, not one row per request.
                ev(EventKind::Open, "serve.lookup", 0, 1, 0),
                ev(EventKind::Close, "serve.lookup", 0, 1, 1_000),
                ev(EventKind::Open, "serve.lookup", 0, 1, 2_000),
                ev(EventKind::Close, "serve.lookup", 0, 1, 5_000),
                ev(EventKind::Open, "serve.update", 0, 2, 3_000),
                delta,
                ev(EventKind::Close, "serve.update", 0, 2, 4_000),
            ],
            ..Trace::default()
        };
        let report = render_report(&trace).unwrap();
        assert!(report.contains("serve ops:"), "got:\n{report}");
        assert!(report.contains("serve.lookup"), "got:\n{report}");
        assert!(report.contains("2 ops"), "got:\n{report}");
        // mean of 1µs and 3µs lookups
        assert!(report.contains("2.0 µs mean"), "got:\n{report}");
        assert!(report.contains("delta timeline:"), "got:\n{report}");
        assert!(report.contains("+2 -1 epoch 1"), "got:\n{report}");
        // No redundant per-request phase table for the serve spans.
        assert!(!report.contains("phases:"), "got:\n{report}");
    }

    #[test]
    fn phase_durations_match_fig5_fractions() {
        // A serial run whose phases are 25% / 75% must report those
        // fractions — the same numbers PhaseTimer::fraction produces.
        let trace = Trace {
            events: vec![
                ev(EventKind::Open, "degree", 0, 1, 0),
                ev(EventKind::Close, "degree", 0, 1, 25_000_000),
                ev(EventKind::Open, "clustering", 0, 1, 25_000_000),
                ev(EventKind::Close, "clustering", 0, 1, 100_000_000),
            ],
            ..Trace::default()
        };
        let report = render_report(&trace).unwrap();
        assert!(report.contains("25.0%"), "got:\n{report}");
        assert!(report.contains("75.0%"), "got:\n{report}");
    }
}
