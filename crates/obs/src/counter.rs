//! Always-on counter registry.
//!
//! Counters are `static` [`Counter`] values with hierarchical dotted names.
//! They self-register into a global registry on first use, cost one relaxed
//! `fetch_add` per update, and are *always* counted — the values reflect work
//! that happens identically whether tracing is enabled or not, so snapshots
//! never perturb partitioning output.
//!
//! ```
//! use tps_obs::Counter;
//!
//! static CHUNKS: Counter = Counter::new("doc.example.chunks");
//! CHUNKS.add(3);
//! assert!(CHUNKS.get() >= 3);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A named, process-global monotonic counter.
///
/// Construct as a `static` with [`Counter::new`]; the counter appears in
/// [`counters_snapshot`] after its first [`add`](Counter::add) or
/// [`incr`](Counter::incr).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<&'static Counter>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

impl Counter {
    /// A zero counter with a hierarchical dotted `name`
    /// (e.g. `"io.spill.bytes"`). `const`, so usable in `static` items.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the counter (relaxed; safe from any thread).
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// Add one to the counter.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        let mut reg = registry();
        // Double-check under the lock so concurrent first adds register once.
        if !self.registered.swap(true, Ordering::Relaxed) {
            reg.push(self);
        }
    }
}

/// Snapshot of every registered counter, sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let reg = registry();
    let mut out: Vec<(String, u64)> = reg.iter().map(|c| (c.name.to_string(), c.get())).collect();
    out.sort();
    out
}

/// Reset every registered counter to zero (test / bench isolation).
pub fn reset_counters() {
    for c in registry().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static A: Counter = Counter::new("test.counter.alpha");
    static B: Counter = Counter::new("test.counter.beta");

    #[test]
    fn counts_and_registers_once() {
        A.add(2);
        A.incr();
        B.add(5);
        assert!(A.get() >= 3);
        let snap = counters_snapshot();
        assert_eq!(
            snap.iter()
                .filter(|(n, _)| n == "test.counter.alpha")
                .count(),
            1
        );
        // Snapshot is sorted by name.
        let names: Vec<&String> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_adds_sum() {
        static C: Counter = Counter::new("test.counter.concurrent");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        C.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(C.get() % 1000, 0);
        assert!(C.get() >= 4000);
    }
}
