//! Observability substrate for the `twophase` workspace.
//!
//! The paper's central claim is a *linear run-time budget* per phase; this
//! crate makes every run able to show where that budget went. It is std-only
//! (no external dependencies, like the rest of the workspace) and provides
//! four layers:
//!
//! * [`counter`] — a registry of always-on, relaxed-atomic [`Counter`]s with
//!   hierarchical names (`io.v2.chunks_decoded`, `dist.frames.sent`, …).
//!   Counting costs one `fetch_add` and never changes partitioning output.
//! * [`recorder`] — a thread-local event/span recorder behind a global
//!   enable flag. When disabled (the default), [`span`] is a branch and a
//!   clock read; when enabled it appends open/close/mark events into a
//!   fixed-size per-thread ring that is drained at barriers.
//! * [`trace`] — a flat JSON-lines sink and parser for traces: one meta
//!   line, one line per event, one line per counter value. Dist workers ship
//!   their drained events to the coordinator inside the `ShardDone` barrier
//!   frame, so a single file describes the whole cluster.
//! * [`report`] — reconstructs the span forest from a trace (validating
//!   nesting and per-thread timestamp monotonicity) and renders the phase
//!   breakdown, top counters, and fault timeline (`tps report`).
//!
//! On top of the run-scoped layers sits the **live metrics plane** for
//! long-running modes (`tps serve`, the dist coordinator):
//!
//! * [`hist`] — mergeable log-bucketed latency [`Hist`]ograms: fixed
//!   √2-spaced buckets, lock-free relaxed-atomic record, exact merge,
//!   quantiles with bounded relative error.
//! * [`gauge`] — last-value [`Gauge`]s (static registry mirroring the
//!   counters, plus dynamically named gauges for per-shard state).
//! * [`export`] — Prometheus-style text exposition + a std-only scrape
//!   listener ([`serve_metrics`]) and client ([`scrape`]); all encoding
//!   happens on the scrape thread.
//!
//! [`timer::PhaseTimer`] (the Fig. 5 run-time dissection table) also lives
//! here now; spans are the single timing source and callers record
//! `span.end()` durations into the timer for human-readable summaries.

pub mod counter;
pub mod export;
pub mod gauge;
pub mod hist;
pub mod recorder;
pub mod report;
pub mod timer;
pub mod trace;

pub use counter::{counters_snapshot, reset_counters, Counter};
pub use export::{
    parse_exposition, render_exposition, render_hist, scrape, serve_metrics, MetricsServer, Sample,
    EXPORT_QUANTILES,
};
pub use gauge::{gauges_snapshot, reset_gauges, set_gauge, Gauge};
pub use hist::{
    bucket_bound, bucket_index, hists_snapshot, metrics_enabled, reset_hists, set_metrics_enabled,
    Hist, HistSnapshot, MIN_VALUE, NUM_BUCKETS,
};
pub use recorder::{
    drain_local, enabled, instant, instant_with, record_remote, record_remote_counters,
    reset_events, set_enabled, span, take_events, take_remote_counters, take_thread_events,
    EventKind, Span, TraceEvent,
};
pub use report::{build_span_forest, render_report, SpanNode, ThreadSpans};
pub use timer::PhaseTimer;
pub use trace::{render_trace, write_trace, Trace, TraceMeta};

/// Run `$body` inside a span named `$name`, recording the measured duration
/// into `$timer` (a [`PhaseTimer`]) under the same name.
///
/// This is the migration shim for the old `Instant::now()` / `record()`
/// pattern: one expression, one timing source.
#[macro_export]
macro_rules! phase_span {
    ($timer:expr, $name:expr, $body:expr) => {{
        let __span = $crate::span($name);
        let __out = $body;
        $timer.record($name, __span.end());
        __out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_span_macro_records_into_timer() {
        let mut timer = PhaseTimer::new();
        let v = phase_span!(timer, "work", { 2 + 3 });
        assert_eq!(v, 5);
        assert_eq!(timer.phases().len(), 1);
        assert_eq!(timer.phases()[0].0, "work");
    }
}
