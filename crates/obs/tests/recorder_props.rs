//! Property tests for the recorder and trace layers.
//!
//! The core invariant: per-thread rings drained at barriers reconstruct a
//! consistent span tree — no orphan closes, matching open/close names,
//! monotonic per-thread timestamps — across 1/2/4/8 recording threads. Plus:
//! any byte-prefix of a rendered trace parses without panicking (torn-write
//! tolerance for `tps report`).

use std::sync::Mutex;

use proptest::collection::vec;
use proptest::prelude::*;
use tps_obs::{
    build_span_forest, drain_local, instant, render_trace, reset_events, set_enabled, span,
    take_events, EventKind, Span, SpanNode, Trace, TraceEvent, TraceMeta,
};

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

// The recorder is process-global; serialise test bodies that enable it.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Interpret a script of ops on the calling thread: open a span, close the
/// innermost span, or record a mark (occasionally draining mid-script, as a
/// barrier would). Returns `(opens, marks)` executed.
fn run_script(script: &[u32]) -> (usize, usize) {
    let mut stack: Vec<Span> = Vec::new();
    let mut opens = 0usize;
    let mut marks = 0usize;
    for &op in script {
        match op % 3 {
            0 => {
                stack.push(span(NAMES[(op as usize / 3) % NAMES.len()]));
                opens += 1;
            }
            1 => {
                if let Some(s) = stack.pop() {
                    s.end();
                }
            }
            _ => {
                instant("mark");
                marks += 1;
                if op % 2 == 0 {
                    drain_local();
                }
            }
        }
    }
    while let Some(s) = stack.pop() {
        s.end();
    }
    drain_local();
    (opens, marks)
}

fn count_spans(nodes: &[SpanNode]) -> usize {
    nodes.iter().map(|n| 1 + count_spans(&n.children)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn drained_rings_reconstruct_consistent_span_tree(
        tsel in 0usize..4,
        scripts in vec(vec(0u32..12, 0..48), 8..9),
    ) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let threads = [1usize, 2, 4, 8][tsel];
        reset_events();
        set_enabled(true);
        let handles: Vec<_> = scripts
            .iter()
            .take(threads)
            .cloned()
            .map(|s| std::thread::spawn(move || run_script(&s)))
            .collect();
        let mut opens = 0usize;
        let mut marks = 0usize;
        for h in handles {
            let (o, m) = h.join().unwrap();
            opens += o;
            marks += m;
        }
        set_enabled(false);
        let events = take_events();

        // Every open got a close, every mark survived the drains.
        prop_assert_eq!(events.len(), opens * 2 + marks);

        // Stack discipline + per-thread monotonicity hold after the drains.
        let forest = build_span_forest(&events);
        prop_assert!(forest.is_ok(), "inconsistent span tree: {:?}", forest.err());
        let forest = forest.unwrap();
        let rebuilt: usize = forest.iter().map(|t| count_spans(&t.roots)).sum();
        prop_assert_eq!(rebuilt, opens);

        // Events came from at most `threads` distinct timelines.
        prop_assert!(forest.len() <= threads);
    }

    #[test]
    fn any_trace_prefix_parses_without_panicking(
        script in vec(0u32..8, 0..64),
        cut in 0usize..1 << 16,
    ) {
        // Build a synthetic well-nested event stream (no recorder needed).
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut depth = 0u32;
        let mut open_names: Vec<&str> = Vec::new();
        let mut ns = 0u64;
        for &op in &script {
            ns += u64::from(op) + 1;
            if op % 2 == 0 || depth == 0 {
                let name = NAMES[(op as usize / 2) % NAMES.len()];
                open_names.push(name);
                depth += 1;
                events.push(TraceEvent {
                    kind: EventKind::Open,
                    name: name.into(),
                    worker: 0,
                    tid: 1,
                    ns,
                    detail: None,
                });
            } else {
                let name = open_names.pop().unwrap();
                depth -= 1;
                events.push(TraceEvent {
                    kind: EventKind::Close,
                    name: name.into(),
                    worker: 0,
                    tid: 1,
                    ns,
                    detail: None,
                });
            }
        }
        while let Some(name) = open_names.pop() {
            ns += 1;
            events.push(TraceEvent {
                kind: EventKind::Close,
                name: name.into(),
                worker: 0,
                tid: 1,
                ns,
                detail: None,
            });
        }
        let meta = TraceMeta {
            cmd: "partition".into(),
            algo: "2PS-L".into(),
            k: 8,
            alpha: 1.05,
            vertices: 10,
            edges: 20,
        };
        let counters = vec![(0u32, "io.v2.chunks_decoded".to_string(), 42u64)];
        let text = render_trace(&meta, &events, &counters);

        // The rendered trace is pure ASCII, so any byte cut is a char cut.
        let cut = cut % (text.len() + 1);
        let prefix = &text[..cut];
        let parsed = Trace::parse(prefix);
        // A prefix can only tear the final line, which parse tolerates.
        prop_assert!(parsed.is_ok(), "prefix rejected: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert!(parsed.events.len() <= events.len());
        // Whatever events survived are an exact prefix of the originals.
        prop_assert_eq!(&parsed.events[..], &events[..parsed.events.len()]);
    }
}
