//! Property tests for the live-metrics layer.
//!
//! Pins the histogram algebra (merge is exact, associative and
//! commutative), the quantile error bound (any reported quantile is an
//! upper bound of the true sample within one √2 bucket), registry snapshot
//! hygiene (sorted, one entry per name), and the exposition dialect
//! (render → parse is lossless for every name the escaper can produce).

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::collection::vec;
use proptest::prelude::*;
use tps_obs::{
    bucket_bound, counters_snapshot, gauges_snapshot, parse_exposition, render_exposition,
    render_hist, reset_gauges, set_gauge, Counter, HistSnapshot, EXPORT_QUANTILES, MIN_VALUE,
    NUM_BUCKETS,
};

// Gauge/counter registries are process-global; serialise tests that touch them.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Characters the exposition escaper must round-trip: dotted-name alphabet
/// plus the three escaped ones (`"`, `\`, `\n`). `\r` stays out — the text
/// exposition is line-oriented.
const NAME_CHARS: &[char] = &[
    'a', 'b', 'z', '0', '9', '.', '_', '/', '-', ' ', '"', '\\', '\n',
];

/// A label-value string over [`NAME_CHARS`].
fn gauge_name() -> impl Strategy<Value = String> {
    vec(0usize..NAME_CHARS.len(), 1..24)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_CHARS[i]).collect())
}

/// In-range sample values: at or above the bucket floor, below the last
/// (unbounded) bucket, so the √2 relative-error bound applies.
fn in_range_value() -> impl Strategy<Value = u64> {
    MIN_VALUE..bucket_bound(NUM_BUCKETS - 2)
}

/// Arbitrary sample values, capped so 64-element sums stay exactly
/// representable in the exposition's f64 lines (< 2⁵³).
fn any_value() -> impl Strategy<Value = u64> {
    0u64..1 << 45
}

/// A gauge write: name plus a small signed value (built from u32 — the
/// offline proptest has integer-range strategies only).
fn gauge_write() -> impl Strategy<Value = (String, f64)> {
    (gauge_name(), 0u32..2001).prop_map(|(n, v)| (n, f64::from(v) - 1000.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hist_merge_is_exact_associative_and_commutative(
        a in vec(any_value(), 0..64),
        b in vec(any_value(), 0..64),
        c in vec(any_value(), 0..64),
    ) {
        let (sa, sb, sc) = (
            HistSnapshot::from_values("m", &a),
            HistSnapshot::from_values("m", &b),
            HistSnapshot::from_values("m", &c),
        );

        // Merging equals bucketing the concatenation (exactness).
        let mut ab = sa.clone();
        ab.merge(&sb);
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &HistSnapshot::from_values("m", &concat));

        // Commutative: a·b == b·a.
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a·b)·c == a·(b·c).
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn quantiles_respect_the_sqrt2_relative_error_bound(
        mut values in vec(in_range_value(), 1..128),
        qi in 0u32..101,
    ) {
        let q = f64::from(qi) / 100.0;
        let s = HistSnapshot::from_values("q", &values);
        values.sort_unstable();

        // The reported quantile is the upper bound of the bucket holding
        // the rank-`ceil(q·n)` sample: t ≤ reported ≤ √2·t (+1 for the
        // integer-floor bucket bounds).
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let t = values[rank - 1];
        let reported = s.quantile(q);
        prop_assert!(reported >= t, "reported {} < true sample {}", reported, t);
        let ceiling = (t as f64 * std::f64::consts::SQRT_2) as u64 + 1;
        prop_assert!(
            reported <= ceiling,
            "reported {} > √2 bound {} for sample {}", reported, ceiling, t
        );

        // The extremes: p100 reports a value ≥ the exact max, p0 ≥ the min.
        prop_assert!(s.quantile(1.0) >= *values.last().unwrap());
        prop_assert!(s.quantile(0.0) >= values[0]);
    }

    #[test]
    fn gauge_and_counter_snapshots_are_sorted_and_collision_free(
        sets in vec(gauge_write(), 0..24),
    ) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        reset_gauges();
        static TOUCH: Counter = Counter::new("test.props.counter");
        TOUCH.incr();
        let mut want: BTreeMap<String, f64> = BTreeMap::new();
        for (name, v) in &sets {
            set_gauge(name, *v);
            want.insert(name.clone(), *v); // last write wins
        }

        for snap_names in [
            gauges_snapshot().into_iter().map(|(n, _)| n).collect::<Vec<_>>(),
            counters_snapshot().into_iter().map(|(n, _)| n).collect::<Vec<_>>(),
        ] {
            let mut sorted = snap_names.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(&snap_names, &sorted, "sorted, one entry per name");
        }
        let got: BTreeMap<String, f64> = gauges_snapshot().into_iter().collect();
        for (name, v) in &want {
            prop_assert_eq!(got.get(name), Some(v), "gauge {:?} lost its last write", name);
        }
        reset_gauges();
    }

    #[test]
    fn exposition_roundtrips_through_the_parser(
        values in vec(any_value(), 0..64),
        gauges in vec(gauge_write(), 0..8),
    ) {
        let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());

        // Histogram lines: cumulative buckets reconstruct the snapshot.
        let h = HistSnapshot::from_values("props.rt.ns", &values);
        let mut text = String::new();
        render_hist(&mut text, &h);
        let samples = parse_exposition(&text).unwrap();
        let mut rebuilt = HistSnapshot::empty("props.rt.ns");
        let mut prev = 0.0f64;
        for s in samples.iter().filter(|s| s.metric == "tps_hist_bucket") {
            prop_assert_eq!(s.label("name"), Some("props.rt.ns"));
            let le = s.label("le").unwrap();
            let idx = if le == "+Inf" {
                NUM_BUCKETS - 1
            } else {
                (0..NUM_BUCKETS - 1)
                    .find(|&i| bucket_bound(i).to_string() == le)
                    .expect("le matches a bucket bound")
            };
            rebuilt.counts[idx] = (s.value - prev) as u64;
            prev = s.value;
        }
        let find = |metric: &str| {
            samples
                .iter()
                .find(|s| s.metric == metric && s.label("name") == Some("props.rt.ns"))
                .map(|s| s.value)
        };
        rebuilt.sum = find("tps_hist_sum").unwrap() as u64;
        rebuilt.max = find("tps_hist_max").unwrap() as u64;
        prop_assert_eq!(&rebuilt.counts[..], &h.counts[..]);
        prop_assert_eq!(rebuilt.sum, h.sum);
        prop_assert_eq!(rebuilt.max, h.max);
        prop_assert_eq!(find("tps_hist_count").unwrap(), h.count() as f64);
        for q in EXPORT_QUANTILES {
            let line = samples
                .iter()
                .find(|s| {
                    s.metric == "tps_hist_quantile" && s.label("q") == Some(&format!("{q}"))
                })
                .unwrap();
            prop_assert_eq!(line.value, h.quantile(q) as f64);
        }

        // Gauge lines: arbitrary names (escapes included) survive the trip.
        reset_gauges();
        let mut want: BTreeMap<String, f64> = BTreeMap::new();
        for (name, v) in &gauges {
            set_gauge(name, *v);
            want.insert(name.clone(), *v);
        }
        let parsed = parse_exposition(&render_exposition()).unwrap();
        for (name, v) in &want {
            prop_assert!(
                parsed.iter().any(|s| s.metric == "tps_gauge"
                    && s.label("name") == Some(name)
                    && s.value == *v),
                "gauge {:?} -> {} missing from round-trip", name, v
            );
        }
        reset_gauges();
    }
}
