//! Quality metrics for hyperedge partitionings.
//!
//! Same objective as the paper's edge partitioning (§II-A), generalised:
//! `RF = (1/|covered V|) Σ_p |V(p)|`, where `V(p)` is the set of vertices
//! with at least one hyperedge on `p`; balance is measured on hyperedge
//! counts against `α·|H|/k`.

use tps_metrics::bitmatrix::ReplicationMatrix;
use tps_metrics::quality::PartitionMetrics;

use crate::model::Hyperedge;

/// Accumulates hypergraph partition quality hyperedge by hyperedge.
#[derive(Clone, Debug)]
pub struct HyperQualityTracker {
    matrix: ReplicationMatrix,
    loads: Vec<u64>,
    num_hyperedges: u64,
    total_pins: u64,
}

impl HyperQualityTracker {
    /// Tracker for `num_vertices` vertices and `k` partitions.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        HyperQualityTracker {
            matrix: ReplicationMatrix::new(num_vertices, k),
            loads: vec![0; k as usize],
            num_hyperedges: 0,
            total_pins: 0,
        }
    }

    /// Record the assignment of `h` to `p`.
    pub fn record(&mut self, h: &Hyperedge, p: u32) {
        for &v in h.pins() {
            self.matrix.set(v, p);
        }
        self.loads[p as usize] += 1;
        self.num_hyperedges += 1;
        self.total_pins += h.arity() as u64;
    }

    /// Finalise the metrics (same shape as the graph case for easy tabling).
    pub fn finish(&self) -> PartitionMetrics {
        let k = self.matrix.k();
        let covered = (0..self.matrix.num_vertices())
            .filter(|&v| self.matrix.replica_count(v as u32) > 0)
            .count() as u64;
        let total_replicas = self.matrix.total_replicas();
        let rf = if covered == 0 {
            0.0
        } else {
            total_replicas as f64 / covered as f64
        };
        let max_load = self.loads.iter().copied().max().unwrap_or(0);
        let min_load = self.loads.iter().copied().min().unwrap_or(0);
        let expected = self.num_hyperedges as f64 / k as f64;
        PartitionMetrics {
            k,
            num_edges: self.num_hyperedges,
            covered_vertices: covered,
            total_replicas,
            replication_factor: rf,
            max_load,
            min_load,
            alpha: if expected > 0.0 {
                max_load as f64 / expected
            } else {
                0.0
            },
            loads: self.loads.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_hyperedges_have_rf_one() {
        let mut t = HyperQualityTracker::new(6, 2);
        t.record(&Hyperedge::new(vec![0, 1, 2]), 0);
        t.record(&Hyperedge::new(vec![3, 4, 5]), 1);
        let m = t.finish();
        assert!((m.replication_factor - 1.0).abs() < 1e-12);
        assert_eq!(m.covered_vertices, 6);
    }

    #[test]
    fn shared_pin_across_partitions_replicates() {
        let mut t = HyperQualityTracker::new(5, 2);
        t.record(&Hyperedge::new(vec![0, 1, 2]), 0);
        t.record(&Hyperedge::new(vec![2, 3, 4]), 1);
        let m = t.finish();
        // Vertex 2 on both partitions: 6 replicas / 5 vertices.
        assert!((m.replication_factor - 6.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn balance_counts_hyperedges_not_pins() {
        let mut t = HyperQualityTracker::new(10, 2);
        t.record(&Hyperedge::new(vec![0, 1, 2, 3, 4, 5]), 0); // big arity
        t.record(&Hyperedge::new(vec![6, 7]), 1);
        t.record(&Hyperedge::new(vec![8, 9]), 1);
        let m = t.finish();
        assert_eq!(m.max_load, 2);
        assert_eq!(m.min_load, 1);
    }

    #[test]
    fn empty_tracker() {
        let t = HyperQualityTracker::new(4, 2);
        let m = t.finish();
        assert_eq!(m.num_edges, 0);
        assert_eq!(m.replication_factor, 0.0);
    }
}
