//! Hypergraph model and the streaming contract.

use std::io;

use tps_graph::types::VertexId;

/// A hyperedge: a non-empty set of member vertices ("pins").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Hyperedge {
    pins: Vec<VertexId>,
}

impl Hyperedge {
    /// Create a hyperedge from its pins. Duplicated pins are removed; order
    /// is normalised (sorted) so equality is set equality.
    ///
    /// # Panics
    /// Panics if `pins` is empty.
    pub fn new(mut pins: Vec<VertexId>) -> Self {
        assert!(!pins.is_empty(), "a hyperedge needs at least one pin");
        pins.sort_unstable();
        pins.dedup();
        Hyperedge { pins }
    }

    /// The member vertices, sorted and deduplicated.
    #[inline]
    pub fn pins(&self) -> &[VertexId] {
        &self.pins
    }

    /// Number of member vertices.
    #[inline]
    pub fn arity(&self) -> usize {
        self.pins.len()
    }
}

/// A resettable, multi-pass stream of hyperedges — the out-of-core contract,
/// mirroring [`tps_graph::stream::EdgeStream`].
pub trait HyperedgeStream {
    /// Rewind to the beginning.
    fn reset(&mut self) -> io::Result<()>;
    /// Next hyperedge of the pass (`None` at end). Returns a reference valid
    /// until the next call, so implementations can reuse a buffer.
    fn next_hyperedge(&mut self) -> io::Result<Option<&Hyperedge>>;
    /// Number of hyperedges, if known.
    fn len_hint(&self) -> Option<u64> {
        None
    }
    /// Vertex-space size, if known.
    fn num_vertices_hint(&self) -> Option<u64> {
        None
    }
}

/// An in-memory hypergraph exposing the streaming interface.
#[derive(Clone, Debug)]
pub struct InMemoryHypergraph {
    hyperedges: Vec<Hyperedge>,
    num_vertices: u64,
    cursor: usize,
}

impl InMemoryHypergraph {
    /// Build from hyperedges; the vertex count is `max pin + 1`.
    pub fn new(hyperedges: Vec<Hyperedge>) -> Self {
        let num_vertices = hyperedges
            .iter()
            .flat_map(|h| h.pins().iter())
            .map(|&v| v as u64 + 1)
            .max()
            .unwrap_or(0);
        InMemoryHypergraph {
            hyperedges,
            num_vertices,
            cursor: 0,
        }
    }

    /// The hyperedge list.
    pub fn hyperedges(&self) -> &[Hyperedge] {
        &self.hyperedges
    }

    /// Number of hyperedges.
    pub fn num_hyperedges(&self) -> u64 {
        self.hyperedges.len() as u64
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Total pin count (Σ arity) — the hypergraph analogue of `2|E|`.
    pub fn total_pins(&self) -> u64 {
        self.hyperedges.iter().map(|h| h.arity() as u64).sum()
    }

    /// A fresh stream over the same hypergraph.
    pub fn stream(&self) -> InMemoryHypergraph {
        InMemoryHypergraph {
            hyperedges: self.hyperedges.clone(),
            num_vertices: self.num_vertices,
            cursor: 0,
        }
    }
}

impl HyperedgeStream for InMemoryHypergraph {
    fn reset(&mut self) -> io::Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_hyperedge(&mut self) -> io::Result<Option<&Hyperedge>> {
        match self.hyperedges.get(self.cursor) {
            Some(h) => {
                self.cursor += 1;
                Ok(Some(h))
            }
            None => Ok(None),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.hyperedges.len() as u64)
    }

    fn num_vertices_hint(&self) -> Option<u64> {
        Some(self.num_vertices)
    }
}

/// Vertex degrees (incident hyperedge counts) in one pass.
pub fn hyper_degrees(stream: &mut dyn HyperedgeStream, num_vertices: u64) -> io::Result<Vec<u32>> {
    let mut degrees = vec![0u32; num_vertices as usize];
    stream.reset()?;
    while let Some(h) = stream.next_hyperedge()? {
        for &v in h.pins() {
            degrees[v as usize] += 1;
        }
    }
    Ok(degrees)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperedge_normalises_pins() {
        let h = Hyperedge::new(vec![3, 1, 3, 2]);
        assert_eq!(h.pins(), &[1, 2, 3]);
        assert_eq!(h.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one pin")]
    fn empty_hyperedge_rejected() {
        Hyperedge::new(vec![]);
    }

    #[test]
    fn stream_round_trip() {
        let hg = InMemoryHypergraph::new(vec![
            Hyperedge::new(vec![0, 1, 2]),
            Hyperedge::new(vec![2, 3]),
        ]);
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.total_pins(), 5);
        let mut s = hg.stream();
        let mut count = 0;
        while s.next_hyperedge().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 2);
        s.reset().unwrap();
        assert!(s.next_hyperedge().unwrap().is_some());
    }

    #[test]
    fn degrees_count_incidences() {
        let hg = InMemoryHypergraph::new(vec![
            Hyperedge::new(vec![0, 1]),
            Hyperedge::new(vec![0, 2, 3]),
            Hyperedge::new(vec![0]),
        ]);
        let mut s = hg.stream();
        let d = hyper_degrees(&mut s, hg.num_vertices()).unwrap();
        assert_eq!(d, vec![3, 1, 1, 1]);
    }

    #[test]
    fn empty_hypergraph() {
        let hg = InMemoryHypergraph::new(vec![]);
        assert_eq!(hg.num_vertices(), 0);
        assert_eq!(hg.total_pins(), 0);
    }
}
