//! Streaming hypergraph-partitioning baselines.
//!
//! * [`RandomHyperPartitioner`] — hash of the pin set: the stateless floor.
//! * [`MinMaxGreedyPartitioner`] — streaming greedy in the spirit of
//!   Alistarh, Iglesias & Vojnovic (NIPS 2015): assign each hyperedge to the
//!   partition already holding the most of its pins, subject to a hard
//!   balance cap (their "min-max" intersection rule, the natural stateful
//!   streaming comparison for 2PS-HL).

use std::io;

use tps_core::balance::PartitionLoads;
use tps_graph::hash::splitmix64;
use tps_metrics::bitmatrix::ReplicationMatrix;

use crate::model::{Hyperedge, HyperedgeStream};
use crate::HyperPartitioner;

/// Stateless hashed assignment.
#[derive(Clone, Copy, Debug)]
pub struct RandomHyperPartitioner {
    /// Hash seed.
    pub seed: u64,
}

impl Default for RandomHyperPartitioner {
    fn default() -> Self {
        RandomHyperPartitioner { seed: 0x4B1D_5EED }
    }
}

impl HyperPartitioner for RandomHyperPartitioner {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn HyperedgeStream,
        k: u32,
        _alpha: f64,
        assign: &mut dyn FnMut(&Hyperedge, u32),
    ) -> io::Result<()> {
        assert!(k > 0);
        stream.reset()?;
        while let Some(h) = stream.next_hyperedge()? {
            let mut acc = self.seed;
            for &v in h.pins() {
                acc = splitmix64(acc ^ v as u64);
            }
            assign(h, (((acc >> 32).wrapping_mul(k as u64)) >> 32) as u32);
        }
        Ok(())
    }
}

/// Streaming greedy: maximise pin intersection, least-loaded tie-break,
/// hard `α` cap.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMaxGreedyPartitioner;

impl HyperPartitioner for MinMaxGreedyPartitioner {
    fn name(&self) -> String {
        "MinMaxGreedy".to_string()
    }

    fn partition(
        &mut self,
        stream: &mut dyn HyperedgeStream,
        k: u32,
        alpha: f64,
        assign: &mut dyn FnMut(&Hyperedge, u32),
    ) -> io::Result<()> {
        assert!(k > 0);
        let (num_vertices, num_hyperedges) = match (stream.num_vertices_hint(), stream.len_hint()) {
            (Some(v), Some(h)) => (v, h),
            _ => {
                let mut v = 0u64;
                let mut n = 0u64;
                stream.reset()?;
                while let Some(h) = stream.next_hyperedge()? {
                    n += 1;
                    for &pin in h.pins() {
                        v = v.max(pin as u64 + 1);
                    }
                }
                (v, n)
            }
        };
        if num_hyperedges == 0 {
            return Ok(());
        }
        let mut v2p = ReplicationMatrix::new(num_vertices, k);
        let mut loads = PartitionLoads::new(k, num_hyperedges, alpha);
        stream.reset()?;
        while let Some(h) = stream.next_hyperedge()? {
            // O(arity · k): count pins already replicated per partition.
            let mut best: Option<(u64, u64, u32)> = None; // (overlap, -load, p)
            for p in 0..k {
                if loads.is_full(p) {
                    continue;
                }
                let overlap = h.pins().iter().filter(|&&v| v2p.get(v, p)).count() as u64;
                let load = loads.load(p);
                let better = match best {
                    None => true,
                    Some((bo, bl, _)) => overlap > bo || (overlap == bo && load < bl),
                };
                if better {
                    best = Some((overlap, load, p));
                }
            }
            let p = best
                .map(|(_, _, p)| p)
                .unwrap_or_else(|| loads.least_loaded());
            for &v in h.pins() {
                v2p.set(v, p);
            }
            loads.add(p);
            assign(h, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{planted_hypergraph, PlantedHyperConfig};
    use crate::metrics::HyperQualityTracker;
    use crate::model::InMemoryHypergraph;

    fn run(
        p: &mut dyn HyperPartitioner,
        hg: &InMemoryHypergraph,
        k: u32,
    ) -> tps_metrics::quality::PartitionMetrics {
        let mut tracker = HyperQualityTracker::new(hg.num_vertices(), k);
        let mut s = hg.stream();
        p.partition(&mut s, k, 1.05, &mut |h, part| tracker.record(h, part))
            .unwrap();
        tracker.finish()
    }

    #[test]
    fn both_assign_everything() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 1);
        for p in [
            &mut RandomHyperPartitioner::default() as &mut dyn HyperPartitioner,
            &mut MinMaxGreedyPartitioner,
        ] {
            let m = run(p, &hg, 8);
            assert_eq!(m.num_edges, hg.num_hyperedges(), "{}", p.name());
        }
    }

    #[test]
    fn greedy_beats_random() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 2);
        let greedy = run(&mut MinMaxGreedyPartitioner, &hg, 8);
        let random = run(&mut RandomHyperPartitioner::default(), &hg, 8);
        assert!(
            greedy.replication_factor < random.replication_factor,
            "greedy {} vs random {}",
            greedy.replication_factor,
            random.replication_factor
        );
    }

    #[test]
    fn greedy_respects_cap() {
        let hg = planted_hypergraph(&PlantedHyperConfig::default(), 4);
        let k = 4;
        let m = run(&mut MinMaxGreedyPartitioner, &hg, k);
        let cap = PartitionLoads::new(k, hg.num_hyperedges(), 1.05).cap();
        assert!(m.max_load <= cap);
    }

    #[test]
    fn identical_pin_sets_hash_identically() {
        let hg = InMemoryHypergraph::new(vec![
            Hyperedge::new(vec![1, 2, 3]),
            Hyperedge::new(vec![3, 2, 1]), // same set, different order
        ]);
        let mut parts = Vec::new();
        let mut s = hg.stream();
        RandomHyperPartitioner::default()
            .partition(&mut s, 16, 1.05, &mut |_, p| parts.push(p))
            .unwrap();
        assert_eq!(parts[0], parts[1]);
    }
}
